"""End-to-end pipeline tests: trace -> hierarchy -> probe accounting.

Cross-validates the observer-based probe accounting against an
independent re-simulation, and checks system-level invariants the
paper's measurements rely on.
"""

import pytest

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import (
    TwoLevelHierarchy,
    capture_miss_stream,
    replay_miss_stream,
)
from repro.cache.observers import ProbeObserver
from repro.cache.set_associative import SetAssociativeCache
from repro.core.mru import MRULookup
from repro.core.naive import NaiveLookup
from repro.core.partial import PartialCompareLookup
from repro.core.traditional import TraditionalLookup
from repro.trace.synthetic import AtumWorkload


@pytest.fixture(scope="module")
def stream(tiny_workload):
    l1 = DirectMappedCache(4096, 16)
    return capture_miss_stream(iter(tiny_workload), l1)


def run_l2(stream, observers, **kw):
    l2 = SetAssociativeCache(32 * 1024, 32, kw.pop("associativity", 4), **kw)
    l2.attach_all(observers)
    replay_miss_stream(stream, l2)
    return l2


class TestAccountingIdentities:
    def test_scheme_hit_miss_totals_match_cache_stats(self, stream):
        observer = ProbeObserver(NaiveLookup(4))
        l2 = run_l2(stream, [observer])
        acc = observer.accumulator
        assert acc.hit_accesses == l2.stats.readin_hits
        assert acc.miss_accesses == l2.stats.readin_misses
        assert acc.writeback_accesses == l2.stats.writebacks

    def test_naive_miss_probes_exact(self, stream):
        observer = ProbeObserver(NaiveLookup(4))
        run_l2(stream, [observer])
        acc = observer.accumulator
        assert acc.miss_probes == 4 * acc.miss_accesses

    def test_mru_miss_probes_exact(self, stream):
        observer = ProbeObserver(MRULookup(4))
        run_l2(stream, [observer])
        acc = observer.accumulator
        assert acc.miss_probes == 5 * acc.miss_accesses

    def test_traditional_probe_count_equals_readins(self, stream):
        observer = ProbeObserver(TraditionalLookup(4))
        run_l2(stream, [observer])
        acc = observer.accumulator
        assert acc.hit_probes + acc.miss_probes == acc.readin_accesses

    def test_observers_do_not_disturb_simulation(self, stream):
        bare = run_l2(stream, [])
        observed = run_l2(
            stream,
            [
                ProbeObserver(NaiveLookup(4)),
                ProbeObserver(MRULookup(4)),
                ProbeObserver(PartialCompareLookup(4, tag_bits=16)),
            ],
        )
        assert bare.stats.readin_hits == observed.stats.readin_hits
        assert bare.stats.readin_misses == observed.stats.readin_misses
        for a, b in zip(bare.sets, observed.sets):
            assert a.view() == b.view()


class TestSchemeOrderings:
    """Structural orderings that must hold on any workload."""

    def test_partial_beats_naive_and_mru_on_misses(self, stream):
        partial = ProbeObserver(PartialCompareLookup(4, tag_bits=16))
        run_l2(stream, [partial])
        acc = partial.accumulator
        assert acc.probes_per_miss < 4        # naive pays a
        assert acc.probes_per_miss < 5        # mru pays a + 1

    def test_mru_beats_naive_on_hits_at_wide_associativity(self, stream):
        naive = ProbeObserver(NaiveLookup(8))
        mru = ProbeObserver(MRULookup(8))
        run_l2(stream, [naive, mru], associativity=8)
        assert mru.accumulator.probes_per_hit < (
            naive.accumulator.probes_per_hit
        )

    def test_traditional_is_floor(self, stream):
        observers = [
            ProbeObserver(TraditionalLookup(4)),
            ProbeObserver(NaiveLookup(4)),
            ProbeObserver(MRULookup(4)),
            ProbeObserver(PartialCompareLookup(4, tag_bits=16)),
        ]
        run_l2(stream, observers)
        floor = observers[0].accumulator.probes_per_access
        for observer in observers[1:]:
            assert observer.accumulator.probes_per_access >= floor


class TestHierarchyInvariants:
    def test_l2_sees_only_l1_misses(self, tiny_workload):
        l1 = DirectMappedCache(4096, 16)
        l2 = SetAssociativeCache(64 * 1024, 32, 4)
        h = TwoLevelHierarchy(l1, l2)
        h.run(iter(tiny_workload))
        assert l2.stats.readins == l1.stats.readin_misses

    def test_writebacks_equal_dirty_evictions(self, tiny_workload):
        l1 = DirectMappedCache(4096, 16)
        l2 = SetAssociativeCache(64 * 1024, 32, 4)
        h = TwoLevelHierarchy(l1, l2)
        h.run(iter(tiny_workload))
        assert l2.stats.writebacks == l1.stats.dirty_evictions

    def test_global_miss_ratio_below_l1_miss_ratio(self, tiny_workload):
        l1 = DirectMappedCache(4096, 16)
        l2 = SetAssociativeCache(64 * 1024, 32, 4)
        h = TwoLevelHierarchy(l1, l2)
        stats = h.run(iter(tiny_workload))
        assert 0 < stats.global_miss_ratio < stats.l1_miss_ratio

    def test_wider_l2_associativity_cannot_increase_unique_misses(self):
        # LRU inclusion-style property on the miss counts for a fixed
        # geometry: higher associativity with LRU cannot do worse on
        # this workload (checked empirically, not a theorem for all
        # traces).
        wl = AtumWorkload(segments=1, references_per_segment=20_000, seed=5)
        l1 = DirectMappedCache(4096, 16)
        stream = capture_miss_stream(iter(wl), l1)
        misses = []
        for a in (1, 2, 4):
            l2 = SetAssociativeCache(32 * 1024, 32, a)
            replay_miss_stream(stream, l2)
            misses.append(l2.stats.readin_misses)
        assert misses[0] >= misses[1] >= misses[2]
