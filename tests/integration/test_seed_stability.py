"""Seed-stability: the headline orderings must not depend on the
particular random draw of the synthetic workload."""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.trace.synthetic import AtumWorkload

SEEDS = (7, 1989)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_runner(request):
    workload = AtumWorkload(
        segments=1, references_per_segment=100_000, seed=request.param
    )
    return ExperimentRunner(workload)


class TestSeedStability:
    def test_partial_wins_reference_config(self, seeded_runner):
        result = seeded_runner.run("16K-16", "256K-32", 4)
        assert result.best_total() == "partial"

    def test_l1_ordering(self, seeded_runner):
        from repro.experiments.configs import parse_geometry

        small = seeded_runner.l1_miss_ratio(parse_geometry("4K-16"))
        large = seeded_runner.l1_miss_ratio(parse_geometry("16K-16"))
        wide = seeded_runner.l1_miss_ratio(parse_geometry("16K-32"))
        assert small > large > wide

    def test_naive_worst_at_8way(self, seeded_runner):
        result = seeded_runner.run("16K-16", "256K-32", 8)
        naive = result.schemes["naive"].total
        assert naive > result.schemes["mru"].total
        assert naive > result.schemes["partial"].total

    def test_f1_dominates_distribution(self, seeded_runner):
        result = seeded_runner.run("16K-16", "256K-32", 4)
        distribution = result.mru_distribution
        assert distribution[0] == max(distribution)
        assert distribution[0] > 0.4
