"""Calibration tests: the synthetic workload must land near the
paper's published L1 miss ratios and reproduce the headline shape
results (who wins, where).

These run a moderate workload (two ~120k-reference segments), so bands
are generous; the full-scale numbers (see EXPERIMENTS.md) sit closer
to the paper's.
"""

import pytest

from repro.experiments.configs import parse_geometry
from repro.experiments.runner import ExperimentRunner
from repro.trace.synthetic import AtumWorkload


@pytest.fixture(scope="module")
def runner():
    workload = AtumWorkload(segments=2, references_per_segment=120_000, seed=1989)
    return ExperimentRunner(workload)


class TestL1Calibration:
    """Paper Table 3: miss ratios 0.1181 / 0.0657 / 0.0513."""

    def test_4k16_band(self, runner):
        assert 0.09 < runner.l1_miss_ratio(parse_geometry("4K-16")) < 0.16

    def test_16k16_band(self, runner):
        assert 0.05 < runner.l1_miss_ratio(parse_geometry("16K-16")) < 0.10

    def test_16k32_band(self, runner):
        assert 0.04 < runner.l1_miss_ratio(parse_geometry("16K-32")) < 0.085

    def test_capacity_ordering(self, runner):
        small = runner.l1_miss_ratio(parse_geometry("4K-16"))
        large = runner.l1_miss_ratio(parse_geometry("16K-16"))
        # Paper ratio: 0.1181 / 0.0657 = 1.8.
        assert 1.4 < small / large < 2.3

    def test_block_size_ordering(self, runner):
        narrow = runner.l1_miss_ratio(parse_geometry("16K-16"))
        wide = runner.l1_miss_ratio(parse_geometry("16K-32"))
        # Paper ratio: 0.0513 / 0.0657 = 0.78.
        assert 0.6 < wide / narrow < 0.95


class TestWritebackFraction:
    def test_near_paper_fifth(self, runner):
        # Paper: 0.2083-0.2302 across L1 configs.
        result = runner.run("16K-16", "256K-32", 4)
        assert 0.15 < result.fraction_writebacks < 0.30


class TestHeadlineShape:
    """The orderings the paper's conclusions rest on."""

    def test_partial_wins_reference_config(self, runner):
        # Paper Table 4: partial is best in total for 16K-16/256K-32.
        for a in (4, 8):
            result = runner.run("16K-16", "256K-32", a)
            assert result.best_total() == "partial"

    def test_naive_worst_at_wide_associativity(self, runner):
        result = runner.run("16K-16", "256K-32", 8)
        naive = result.schemes["naive"].total
        assert naive > result.schemes["mru"].total
        assert naive > result.schemes["partial"].total

    def test_mru_close_to_partial_in_its_favored_config(self, runner):
        # Paper: MRU wins 4K-16/256K-64 at a >= 8; our synthetic trace
        # reproduces a near-tie (documented in EXPERIMENTS.md).
        result = runner.run("4K-16", "256K-64", 8)
        mru = result.schemes["mru"].total
        partial = result.schemes["partial"].total
        assert mru < result.schemes["naive"].total
        assert mru / partial < 1.35

    def test_mru_hits_improve_with_block_ratio(self, runner):
        # Paper: MRU's f_1 grows with the L2/L1 block-size ratio.
        small_ratio = runner.run("16K-16", "256K-16", 4)
        large_ratio = runner.run("4K-16", "256K-64", 4)
        assert large_ratio.mru_distribution[0] > small_ratio.mru_distribution[0]

    def test_probes_grow_with_associativity(self, runner):
        totals = {}
        for a in (4, 8, 16):
            result = runner.run("16K-16", "256K-32", a)
            totals[a] = {
                name: result.schemes[name].total
                for name in ("naive", "mru", "partial")
            }
        for name in ("naive", "mru", "partial"):
            assert totals[4][name] < totals[8][name] < totals[16][name]

    def test_associativity_barely_improves_miss_ratio_beyond_4(self, runner):
        # Paper: "8 and 16-way set-associativity did not improve the
        # miss ratios substantially over 4-way".
        four = runner.run("16K-16", "256K-32", 4).local_miss_ratio
        sixteen = runner.run("16K-16", "256K-32", 16).local_miss_ratio
        assert sixteen <= four
        assert (four - sixteen) / four < 0.25

    def test_wider_tags_help_partial(self, runner):
        result = runner.run("16K-16", "256K-32", 8, extra_tag_bits=(32,))
        t16 = result.schemes["partial/xor/t16"]
        t32 = result.schemes["partial/xor/t32"]
        assert t32.total <= t16.total + 1e-9

    def test_transform_ordering_matches_figure6(self, runner):
        result = runner.run(
            "16K-16", "256K-32", 8,
            transforms=("none", "xor", "improved"),
        )
        none = result.schemes["partial/none/t16"].total
        xor = result.schemes["partial/xor/t16"].total
        improved = result.schemes["partial/improved/t16"].total
        assert none >= xor - 0.02
        assert none >= improved - 0.02
