"""Quality gate: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method) and not isinstance(
                    method, property
                ):
                    continue
                doc = (
                    method.fget.__doc__
                    if isinstance(method, property)
                    else method.__doc__
                )
                if doc and doc.strip():
                    continue
                # An override inherits its contract from a documented
                # base-class method.
                inherited = any(
                    getattr(getattr(base, method_name, None), "__doc__", None)
                    for base in item.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
