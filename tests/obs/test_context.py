"""Trace context: deterministic ids, wire round-trip, ambient scope."""

import pickle

import pytest

from repro.obs.context import (
    IdSource,
    TraceContext,
    activate,
    current_context,
    get_id_source,
    new_id,
    new_trace,
    reset_id_source,
    set_id_source,
)


class TestTraceContext:
    def test_immutable(self):
        context = TraceContext("t" * 16, "s" * 16)
        with pytest.raises(AttributeError):
            context.trace_id = "other"

    def test_child_keeps_trace_reparents_span(self):
        root = TraceContext("t" * 16, "s" * 16)
        child = root.child("c" * 16)
        assert child.trace_id == root.trace_id
        assert child.span_id == "c" * 16
        assert child.parent_span_id == root.span_id

    def test_wire_round_trip(self):
        context = TraceContext("t" * 16, "s" * 16, "p" * 16)
        assert TraceContext.from_wire(context.to_wire()) == context

    def test_wire_none_passes_through(self):
        assert TraceContext.from_wire(None) is None

    def test_wire_form_is_picklable(self):
        wire = TraceContext("t" * 16, "s" * 16).to_wire()
        assert pickle.loads(pickle.dumps(wire)) == wire

    def test_to_dict(self):
        context = TraceContext("t" * 16, "s" * 16)
        assert context.to_dict() == {
            "trace_id": "t" * 16,
            "span_id": "s" * 16,
            "parent_span_id": None,
        }


class TestIdSource:
    def test_seeded_sources_emit_identical_sequences(self):
        a = IdSource("seed-7")
        b = IdSource("seed-7")
        assert [a.next_id() for _ in range(5)] == [
            b.next_id() for _ in range(5)
        ]

    def test_different_seeds_diverge(self):
        assert IdSource("a").next_id() != IdSource("b").next_id()

    def test_ids_are_16_hex_chars(self):
        generated = IdSource("x").next_id()
        assert len(generated) == 16
        assert set(generated) <= set("0123456789abcdef")

    def test_unseeded_sources_are_distinct(self):
        assert IdSource().next_id() != IdSource().next_id()

    def test_env_seed_makes_global_ids_reproducible(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SEED", "golden")
        previous = reset_id_source()
        try:
            first = [new_id() for _ in range(3)]
            reset_id_source()
            assert [new_id() for _ in range(3)] == first
        finally:
            set_id_source(previous)

    def test_set_id_source_swaps_and_restores(self):
        isolated = IdSource("isolated")
        previous = set_id_source(isolated)
        try:
            assert get_id_source() is isolated
        finally:
            set_id_source(previous)
        assert get_id_source() is previous


class TestAmbientContext:
    def test_no_context_by_default(self):
        assert current_context() is None

    def test_activate_scopes_the_context(self):
        context = new_trace(IdSource("t"))
        with activate(context):
            assert current_context() is context
        assert current_context() is None

    def test_activate_nests_and_restores(self):
        outer = new_trace(IdSource("outer"))
        inner = new_trace(IdSource("inner"))
        with activate(outer):
            with activate(inner):
                assert current_context() is inner
            assert current_context() is outer

    def test_activate_restores_on_exception(self):
        context = new_trace(IdSource("t"))
        with pytest.raises(RuntimeError):
            with activate(context):
                raise RuntimeError("boom")
        assert current_context() is None

    def test_new_trace_roots_a_fresh_trace(self):
        context = new_trace(IdSource("t"))
        assert context.parent_span_id is None
        assert context.trace_id != context.span_id
