"""Structured logger: byte-stable default output, env-driven levels."""

import io
import json

from repro.obs.log import StructuredLogger


def make_logger():
    out, err = io.StringIO(), io.StringIO()
    return StructuredLogger(out=out, err=err), out, err


class TestDefaultLevel:
    def test_info_is_byte_identical_to_print(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        logger, out, err = make_logger()
        message = "| scheme | total |\n| mru    | 1.52  |"
        logger.info(message)
        assert out.getvalue() == message + "\n"
        assert err.getvalue() == ""

    def test_debug_hidden_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        logger, out, err = make_logger()
        logger.debug("sweep.point", l2="64K-32")
        assert out.getvalue() == ""
        assert err.getvalue() == ""

    def test_warning_and_error_go_to_stderr(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        logger, out, err = make_logger()
        logger.warning("slow shard", seconds=9)
        logger.error("failed")
        assert out.getvalue() == ""
        assert "warning slow shard seconds=9" in err.getvalue()
        assert "error failed" in err.getvalue()


class TestEnvControl:
    def test_debug_level_shows_debug_events(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        logger, out, err = make_logger()
        logger.debug("sweep.point", l2="64K-32", associativity=4)
        assert "debug sweep.point l2=64K-32 associativity=4" in err.getvalue()

    def test_silent_suppresses_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "silent")
        logger, out, err = make_logger()
        logger.info("hello")
        logger.error("bad")
        assert out.getvalue() == ""
        assert err.getvalue() == ""

    def test_warning_threshold_hides_info(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "warning")
        logger, out, err = make_logger()
        logger.info("hello")
        logger.warning("careful")
        assert out.getvalue() == ""
        assert "careful" in err.getvalue()

    def test_unknown_level_falls_back_to_info(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "nonsense")
        logger, out, err = make_logger()
        logger.info("hello")
        assert out.getvalue() == "hello\n"

    def test_level_reread_per_emission(self, monkeypatch):
        logger, out, err = make_logger()
        monkeypatch.setenv("REPRO_LOG", "silent")
        logger.info("hidden")
        monkeypatch.setenv("REPRO_LOG", "info")
        logger.info("shown")
        assert out.getvalue() == "shown\n"


class TestJsonMode:
    def test_json_records_on_both_streams(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug+json")
        logger, out, err = make_logger()
        logger.info("built", target="table4")
        logger.debug("sweep.point", l2="64K-32")
        info_record = json.loads(out.getvalue())
        assert info_record == {
            "level": "info", "message": "built", "target": "table4",
        }
        debug_record = json.loads(err.getvalue())
        assert debug_record["level"] == "debug"
        assert debug_record["l2"] == "64K-32"
