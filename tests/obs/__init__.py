"""Tests for the :mod:`repro.obs` observability layer."""
