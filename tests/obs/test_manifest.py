"""Run manifests: content hashing, building, writing, validation."""

import json

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    describe_workload,
    git_sha,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.validate import (
    validate_manifest,
    validate_manifest_file,
)
from repro.trace.synthetic import AtumWorkload


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_distinguishes_configs(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_handles_non_json_values(self):
        # Exotic values fall back to repr-canonicalization.
        assert config_hash({"geometry": (4096, 16)})


class TestGitSha:
    def test_best_effort_in_repo_or_none(self, tmp_path):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))
        assert git_sha(cwd=tmp_path) is None


class TestDescribeWorkload:
    def test_none(self):
        assert describe_workload(None) is None

    def test_atum_workload_identity(self):
        workload = AtumWorkload(
            segments=2, references_per_segment=100, seed=7
        )
        description = describe_workload(workload)
        assert description["type"] == "AtumWorkload"
        assert description["seed"] == 7
        assert description["segments"] == 2
        assert description["references_per_segment"] == 100
        assert "cache_key" in description


class TestBuildAndValidate:
    def test_built_manifest_is_schema_valid(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        metrics = MetricsRegistry()
        metrics.counter("engine.accesses").inc(5)
        manifest = RunManifest.build(
            tool="test",
            config={"l2": "64K-32"},
            workload=AtumWorkload(segments=1, references_per_segment=10),
            tracer=tracer,
            metrics=metrics,
        )
        assert validate_manifest(manifest.data) == []
        assert manifest.data["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest.phases["phase"]["count"] == 1
        assert manifest.data["metrics"]["counters"]["engine.accesses"] == 5
        assert manifest.failures == []

    def test_failures_recorded(self):
        manifest = RunManifest.build(
            tool="test", config={}, failures=[{"error": "boom"}],
        )
        assert manifest.failures == [{"error": "boom"}]
        assert validate_manifest(manifest.data) == []

    def test_extra_keys_must_not_collide(self):
        import pytest

        with pytest.raises(ValueError):
            RunManifest.build(tool="t", config={}, extra={"tool": "other"})

    def test_write_and_load_round_trip(self, tmp_path):
        manifest = RunManifest.build(tool="test", config={"a": 1})
        path = manifest.write(tmp_path / "nested" / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.data == json.loads(manifest.to_json())
        assert validate_manifest_file(path) == []

    def test_validate_catches_missing_and_mistyped(self):
        errors = validate_manifest({"schema_version": "nope"})
        assert any("missing required key" in error for error in errors)
        assert any("schema_version" in error for error in errors)

    def test_validate_rejects_newer_schema(self):
        manifest = RunManifest.build(tool="test", config={})
        manifest.data["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        assert any(
            "newer than" in error
            for error in validate_manifest(manifest.data)
        )

    def test_validate_rejects_malformed_failures(self):
        manifest = RunManifest.build(tool="test", config={})
        manifest.data["failures"] = ["not-a-dict"]
        assert any(
            "failures[0]" in error
            for error in validate_manifest(manifest.data)
        )
