"""Progress reporter: shard events, ETA lines, queue draining."""

import io
import multiprocessing

from repro.obs.progress import ProgressReporter, progress_enabled


def make_reporter(total=4, enabled=True):
    stream = io.StringIO()
    return ProgressReporter(total=total, stream=stream, enabled=enabled), stream


class TestEnablement:
    def test_env_var_forces_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert progress_enabled(io.StringIO()) is True

    def test_env_var_forces_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        assert progress_enabled(io.StringIO()) is False

    def test_non_tty_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        assert progress_enabled(io.StringIO()) is False

    def test_disabled_reporter_is_silent(self):
        reporter, stream = make_reporter(enabled=False)
        reporter.started(0)
        reporter.finished(0)
        assert stream.getvalue() == ""


class TestEvents:
    def test_started_line(self):
        reporter, stream = make_reporter(total=8)
        reporter.started(2, "l1=4K-16, 6 points")
        line = stream.getvalue()
        assert "shard 3/8 started" in line
        assert "l1=4K-16, 6 points" in line

    def test_finished_line_has_progress_and_eta(self):
        reporter, stream = make_reporter(total=4)
        reporter.finished(0)
        line = stream.getvalue()
        assert "shard 1/4 finished" in line
        assert "1/4 complete" in line
        assert "ETA" in line

    def test_last_shard_reports_done(self):
        reporter, stream = make_reporter(total=2)
        reporter.finished(0)
        reporter.finished(1)
        assert "done" in stream.getvalue().splitlines()[-1]

    def test_handle_dispatches_and_ignores_unknown(self):
        reporter, stream = make_reporter(total=2)
        reporter.handle(("started", 0, "detail"))
        reporter.handle(("finished", 0, "detail"))
        reporter.handle(("unknown", 0, ""))
        reporter.handle("garbage")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert reporter.finished_count == 1


class TestQueueDraining:
    def test_drain_consumes_until_sentinel(self):
        reporter, stream = make_reporter(total=2)
        queue = multiprocessing.get_context().SimpleQueue()
        thread = reporter.drain(queue)
        queue.put(("started", 0, ""))
        queue.put(("finished", 0, ""))
        queue.put(None)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert reporter.finished_count == 1
        assert "shard 1/2 finished" in stream.getvalue()


class TestDrainerLifecycle:
    def test_drain_thread_is_daemon(self):
        """A wedged drainer can never block interpreter exit."""
        import queue as queue_module

        reporter = ProgressReporter(total=2, enabled=True, stream=io.StringIO())
        queue = queue_module.SimpleQueue()  # no sentinel: thread stays alive
        thread = reporter.drain(queue)
        try:
            assert thread.daemon is True
            assert thread.is_alive()
        finally:
            queue.put(None)
            thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_drain_exits_promptly_on_sentinel(self):
        import queue as queue_module

        reporter = ProgressReporter(total=1, enabled=True, stream=io.StringIO())
        queue = queue_module.SimpleQueue()
        thread = reporter.drain(queue)
        queue.put(("finished", 0, "shard"))
        queue.put(None)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert reporter.finished_count == 1
