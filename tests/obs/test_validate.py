"""``repro-obs-validate`` on corrupted inputs: loud, pointed failures."""

import json

import pytest

from repro.obs.bench import BENCH_HISTORY_SCHEMA_VERSION, BenchHistory
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest
from repro.obs.spans import Tracer
from repro.obs.validate import (
    SUPPORTED_DASHBOARD_SCHEMA_VERSION,
    SUPPORTED_REPORT_SCHEMA_VERSION,
    main,
    validate_dashboard,
    validate_history,
    validate_history_file,
    validate_job_trace,
    validate_manifest,
    validate_manifest_file,
    validate_report,
    validate_span,
    validate_trace_file,
)


@pytest.fixture
def valid_manifest_path(tmp_path):
    """A freshly built, schema-valid manifest on disk."""
    manifest = RunManifest.build(tool="test", config={"a": 1})
    return manifest.write(tmp_path / "manifest.json")


@pytest.fixture
def valid_trace_path(tmp_path):
    """A real single-span JSONL trace on disk."""
    tracer = Tracer()
    with tracer.span("phase"):
        pass
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(path)
    return path


class TestCorruptTrace:
    def test_truncated_jsonl_line_fails_with_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # A valid record followed by a mid-write truncation.
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        tracer.write_jsonl(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"name": "l2_replay", "path": "l2_re')
        errors = validate_trace_file(path)
        assert len(errors) == 1
        assert "malformed JSONL" in errors[0]
        assert ":2:" in errors[0]  # points at the truncated line

    def test_cli_exits_nonzero_on_truncated_trace(
        self, valid_manifest_path, tmp_path, capsys
    ):
        bad = tmp_path / "trace.jsonl"
        bad.write_text('{"name": "x"')
        assert main([str(valid_manifest_path), "--trace", str(bad)]) == 1
        assert "malformed JSONL" in capsys.readouterr().err

    def test_wrong_shape_record_fails(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"name": "x", "depth": 0}) + "\n")
        errors = validate_trace_file(path)
        assert any("missing required key 'path'" in e for e in errors)


class TestCorruptManifest:
    def test_missing_config_hash_is_pointed_at(self, valid_manifest_path):
        data = json.loads(valid_manifest_path.read_text())
        del data["config_hash"]
        errors = validate_manifest(data)
        assert errors == ["manifest: missing required key 'config_hash'"]

    def test_newer_schema_version_rejected(self, valid_manifest_path):
        data = json.loads(valid_manifest_path.read_text())
        data["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        errors = validate_manifest(data)
        assert len(errors) == 1
        assert "newer than the supported" in errors[0]

    def test_cli_exits_nonzero_on_missing_config_hash(
        self, valid_manifest_path, capsys
    ):
        data = json.loads(valid_manifest_path.read_text())
        del data["config_hash"]
        valid_manifest_path.write_text(json.dumps(data))
        assert main([str(valid_manifest_path)]) == 1
        assert "config_hash" in capsys.readouterr().err

    def test_unparseable_json_reported_with_path(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        path.write_text("{not json")
        assert main([str(path)]) == 1
        assert str(path) in capsys.readouterr().err


class TestCorruptHistory:
    def make_history(self, tmp_path):
        history = BenchHistory()
        history.append(
            {
                "created_unix": 0.0,
                "git_sha": "a" * 40,
                "config_hash": "cafe",
                "config": {},
                "environment": {},
                "workload": None,
                "results": {},
                "probe_counts": {},
                "summary": {},
            }
        )
        return history.save(tmp_path / "BENCH.json")

    def test_valid_history_passes(self, tmp_path):
        path = self.make_history(tmp_path)
        assert validate_history_file(path) == []

    def test_newer_schema_version_rejected(self, tmp_path):
        path = self.make_history(tmp_path)
        data = json.loads(path.read_text())
        data["schema_version"] = BENCH_HISTORY_SCHEMA_VERSION + 1
        errors = validate_history(data)
        assert len(errors) == 1
        assert "newer than the supported" in errors[0]

    def test_entry_missing_config_hash_is_pointed_at(self, tmp_path):
        path = self.make_history(tmp_path)
        data = json.loads(path.read_text())
        del data["entries"][0]["config_hash"]
        errors = validate_history(data)
        assert errors == [
            "history entry[0]: missing required key 'config_hash'"
        ]

    def test_bad_timing_block_is_pointed_at(self, tmp_path):
        path = self.make_history(tmp_path)
        data = json.loads(path.read_text())
        data["entries"][0]["results"]["x"] = {"timing": {"samples": []}}
        errors = validate_history(data)
        assert any("timing: missing required key 'median_seconds'" in e
                   for e in errors)

    def test_cli_history_flag_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"schema_version": 1}))
        assert main(["--history", str(path)]) == 1
        err = capsys.readouterr().err
        assert "benchmark" in err and "entries" in err

    def test_cli_history_flag_passes_valid(self, tmp_path, capsys):
        path = self.make_history(tmp_path)
        assert main(["--history", str(path)]) == 0
        assert "schema-valid" in capsys.readouterr().out


class TestCliArguments:
    def test_nothing_to_validate_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_manifest_and_trace_and_history_together(
        self, valid_manifest_path, valid_trace_path, tmp_path, capsys
    ):
        history = TestCorruptHistory().make_history(tmp_path)
        assert main(
            [
                str(valid_manifest_path),
                "--trace", str(valid_trace_path),
                "--history", str(history),
            ]
        ) == 0
        assert "schema-valid" in capsys.readouterr().out


def make_span(**overrides):
    """A minimal schema-valid span record with causal identity."""
    record = {
        "name": "phase", "path": "phase", "depth": 0, "start": 0.0,
        "wall_seconds": 0.1, "cpu_seconds": 0.1, "attrs": {}, "index": 0,
        "trace_id": "a" * 16, "span_id": "b" * 16, "parent_span_id": None,
    }
    record.update(overrides)
    return record


class TestSpanIdentity:
    def test_well_formed_ids_pass(self):
        assert validate_span(make_span()) == []

    def test_legacy_record_without_id_fields_stays_valid(self):
        record = make_span()
        for key in ("trace_id", "span_id", "parent_span_id"):
            del record[key]
        assert validate_span(record) == []

    def test_none_ids_pass(self):
        assert validate_span(
            make_span(trace_id=None, span_id=None, parent_span_id=None)
        ) == []

    @pytest.mark.parametrize("bad", [
        "A" * 16,       # uppercase
        "a" * 15,       # too short
        "a" * 17,       # too long
        "g" * 16,       # not hex
        "",
    ])
    def test_malformed_id_rejected(self, bad):
        errors = validate_span(make_span(trace_id=bad))
        assert len(errors) == 1
        assert "not a 16-hex-char id" in errors[0]

    def test_wrong_id_type_rejected(self):
        errors = validate_span(make_span(span_id=42))
        assert any("key 'span_id' has type int" in e for e in errors)


def make_job_trace(**overrides):
    """A minimal schema-valid ``/jobs/<id>/trace`` payload."""
    trace, root_id = "a" * 16, "c" * 16
    child = make_span(
        name="service_job", path="service_job",
        trace_id=trace, span_id="d" * 16, parent_span_id=root_id,
    )
    child["children"] = []
    root = make_span(
        name="job", path="job", wall_seconds=1.0, index=1,
        attrs={"job": "job-1", "status": "done"},
        trace_id=trace, span_id=root_id, parent_span_id=None,
    )
    root["children"] = [child]
    document = {
        "job": "job-1", "trace_id": trace, "status": "done",
        "spans": 2, "tree": [root],
    }
    document.update(overrides)
    return document


class TestJobTraceValidation:
    def test_valid_flight_record_passes(self):
        assert validate_job_trace(make_job_trace()) == []

    def test_not_an_object(self):
        assert validate_job_trace([]) == ["job-trace: not a JSON object"]

    def test_missing_envelope_key_pointed(self):
        document = make_job_trace()
        del document["status"]
        errors = validate_job_trace(document)
        assert any("missing required key 'status'" in e for e in errors)

    def test_span_count_must_match_tree(self):
        errors = validate_job_trace(make_job_trace(spans=5))
        assert errors == ["job-trace: 'spans' is 5 but the tree holds 2"]

    def test_child_must_nest_under_parent_span_id(self):
        document = make_job_trace()
        document["tree"][0]["children"][0]["parent_span_id"] = "e" * 16
        errors = validate_job_trace(document)
        assert any(
            "tree[0].children[0]" in e and "does not match" in e
            for e in errors
        )

    def test_malformed_nested_node_located(self):
        document = make_job_trace()
        del document["tree"][0]["children"][0]["wall_seconds"]
        errors = validate_job_trace(document)
        assert any(
            "tree[0].children[0]" in e and "'wall_seconds'" in e
            for e in errors
        )

    def test_bad_id_inside_tree_located(self):
        document = make_job_trace()
        document["tree"][0]["trace_id"] = "NOT-HEX"
        errors = validate_job_trace(document)
        assert any(
            "tree[0]" in e and "not a 16-hex-char id" in e for e in errors
        )

    def test_node_missing_children_list(self):
        document = make_job_trace()
        del document["tree"][0]["children"][0]["children"]
        errors = validate_job_trace(document)
        assert any("non-list 'children'" in e for e in errors)


class TestJobTraceCliFlag:
    def test_valid_file_passes(self, tmp_path, capsys):
        path = tmp_path / "job-trace.json"
        path.write_text(json.dumps(make_job_trace()))
        assert main(["--job-trace", str(path)]) == 0
        assert "schema-valid" in capsys.readouterr().out

    def test_invalid_file_exits_1(self, tmp_path, capsys):
        path = tmp_path / "job-trace.json"
        path.write_text(json.dumps(make_job_trace(spans=99)))
        assert main(["--job-trace", str(path)]) == 1
        assert "tree holds" in capsys.readouterr().err

    def test_combines_with_manifest_and_trace(
        self, valid_manifest_path, valid_trace_path, tmp_path, capsys
    ):
        path = tmp_path / "job-trace.json"
        path.write_text(json.dumps(make_job_trace()))
        assert main(
            [
                str(valid_manifest_path),
                "--trace", str(valid_trace_path),
                "--job-trace", str(path),
            ]
        ) == 0
        assert "schema-valid" in capsys.readouterr().out


def make_report(**overrides):
    """A minimal schema-valid trajectory-report payload."""
    report = {
        "schema_version": 1,
        "kind": "bench-trajectory",
        "benchmark": "simulator_throughput",
        "history_schema_version": 1,
        "entry_count": 1,
        "entries": [{"index": 0, "git_sha": "a" * 40, "config_hash": "feed"}],
        "series": [
            {
                "name": "l2_replay_fused_engine",
                "points": [
                    {
                        "index": 0,
                        "git_sha": "a" * 40,
                        "config_hash": "feed",
                        "median_seconds": 1.0,
                        "ci_low_seconds": 0.9,
                        "ci_high_seconds": 1.1,
                        "requests_per_second": 4000.0,
                    }
                ],
            }
        ],
        "verdict": {
            "verdict": "ok",
            "baseline": {"index": 0},
            "candidate": {"index": 0},
            "timing": [],
            "probe_drift": [],
            "notes": [],
        },
    }
    report.update(overrides)
    return report


def make_dashboard(**overrides):
    """A minimal schema-valid dashboard payload."""
    document = {
        "schema_version": 1,
        "kind": "service-dashboard",
        "status": {
            "ready": True,
            "reason": "ok",
            "draining": False,
            "queue": {"depth": 0, "capacity": 16},
            "breakers": {},
            "jobs": {},
            "replay": {"counters": {}, "batch_size": {"count": 0}},
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        },
        "jobs": [{"id": "job-1", "status": "done"}],
        "trajectory": None,
    }
    document.update(overrides)
    return document


class TestReportValidation:
    def test_valid_report_passes(self):
        assert validate_report(make_report()) == []

    def test_empty_report_passes(self):
        report = make_report(
            entry_count=0, entries=[], series=[], verdict=None
        )
        assert validate_report(report) == []

    def test_missing_key_is_pointed(self):
        report = make_report()
        del report["series"]
        errors = validate_report(report)
        assert any("missing required key 'series'" in e for e in errors)

    def test_wrong_kind_rejected(self):
        errors = validate_report(make_report(kind="something-else"))
        assert any("bench-trajectory" in e for e in errors)

    def test_newer_schema_version_rejected(self):
        errors = validate_report(
            make_report(schema_version=SUPPORTED_REPORT_SCHEMA_VERSION + 1)
        )
        assert any("newer than the supported" in e for e in errors)

    def test_malformed_series_point_located(self):
        report = make_report()
        del report["series"][0]["points"][0]["median_seconds"]
        errors = validate_report(report)
        assert any(
            "series[0].points[0]" in e and "median_seconds" in e
            for e in errors
        )

    def test_incomplete_verdict_rejected(self):
        report = make_report()
        del report["verdict"]["timing"]
        errors = validate_report(report)
        assert any("verdict missing 'timing'" in e for e in errors)

    def test_not_an_object(self):
        assert validate_report([]) == ["report: not a JSON object"]


class TestDashboardValidation:
    def test_valid_dashboard_passes(self):
        assert validate_dashboard(make_dashboard()) == []

    def test_nested_trajectory_is_validated_too(self):
        bad_report = make_report(kind="wrong")
        errors = validate_dashboard(make_dashboard(trajectory=bad_report))
        assert any("bench-trajectory" in e for e in errors)

    def test_missing_status_block_fields(self):
        document = make_dashboard()
        del document["status"]["replay"]
        errors = validate_dashboard(document)
        assert any(
            "dashboard status" in e and "'replay'" in e for e in errors
        )

    def test_job_rows_need_identity(self):
        errors = validate_dashboard(make_dashboard(jobs=[{"points": 1}]))
        assert any("jobs[0]" in e and "'id'" in e for e in errors)

    def test_newer_schema_version_rejected(self):
        errors = validate_dashboard(
            make_dashboard(
                schema_version=SUPPORTED_DASHBOARD_SCHEMA_VERSION + 1
            )
        )
        assert any("newer than the supported" in e for e in errors)

    def test_v2_requires_latency_block(self):
        errors = validate_dashboard(make_dashboard(schema_version=2))
        assert any(
            "'latency'" in e and "schema v2" in e for e in errors
        )

    def test_v2_with_latency_block_passes(self):
        document = make_dashboard(schema_version=2)
        document["status"]["latency"] = {
            "latency.job_seconds": {
                "count": 1, "p50": 0.1, "p95": 0.1, "p99": 0.1,
                "p999": 0.1,
            }
        }
        assert validate_dashboard(document) == []

    def test_v1_without_latency_stays_valid(self):
        # Pre-quantile dashboards never carried the block.
        assert validate_dashboard(make_dashboard(schema_version=1)) == []


class TestReportCliFlags:
    def test_report_and_dashboard_flags(self, tmp_path, capsys):
        report_path = tmp_path / "trajectory.json"
        report_path.write_text(json.dumps(make_report()))
        dashboard_path = tmp_path / "dashboard.json"
        dashboard_path.write_text(json.dumps(make_dashboard()))
        assert main(
            [
                "--report", str(report_path),
                "--dashboard", str(dashboard_path),
            ]
        ) == 0
        assert "schema-valid" in capsys.readouterr().out

    def test_invalid_report_exits_1(self, tmp_path, capsys):
        path = tmp_path / "trajectory.json"
        path.write_text(json.dumps(make_report(kind="wrong")))
        assert main(["--report", str(path)]) == 1
        assert "bench-trajectory" in capsys.readouterr().err

    def test_bench_manifest_validates(self, tmp_path):
        # The manifest run_benchmarks writes next to the history file
        # is an ordinary RunManifest; the positional argument covers it.
        manifest = RunManifest.build(
            tool="run_benchmarks", config={"references": 4000}
        )
        path = manifest.write(tmp_path / "BENCH_simulator.manifest.json")
        assert validate_manifest_file(path) == []


class TestDashboardShardTable:
    """Schema v3: the optional per-shard state table."""

    def shard_row(self, **overrides):
        row = {
            "name": "shard-0",
            "state": "healthy",
            "alive": True,
            "breaker": "closed",
            "restarts": 0,
        }
        row.update(overrides)
        return row

    def dashboard_with_shards(self, shards):
        document = make_dashboard(schema_version=3)
        document["status"]["latency"] = {}
        document["status"]["shards"] = shards
        return document

    def test_valid_shard_table_passes(self):
        document = self.dashboard_with_shards(
            {
                "shard-0": self.shard_row(),
                "shard-1": self.shard_row(
                    name="shard-1", state="dead", alive=False,
                    breaker="open", restarts=2,
                ),
            }
        )
        assert validate_dashboard(document) == []

    def test_all_lifecycle_states_accepted(self):
        for state in ("healthy", "half_open", "ejected", "dead"):
            document = self.dashboard_with_shards(
                {"shard-0": self.shard_row(state=state)}
            )
            assert validate_dashboard(document) == []

    def test_unknown_state_label_rejected(self):
        document = self.dashboard_with_shards(
            {"shard-0": self.shard_row(state="zombie")}
        )
        errors = validate_dashboard(document)
        assert any("zombie" in e for e in errors)

    def test_missing_row_field_rejected(self):
        row = self.shard_row()
        del row["breaker"]
        document = self.dashboard_with_shards({"shard-0": row})
        errors = validate_dashboard(document)
        assert any("breaker" in e for e in errors)

    def test_non_object_table_rejected(self):
        document = self.dashboard_with_shards([self.shard_row()])
        errors = validate_dashboard(document)
        assert errors

    def test_v3_without_shards_stays_valid(self):
        # Single-shard repro-serve dashboards carry no table.
        document = make_dashboard(schema_version=3)
        document["status"]["latency"] = {}
        assert validate_dashboard(document) == []
