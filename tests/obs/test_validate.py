"""``repro-obs-validate`` on corrupted inputs: loud, pointed failures."""

import json

import pytest

from repro.obs.bench import BENCH_HISTORY_SCHEMA_VERSION, BenchHistory
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest
from repro.obs.spans import Tracer
from repro.obs.validate import (
    main,
    validate_history,
    validate_history_file,
    validate_manifest,
    validate_trace_file,
)


@pytest.fixture
def valid_manifest_path(tmp_path):
    """A freshly built, schema-valid manifest on disk."""
    manifest = RunManifest.build(tool="test", config={"a": 1})
    return manifest.write(tmp_path / "manifest.json")


@pytest.fixture
def valid_trace_path(tmp_path):
    """A real single-span JSONL trace on disk."""
    tracer = Tracer()
    with tracer.span("phase"):
        pass
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(path)
    return path


class TestCorruptTrace:
    def test_truncated_jsonl_line_fails_with_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # A valid record followed by a mid-write truncation.
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        tracer.write_jsonl(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"name": "l2_replay", "path": "l2_re')
        errors = validate_trace_file(path)
        assert len(errors) == 1
        assert "malformed JSONL" in errors[0]
        assert ":2:" in errors[0]  # points at the truncated line

    def test_cli_exits_nonzero_on_truncated_trace(
        self, valid_manifest_path, tmp_path, capsys
    ):
        bad = tmp_path / "trace.jsonl"
        bad.write_text('{"name": "x"')
        assert main([str(valid_manifest_path), "--trace", str(bad)]) == 1
        assert "malformed JSONL" in capsys.readouterr().err

    def test_wrong_shape_record_fails(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"name": "x", "depth": 0}) + "\n")
        errors = validate_trace_file(path)
        assert any("missing required key 'path'" in e for e in errors)


class TestCorruptManifest:
    def test_missing_config_hash_is_pointed_at(self, valid_manifest_path):
        data = json.loads(valid_manifest_path.read_text())
        del data["config_hash"]
        errors = validate_manifest(data)
        assert errors == ["manifest: missing required key 'config_hash'"]

    def test_newer_schema_version_rejected(self, valid_manifest_path):
        data = json.loads(valid_manifest_path.read_text())
        data["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        errors = validate_manifest(data)
        assert len(errors) == 1
        assert "newer than the supported" in errors[0]

    def test_cli_exits_nonzero_on_missing_config_hash(
        self, valid_manifest_path, capsys
    ):
        data = json.loads(valid_manifest_path.read_text())
        del data["config_hash"]
        valid_manifest_path.write_text(json.dumps(data))
        assert main([str(valid_manifest_path)]) == 1
        assert "config_hash" in capsys.readouterr().err

    def test_unparseable_json_reported_with_path(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        path.write_text("{not json")
        assert main([str(path)]) == 1
        assert str(path) in capsys.readouterr().err


class TestCorruptHistory:
    def make_history(self, tmp_path):
        history = BenchHistory()
        history.append(
            {
                "created_unix": 0.0,
                "git_sha": "a" * 40,
                "config_hash": "cafe",
                "config": {},
                "environment": {},
                "workload": None,
                "results": {},
                "probe_counts": {},
                "summary": {},
            }
        )
        return history.save(tmp_path / "BENCH.json")

    def test_valid_history_passes(self, tmp_path):
        path = self.make_history(tmp_path)
        assert validate_history_file(path) == []

    def test_newer_schema_version_rejected(self, tmp_path):
        path = self.make_history(tmp_path)
        data = json.loads(path.read_text())
        data["schema_version"] = BENCH_HISTORY_SCHEMA_VERSION + 1
        errors = validate_history(data)
        assert len(errors) == 1
        assert "newer than the supported" in errors[0]

    def test_entry_missing_config_hash_is_pointed_at(self, tmp_path):
        path = self.make_history(tmp_path)
        data = json.loads(path.read_text())
        del data["entries"][0]["config_hash"]
        errors = validate_history(data)
        assert errors == [
            "history entry[0]: missing required key 'config_hash'"
        ]

    def test_bad_timing_block_is_pointed_at(self, tmp_path):
        path = self.make_history(tmp_path)
        data = json.loads(path.read_text())
        data["entries"][0]["results"]["x"] = {"timing": {"samples": []}}
        errors = validate_history(data)
        assert any("timing: missing required key 'median_seconds'" in e
                   for e in errors)

    def test_cli_history_flag_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"schema_version": 1}))
        assert main(["--history", str(path)]) == 1
        err = capsys.readouterr().err
        assert "benchmark" in err and "entries" in err

    def test_cli_history_flag_passes_valid(self, tmp_path, capsys):
        path = self.make_history(tmp_path)
        assert main(["--history", str(path)]) == 0
        assert "schema-valid" in capsys.readouterr().out


class TestCliArguments:
    def test_nothing_to_validate_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_manifest_and_trace_and_history_together(
        self, valid_manifest_path, valid_trace_path, tmp_path, capsys
    ):
        history = TestCorruptHistory().make_history(tmp_path)
        assert main(
            [
                str(valid_manifest_path),
                "--trace", str(valid_trace_path),
                "--history", str(history),
            ]
        ) == 0
        assert "schema-valid" in capsys.readouterr().out
