"""Statistical timing harness and the benchmark-trajectory store."""

import json

import pytest

from repro.obs.bench import (
    BENCH_HISTORY_SCHEMA_VERSION,
    BenchHistory,
    TimingResult,
    bootstrap_ci,
    build_entry,
    environment_fingerprint,
    measure,
    median_abs_deviation,
)
from repro.obs.validate import validate_history


class TestMeasure:
    def test_repeats_and_warmup_counts(self):
        calls = []
        result = measure(lambda: calls.append(1), repeats=4, warmup=2)
        assert len(calls) == 6  # 2 warmup + 4 timed
        assert result.repeats == 4
        assert result.warmup == 2
        assert len(result.samples) == 4

    def test_statistics_are_consistent(self):
        result = measure(lambda: sum(range(2000)), repeats=5, warmup=1)
        assert result.best <= result.median <= max(result.samples)
        assert result.ci_low <= result.median <= result.ci_high
        assert result.mad >= 0.0

    def test_last_result_carries_return_value(self):
        result = measure(lambda: "payload", repeats=3, warmup=0)
        assert result.last_result == "payload"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=1, warmup=-1)

    def test_to_dict_round_trips_the_stats(self):
        result = measure(lambda: None, repeats=3, warmup=1)
        data = result.to_dict()
        assert data["repeats"] == 3
        assert data["warmup"] == 1
        assert data["median_seconds"] == result.median
        assert data["ci_low_seconds"] <= data["ci_high_seconds"]
        assert len(data["samples"]) == 3
        json.dumps(data)  # JSON-able


class TestBootstrap:
    def test_single_sample_collapses(self):
        assert bootstrap_ci([0.5]) == (0.5, 0.5)

    def test_deterministic_for_same_samples(self):
        samples = [1.0, 1.1, 0.9, 1.05, 0.95]
        assert bootstrap_ci(samples) == bootstrap_ci(samples)

    def test_interval_brackets_the_median(self):
        samples = [1.0, 1.2, 0.8, 1.1, 0.9, 1.0, 1.05]
        low, high = bootstrap_ci(samples)
        assert low <= 1.0 <= high
        assert min(samples) <= low and high <= max(samples)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_mad_robust_to_outlier(self):
        quiet = median_abs_deviation([1.0, 1.01, 0.99, 1.0, 1.02])
        spiked = median_abs_deviation([1.0, 1.01, 0.99, 1.0, 50.0])
        assert spiked < 0.1  # one outlier barely moves the MAD
        assert quiet >= 0.0


class TestEnvironmentFingerprint:
    def test_identity_fields_present(self):
        fingerprint = environment_fingerprint()
        assert fingerprint["python"]
        assert fingerprint["machine"] is not None
        assert fingerprint["cpu_count"] >= 1
        json.dumps(fingerprint)


def make_entry(config_hash="cafe0123", sha="a" * 40, median=1.0, probes=100):
    """A minimal, schema-valid history entry for store tests."""
    timing = TimingResult(
        [median * 0.98, median, median * 1.02], warmup=1
    ).to_dict()
    return build_entry(
        config={"references": 4000},
        config_hash=config_hash,
        results={"l2_replay": {"timing": timing, "requests": 4000}},
        probe_counts={"naive": {"hit_probes": probes}},
        sha=sha,
    )


class TestBenchHistory:
    def test_append_and_save_round_trip(self, tmp_path):
        history = BenchHistory()
        history.append(make_entry())
        path = history.save(tmp_path / "BENCH.json")
        loaded = BenchHistory.load(path)
        assert len(loaded) == 1
        assert loaded.schema_version == BENCH_HISTORY_SCHEMA_VERSION
        assert validate_history(loaded.data) == []

    def test_dedupe_replaces_same_config_and_sha(self):
        history = BenchHistory()
        assert history.append(make_entry(median=1.0)) is False
        assert history.append(make_entry(median=2.0)) is True
        assert len(history) == 1
        timing = history.latest()["results"]["l2_replay"]["timing"]
        assert timing["median_seconds"] == pytest.approx(2.0)

    def test_different_sha_appends(self):
        history = BenchHistory()
        history.append(make_entry(sha="a" * 40))
        history.append(make_entry(sha="b" * 40))
        assert len(history) == 2

    def test_unknown_sha_never_dedupes(self):
        history = BenchHistory()
        for _ in range(2):
            entry = make_entry()
            entry["git_sha"] = None  # e.g. measured outside a checkout
            history.append(entry)
        assert len(history) == 2

    def test_baseline_for_skips_other_configs(self):
        history = BenchHistory()
        history.append(make_entry(config_hash="aaaa", sha="1" * 40))
        history.append(make_entry(config_hash="bbbb", sha="2" * 40))
        history.append(make_entry(config_hash="aaaa", sha="3" * 40))
        located = history.baseline_for()
        assert located is not None
        index, entry = located
        assert index == 0
        assert entry["git_sha"] == "1" * 40

    def test_baseline_for_first_of_config_is_none(self):
        history = BenchHistory()
        history.append(make_entry(config_hash="aaaa"))
        assert history.baseline_for() is None

    def test_find_by_index_sha_and_config_prefix(self):
        history = BenchHistory()
        history.append(make_entry(config_hash="feed", sha="abc" + "0" * 37))
        history.append(make_entry(config_hash="f00d", sha="def" + "0" * 37))
        assert history.find("0")[0] == 0
        assert history.find("-1")[0] == 1
        assert history.find("abc")[0] == 0
        assert history.find("f00d")[0] == 1
        assert history.find("nope") is None

    def test_legacy_single_run_payload_migrates(self, tmp_path):
        legacy = {
            "workload": {"seed": 21},
            "config_hash": "0123456789abcdef",
            "phases": {},
            "results": {
                "l2_replay_bare": {
                    "best_seconds": 0.002,
                    "requests": 100,
                    "requests_per_second": 50_000.0,
                }
            },
            "summary": {"fused_speedup_over_legacy": 6.0},
        }
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(legacy))
        history = BenchHistory.load(path)
        assert len(history) == 1
        entry = history.latest()
        assert entry["migrated_from"] == "legacy-single-run"
        assert entry["config_hash"] == "0123456789abcdef"
        timing = entry["results"]["l2_replay_bare"]["timing"]
        assert timing["median_seconds"] == pytest.approx(0.002)
        assert validate_history(history.data) == []
        # Appending after migration preserves the legacy data point.
        history.append(make_entry())
        assert len(history) == 2

    def test_load_or_create_missing_file(self, tmp_path):
        history = BenchHistory.load_or_create(tmp_path / "missing.json")
        assert len(history) == 0
        assert history.latest() is None

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            BenchHistory.load(path)


class TestBenchHistoryIntegrity:
    """Crash-safe saves: CRC32 stamping, bitrot, and torn tails."""

    def save_two_entries(self, tmp_path):
        history = BenchHistory()
        history.append(make_entry(sha="a" * 40, median=1.0))
        history.append(make_entry(sha="b" * 40, median=2.0))
        return history.save(tmp_path / "BENCH.json")

    def test_save_stamps_integrity_checksum(self, tmp_path):
        path = self.save_two_entries(tmp_path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert "integrity" in payload
        assert len(payload["integrity"]) == 8

    def test_bitrot_detected(self, tmp_path):
        from repro.errors import IntegrityError

        path = self.save_two_entries(tmp_path)
        text = path.read_text(encoding="utf-8")
        # A one-character value change keeps the JSON valid; only the
        # checksum can tell the file has drifted.
        path.write_text(text.replace("1.02", "1.03"), encoding="utf-8")
        with pytest.raises(IntegrityError, match="history"):
            BenchHistory.load(path)

    def test_torn_tail_skipped_and_reported(self, tmp_path):
        path = self.save_two_entries(tmp_path)
        text = path.read_text(encoding="utf-8")
        # Tear the file mid-way through the second entry, as a legacy
        # non-atomic writer interrupted by a crash would.
        cut = text.rindex('"config_hash"')
        path.write_text(text[:cut], encoding="utf-8")
        history = BenchHistory.load(path)
        assert history.torn_tail_dropped is True
        assert len(history) == 1
        timing = history.latest()["results"]["l2_replay"]["timing"]
        assert timing["median_seconds"] == pytest.approx(1.0)

    def test_torn_beyond_recovery_raises(self, tmp_path):
        path = self.save_two_entries(tmp_path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: text.find('"entries"')], encoding="utf-8")
        with pytest.raises(ValueError, match="beyond recovery"):
            BenchHistory.load(path)

    def test_atomic_save_leaves_no_temp(self, tmp_path):
        self.save_two_entries(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH.json"]
