"""Metrics registry: instruments, snapshots, and exact merging."""

import math
import pickle
import random

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileHistogram,
    get_metrics,
    set_metrics,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(7)
        assert gauge.value == 7

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.min == 2.0
        assert histogram.max == 8.0
        assert histogram.mean == 5.0

    def test_empty_histogram_mean(self):
        assert Histogram().mean == 0.0


class TestHistogramMergeEdgeCases:
    def test_merge_empty_snapshot_is_a_noop(self):
        histogram = Histogram()
        histogram.observe(3.0)
        histogram.merge_dict(Histogram().to_dict())
        assert histogram.to_dict() == {
            "count": 1, "total": 3.0, "min": 3.0, "max": 3.0,
        }

    def test_merge_into_empty_adopts_extremes(self):
        source = Histogram()
        source.observe(2.0)
        source.observe(8.0)
        target = Histogram()
        target.merge_dict(source.to_dict())
        assert target.to_dict() == source.to_dict()

    def test_merge_none_extremes_both_sides(self):
        target = Histogram()
        target.merge_dict({"count": 0, "total": 0.0, "min": None, "max": None})
        assert target.min is None and target.max is None

    def test_merge_legacy_dict_missing_keys(self):
        histogram = Histogram()
        histogram.observe(5.0)
        histogram.merge_dict({})
        assert histogram.count == 1 and histogram.total == 5.0
        histogram.merge_dict({"count": 2})
        assert histogram.count == 3
        assert histogram.min == 5.0 and histogram.max == 5.0


class TestQuantileHistogram:
    def test_empty(self):
        histogram = QuantileHistogram()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0
        assert histogram.summary()["p999"] == 0.0

    def test_quantile_rejects_out_of_range(self):
        histogram = QuantileHistogram()
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                histogram.quantile(bad)

    def test_constant_stream_is_exact(self):
        histogram = QuantileHistogram()
        for _ in range(100):
            histogram.observe(0.125)
        for q in (0.5, 0.95, 0.99, 0.999, 1.0):
            assert histogram.quantile(q) == 0.125

    def test_non_positive_values_counted_separately(self):
        histogram = QuantileHistogram()
        histogram.observe(0.0)
        histogram.observe(-1.0)
        histogram.observe(4.0)
        assert histogram.zero_count == 2
        assert histogram.count == 3
        assert sum(histogram.buckets.values()) == 1
        # Rank 1 and 2 land in the non-positive block -> min covers it.
        assert histogram.quantile(0.5) == -1.0

    def test_extremes_are_exact(self):
        histogram = QuantileHistogram()
        for value in (0.010, 0.020, 0.500):
            histogram.observe(value)
        assert histogram.min == 0.010
        assert histogram.max == 0.500
        assert histogram.quantile(1.0) == 0.500

    def test_to_dict_keys_are_json_stable(self):
        histogram = QuantileHistogram()
        histogram.observe(0.5)
        data = histogram.to_dict()
        assert all(isinstance(k, str) for k in data["buckets"])
        assert pickle.loads(pickle.dumps(data)) == data

    def test_merge_tolerates_sparse_dicts(self):
        histogram = QuantileHistogram()
        histogram.observe(1.5)
        histogram.merge_dict({})
        histogram.merge_dict({"count": 1, "zero_count": 1})
        assert histogram.count == 2
        assert histogram.zero_count == 1


def _true_quantile(samples, q):
    """Exact rank-based quantile matching the sketch's rank rule."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _streams():
    """Deterministic uniform, Zipf-ish, and constant latency streams."""
    rng = random.Random(1989)
    uniform = [rng.uniform(0.001, 2.0) for _ in range(4000)]
    zipf = [0.001 * (1.0 / rng.random()) ** 0.7 for _ in range(4000)]
    constant = [0.042] * 1000
    return {"uniform": uniform, "zipf": zipf, "constant": constant}


class TestQuantileDifferential:
    """The sketch vs the exact quantile, unsharded and merged.

    The contract: the estimate is the upper bound of the bucket
    holding the requested rank, so it is >= the true rank value and
    within one bucket's relative width (``2 ** (1/RESOLUTION)``)
    above it — and merging shards changes *nothing* about the bucket
    counts, so merged quantiles equal unsharded ones exactly.
    """

    WIDTH = 2.0 ** (1.0 / QuantileHistogram.RESOLUTION)

    @pytest.mark.parametrize("name", ["uniform", "zipf", "constant"])
    def test_estimate_within_one_bucket_of_truth(self, name):
        samples = _streams()[name]
        histogram = QuantileHistogram()
        for value in samples:
            histogram.observe(value)
        for q in (0.5, 0.9, 0.95, 0.99, 0.999, 1.0):
            truth = _true_quantile(samples, q)
            estimate = histogram.quantile(q)
            assert truth <= estimate <= truth * self.WIDTH * (1 + 1e-12), (
                f"{name} q={q}: true {truth}, estimate {estimate}"
            )

    @pytest.mark.parametrize("name", ["uniform", "zipf", "constant"])
    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_merged_equals_unsharded(self, name, shards):
        samples = _streams()[name]
        unsharded = QuantileHistogram()
        for value in samples:
            unsharded.observe(value)
        merged = QuantileHistogram()
        for shard_index in range(shards):
            worker = QuantileHistogram()
            for value in samples[shard_index::shards]:
                worker.observe(value)
            merged.merge_dict(worker.to_dict())
        assert merged.count == unsharded.count
        assert merged.zero_count == unsharded.zero_count
        assert merged.buckets == unsharded.buckets
        assert merged.min == unsharded.min
        assert merged.max == unsharded.max
        # Only the float total depends on summation order.
        assert merged.total == pytest.approx(unsharded.total)
        for q in (0.5, 0.9, 0.95, 0.99, 0.999, 1.0):
            assert merged.quantile(q) == unsharded.quantile(q)

    def test_merge_is_order_independent(self):
        samples = _streams()["uniform"]
        parts = [samples[i::3] for i in range(3)]
        dicts = []
        for part in parts:
            worker = QuantileHistogram()
            for value in part:
                worker.observe(value)
            dicts.append(worker.to_dict())
        forward, backward = QuantileHistogram(), QuantileHistogram()
        for data in dicts:
            forward.merge_dict(data)
        for data in reversed(dicts):
            backward.merge_dict(data)
        assert forward.buckets == backward.buckets
        assert forward.summary()["p99"] == backward.summary()["p99"]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_plain_and_picklable(self):
        registry = MetricsRegistry()
        registry.counter("engine.accesses").inc(10)
        registry.gauge("engine.channels").set(3)
        registry.histogram("runner.shard_seconds").observe(0.5)
        snapshot = registry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        assert snapshot["counters"] == {"engine.accesses": 10}
        assert snapshot["gauges"] == {"engine.channels": 3}
        assert snapshot["histograms"]["runner.shard_seconds"]["count"] == 1

    def test_merge_counters_is_exact_addition(self):
        shards = []
        for amount in (3, 5, 9):
            registry = MetricsRegistry()
            registry.counter("engine.accesses").inc(amount)
            shards.append(registry.snapshot())
        merged = MetricsRegistry()
        for snapshot in shards:
            merged.merge_snapshot(snapshot)
        assert merged.counter("engine.accesses").value == 17

    def test_merge_order_independent_for_counters_and_histograms(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h").observe(1.0)
        b = MetricsRegistry()
        b.counter("c").inc(5)
        b.histogram("h").observe(4.0)
        ab = MetricsRegistry()
        ab.merge_snapshot(a.snapshot())
        ab.merge_snapshot(b.snapshot())
        ba = MetricsRegistry()
        ba.merge_snapshot(b.snapshot())
        ba.merge_snapshot(a.snapshot())
        assert (
            ab.snapshot()["counters"] == ba.snapshot()["counters"]
        )
        assert (
            ab.snapshot()["histograms"] == ba.snapshot()["histograms"]
        )

    def test_merge_registry_object(self):
        a = MetricsRegistry()
        a.counter("c").inc(1)
        b = MetricsRegistry()
        b.counter("c").inc(2)
        a.merge(b)
        assert a.counter("c").value == 3

    def test_quantile_histogram_get_or_create_and_snapshot(self):
        registry = MetricsRegistry()
        registry.quantile_histogram("latency.job_seconds").observe(0.5)
        assert registry.quantile_histogram(
            "latency.job_seconds"
        ) is registry.quantile_histogram("latency.job_seconds")
        snapshot = registry.snapshot()
        block = snapshot["quantile_histograms"]["latency.job_seconds"]
        assert block["count"] == 1
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_merge_snapshot_folds_quantile_histograms(self):
        a = MetricsRegistry()
        a.quantile_histogram("q").observe(1.0)
        b = MetricsRegistry()
        b.quantile_histogram("q").observe(2.0)
        merged = MetricsRegistry()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        assert merged.quantile_histogram("q").count == 2
        assert merged.quantile_histogram("q").max == 2.0

    def test_merge_snapshot_tolerates_missing_quantile_block(self):
        registry = MetricsRegistry()
        registry.merge_snapshot(
            {"counters": {"c": 1}, "gauges": {}, "histograms": {}}
        )
        assert registry.counter("c").value == 1

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.clear()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
            "quantile_histograms": {},
        }


class TestGlobalRegistry:
    def test_set_metrics_swaps_and_restores(self):
        isolated = MetricsRegistry()
        previous = set_metrics(isolated)
        try:
            assert get_metrics() is isolated
        finally:
            set_metrics(previous)
        assert get_metrics() is previous
