"""Metrics registry: instruments, snapshots, and exact merging."""

import pickle

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(7)
        assert gauge.value == 7

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.min == 2.0
        assert histogram.max == 8.0
        assert histogram.mean == 5.0

    def test_empty_histogram_mean(self):
        assert Histogram().mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_plain_and_picklable(self):
        registry = MetricsRegistry()
        registry.counter("engine.accesses").inc(10)
        registry.gauge("engine.channels").set(3)
        registry.histogram("runner.shard_seconds").observe(0.5)
        snapshot = registry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        assert snapshot["counters"] == {"engine.accesses": 10}
        assert snapshot["gauges"] == {"engine.channels": 3}
        assert snapshot["histograms"]["runner.shard_seconds"]["count"] == 1

    def test_merge_counters_is_exact_addition(self):
        shards = []
        for amount in (3, 5, 9):
            registry = MetricsRegistry()
            registry.counter("engine.accesses").inc(amount)
            shards.append(registry.snapshot())
        merged = MetricsRegistry()
        for snapshot in shards:
            merged.merge_snapshot(snapshot)
        assert merged.counter("engine.accesses").value == 17

    def test_merge_order_independent_for_counters_and_histograms(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h").observe(1.0)
        b = MetricsRegistry()
        b.counter("c").inc(5)
        b.histogram("h").observe(4.0)
        ab = MetricsRegistry()
        ab.merge_snapshot(a.snapshot())
        ab.merge_snapshot(b.snapshot())
        ba = MetricsRegistry()
        ba.merge_snapshot(b.snapshot())
        ba.merge_snapshot(a.snapshot())
        assert (
            ab.snapshot()["counters"] == ba.snapshot()["counters"]
        )
        assert (
            ab.snapshot()["histograms"] == ba.snapshot()["histograms"]
        )

    def test_merge_registry_object(self):
        a = MetricsRegistry()
        a.counter("c").inc(1)
        b = MetricsRegistry()
        b.counter("c").inc(2)
        a.merge(b)
        assert a.counter("c").value == 3

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.clear()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestGlobalRegistry:
    def test_set_metrics_swaps_and_restores(self):
        isolated = MetricsRegistry()
        previous = set_metrics(isolated)
        try:
            assert get_metrics() is isolated
        finally:
            set_metrics(previous)
        assert get_metrics() is previous
