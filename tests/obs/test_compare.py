"""The statistical regression gate: compare logic and CLI exits."""

import copy
import json

import pytest

from repro.obs.bench import BenchHistory, TimingResult, build_entry
from repro.obs.compare import (
    EXIT_PROBE_DRIFT,
    EXIT_TIMING_REGRESSION,
    compare_entries,
    compare_probe_counts,
    compare_timing,
    main,
)


def entry_with(median=1.0, spread=0.01, config_hash="cafe", sha="a" * 40,
               probes=1000, environment=None):
    """A history entry with tightly controlled timing statistics."""
    samples = [median - spread, median, median + spread]
    entry = build_entry(
        config={"references": 4000},
        config_hash=config_hash,
        results={
            "l2_replay_fused_engine": {
                "timing": TimingResult(samples, warmup=1).to_dict(),
                "requests": 4000,
            }
        },
        probe_counts={
            "naive": {"hit_probes": probes, "miss_probes": 17},
            "mru": {"hit_probes": probes // 2, "miss_probes": 17},
        },
        sha=sha,
    )
    if environment is not None:
        entry["environment"] = environment
    return entry


class TestCompareTiming:
    def test_identical_is_ok(self):
        entry = entry_with()
        row = compare_timing(
            "x",
            entry["results"]["l2_replay_fused_engine"],
            entry["results"]["l2_replay_fused_engine"],
            threshold=0.05,
        )
        assert row["status"] == "ok"
        assert row["ci_overlap"] is True

    def test_disjoint_slower_is_regression(self):
        base = entry_with(median=1.0)["results"]["l2_replay_fused_engine"]
        cand = entry_with(median=3.0)["results"]["l2_replay_fused_engine"]
        row = compare_timing("x", base, cand, threshold=0.05)
        assert row["status"] == "regression"
        assert row["ci_overlap"] is False
        assert row["ratio"] == pytest.approx(3.0)

    def test_disjoint_faster_is_improved(self):
        base = entry_with(median=3.0)["results"]["l2_replay_fused_engine"]
        cand = entry_with(median=1.0)["results"]["l2_replay_fused_engine"]
        assert compare_timing("x", base, cand, 0.05)["status"] == "improved"

    def test_overlapping_cis_never_regress(self):
        # 3% slower but with wide, overlapping spread: statistically
        # indistinguishable, so a bare-percentage gate would misfire.
        base = entry_with(median=1.00, spread=0.2)
        cand = entry_with(median=1.03, spread=0.2)
        row = compare_timing(
            "x",
            base["results"]["l2_replay_fused_engine"],
            cand["results"]["l2_replay_fused_engine"],
            threshold=0.01,
        )
        assert row["status"] == "ok"
        assert row["ci_overlap"] is True

    def test_missing_stats_incomparable(self):
        base = {"requests": 4000}
        cand = entry_with()["results"]["l2_replay_fused_engine"]
        assert compare_timing("x", base, cand, 0.05)["status"] == "incomparable"


class TestCompareProbeCounts:
    def test_identical_is_clean(self):
        entry = entry_with()
        assert compare_probe_counts(entry, entry) == []

    def test_drifted_counter_is_reported(self):
        base = entry_with(probes=1000)
        cand = entry_with(probes=1001)
        drift = compare_probe_counts(base, cand)
        assert len(drift) == 1  # mru's 1000 // 2 == 1001 // 2, no drift
        assert "hit_probes" in drift[0]
        assert "1000" in drift[0] and "1001" in drift[0]

    def test_missing_scheme_is_drift(self):
        base = entry_with()
        cand = copy.deepcopy(base)
        del cand["probe_counts"]["mru"]
        drift = compare_probe_counts(base, cand)
        assert drift == ["probe_counts['mru']: only in baseline"]


class TestCompareEntries:
    def test_self_comparison_is_ok(self):
        entry = entry_with()
        report = compare_entries(entry, entry, baseline_index=0, candidate_index=0)
        assert report["verdict"] == "ok"
        assert report["config_hash_match"] is True

    def test_probe_drift_dominates_verdict(self):
        base = entry_with(median=1.0, probes=1000)
        cand = entry_with(median=3.0, probes=999)
        report = compare_entries(base, cand)
        assert report["verdict"] == "probe-drift"

    def test_cross_environment_timing_never_regresses(self):
        base = entry_with(median=1.0, environment={"machine": "x86_64"})
        cand = entry_with(median=3.0, environment={"machine": "arm64"})
        report = compare_entries(base, cand)
        assert report["verdict"] == "ok"
        assert report["environment_match"] is False
        assert any("cross-machine" in note for note in report["notes"])

    def test_cross_config_probe_counts_not_compared(self):
        base = entry_with(config_hash="aaaa", probes=1000)
        cand = entry_with(config_hash="bbbb", probes=999)
        report = compare_entries(base, cand)
        assert report["verdict"] == "ok"
        assert report["probe_drift"] == []
        assert report["config_hash_match"] is False


@pytest.fixture
def history_path(tmp_path):
    """A two-entry history: clean baseline, then a clean re-measure."""
    history = BenchHistory()
    history.append(entry_with(median=1.0, sha="1" * 40))
    history.append(entry_with(median=1.005, sha="2" * 40))
    return history.save(tmp_path / "BENCH.json")


class TestCli:
    def test_clean_history_exits_zero(self, history_path, capsys):
        assert main([str(history_path)]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out

    def test_baseline_self_exits_zero(self, history_path):
        assert main([str(history_path), "--baseline", "self"]) == 0

    def test_single_entry_self_compares(self, tmp_path):
        history = BenchHistory()
        history.append(entry_with())
        path = history.save(tmp_path / "BENCH.json")
        assert main([str(path)]) == 0

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        history = BenchHistory()
        history.append(entry_with(median=1.0, sha="1" * 40))
        history.append(entry_with(median=3.0, sha="2" * 40))
        path = history.save(tmp_path / "BENCH.json")
        assert main([str(path)]) == EXIT_TIMING_REGRESSION
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "timing-regression" in captured.err

    def test_report_only_downgrades_timing(self, tmp_path):
        history = BenchHistory()
        history.append(entry_with(median=1.0, sha="1" * 40))
        history.append(entry_with(median=3.0, sha="2" * 40))
        path = history.save(tmp_path / "BENCH.json")
        assert main([str(path), "--report-only"]) == 0

    def test_probe_drift_fails_even_report_only(self, tmp_path, capsys):
        history = BenchHistory()
        history.append(entry_with(probes=1000, sha="1" * 40))
        history.append(entry_with(probes=1001, sha="2" * 40))
        path = history.save(tmp_path / "BENCH.json")
        assert main([str(path), "--report-only"]) == EXIT_PROBE_DRIFT
        assert "PROBE DRIFT" in capsys.readouterr().out

    def test_json_verdict_is_machine_readable(self, history_path, tmp_path):
        verdict_path = tmp_path / "verdict.json"
        assert main([str(history_path), "--json", str(verdict_path)]) == 0
        verdict = json.loads(verdict_path.read_text())
        assert verdict["verdict"] == "ok"
        assert verdict["exit_code"] == 0
        assert verdict["timing"]
        assert verdict["baseline"]["config_hash"] == "cafe"

    def test_baseline_selector_by_sha_prefix(self, history_path):
        assert main([str(history_path), "--baseline", "1" * 12]) == 0

    def test_unknown_selector_errors(self, history_path):
        with pytest.raises(SystemExit):
            main([str(history_path), "--baseline", "zzzz"])

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_empty_history_exits_one(self, tmp_path, capsys):
        path = BenchHistory().save(tmp_path / "BENCH.json")
        assert main([str(path)]) == 1
        assert "no history entries" in capsys.readouterr().err
