"""Tracing spans: nesting, clocks, JSONL round-trip, flame summary."""

from repro.obs.jsonl import read_jsonl
from repro.obs.spans import Tracer, get_tracer, set_tracer, span
from repro.obs.validate import validate_span


class TestNesting:
    def test_records_complete_children_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [record.name for record in tracer.records]
        assert names == ["inner", "outer"]

    def test_depth_and_path(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        by_name = {record.name: record for record in tracer.records}
        assert by_name["a"].depth == 0 and by_name["a"].path == "a"
        assert by_name["b"].depth == 1 and by_name["b"].path == "a/b"
        assert by_name["c"].depth == 2 and by_name["c"].path == "a/b/c"

    def test_siblings_share_parent_path(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
            with tracer.span("child"):
                pass
        child_paths = [
            record.path for record in tracer.records
            if record.name == "child"
        ]
        assert child_paths == ["parent/child", "parent/child"]


class TestTiming:
    def test_wall_time_is_inclusive_and_positive(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(10_000))
        by_name = {record.name: record for record in tracer.records}
        assert by_name["inner"].wall_seconds > 0
        assert by_name["outer"].wall_seconds >= by_name["inner"].wall_seconds
        assert by_name["outer"].cpu_seconds >= 0

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("replay", l2="64K-32", associativity=4):
            pass
        assert tracer.records[0].attrs == {"l2": "64K-32", "associativity": 4}

    def test_exception_still_records_span(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert [record.name for record in tracer.records] == ["failing"]
        assert not tracer._stack


class TestAggregation:
    def test_phase_timings_sums_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        phases = tracer.phase_timings()
        assert phases["phase"]["count"] == 3
        assert phases["phase"]["wall_seconds"] > 0

    def test_flame_lists_every_path(self):
        tracer = Tracer()
        with tracer.span("sweep"):
            with tracer.span("l2_replay"):
                pass
        flame = tracer.flame()
        assert "sweep" in flame
        assert "sweep/l2_replay" in flame
        assert "#" in flame

    def test_flame_empty(self):
        assert "no spans" in Tracer().flame()


class TestJsonl:
    def test_round_trip_is_schema_valid(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", key="value"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(path) == 2
        records = list(read_jsonl(path))
        assert len(records) == 2
        for index, record in enumerate(records):
            assert validate_span(record) == []
            assert record["index"] == index

    def test_rewrite_is_complete_not_appended(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        tracer.write_jsonl(path)
        assert len(list(read_jsonl(path))) == 1


class TestGlobalTracer:
    def test_span_uses_global_tracer(self):
        isolated = Tracer()
        previous = set_tracer(isolated)
        try:
            with span("global_phase"):
                pass
        finally:
            set_tracer(previous)
        assert [record.name for record in isolated.records] == ["global_phase"]
        assert get_tracer() is previous
