"""Tracing spans: nesting, clocks, JSONL round-trip, flame summary."""

import threading

from repro.obs.context import IdSource, activate, new_trace
from repro.obs.jsonl import read_jsonl
from repro.obs.spans import SpanRecord, Tracer, get_tracer, set_tracer, span
from repro.obs.validate import validate_span


class TestNesting:
    def test_records_complete_children_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [record.name for record in tracer.records]
        assert names == ["inner", "outer"]

    def test_depth_and_path(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        by_name = {record.name: record for record in tracer.records}
        assert by_name["a"].depth == 0 and by_name["a"].path == "a"
        assert by_name["b"].depth == 1 and by_name["b"].path == "a/b"
        assert by_name["c"].depth == 2 and by_name["c"].path == "a/b/c"

    def test_siblings_share_parent_path(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
            with tracer.span("child"):
                pass
        child_paths = [
            record.path for record in tracer.records
            if record.name == "child"
        ]
        assert child_paths == ["parent/child", "parent/child"]


class TestTiming:
    def test_wall_time_is_inclusive_and_positive(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(10_000))
        by_name = {record.name: record for record in tracer.records}
        assert by_name["inner"].wall_seconds > 0
        assert by_name["outer"].wall_seconds >= by_name["inner"].wall_seconds
        assert by_name["outer"].cpu_seconds >= 0

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("replay", l2="64K-32", associativity=4):
            pass
        assert tracer.records[0].attrs == {"l2": "64K-32", "associativity": 4}

    def test_exception_still_records_span(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert [record.name for record in tracer.records] == ["failing"]
        assert not tracer._stack

    def test_exception_stamps_error_into_attrs(self):
        tracer = Tracer()
        try:
            with tracer.span("failing", key=3):
                raise ValueError("boom")
        except ValueError:
            pass
        record = tracer.records[0]
        assert record.attrs["error"] is True
        assert record.attrs["error_type"] == "ValueError"
        assert record.attrs["key"] == 3

    def test_clean_exit_has_no_error_attrs(self):
        tracer = Tracer()
        with tracer.span("fine"):
            pass
        assert "error" not in tracer.records[0].attrs


class TestAggregation:
    def test_phase_timings_sums_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        phases = tracer.phase_timings()
        assert phases["phase"]["count"] == 3
        assert phases["phase"]["wall_seconds"] > 0

    def test_flame_lists_every_path(self):
        tracer = Tracer()
        with tracer.span("sweep"):
            with tracer.span("l2_replay"):
                pass
        flame = tracer.flame()
        assert "sweep" in flame
        assert "sweep/l2_replay" in flame
        assert "#" in flame

    def test_flame_empty(self):
        assert "no spans" in Tracer().flame()


class TestJsonl:
    def test_round_trip_is_schema_valid(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", key="value"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(path) == 2
        records = list(read_jsonl(path))
        assert len(records) == 2
        for index, record in enumerate(records):
            assert validate_span(record) == []
            assert record["index"] == index

    def test_rewrite_is_complete_not_appended(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        tracer.write_jsonl(path)
        assert len(list(read_jsonl(path))) == 1


class TestCausalIdentity:
    def test_nested_spans_share_trace_and_chain_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {record.name: record for record in tracer.records}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.trace_id == inner.trace_id
        assert inner.parent_span_id == outer.span_id
        assert outer.span_id != inner.span_id

    def test_top_level_span_self_roots_without_context(self):
        tracer = Tracer()
        with tracer.span("alone"):
            pass
        record = tracer.records[0]
        assert record.trace_id is not None
        assert record.span_id is not None
        assert record.parent_span_id is None

    def test_top_level_span_adopts_ambient_context(self):
        tracer = Tracer()
        context = new_trace(IdSource("request"))
        with activate(context):
            with tracer.span("phase"):
                pass
        record = tracer.records[0]
        assert record.trace_id == context.trace_id
        assert record.parent_span_id == context.span_id

    def test_sibling_spans_under_one_context_share_parent(self):
        tracer = Tracer()
        context = new_trace(IdSource("request"))
        with activate(context):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        parents = {record.parent_span_id for record in tracer.records}
        assert parents == {context.span_id}

    def test_record_round_trips_through_dict(self):
        tracer = Tracer()
        with tracer.span("a", key="v"):
            pass
        record = tracer.records[0]
        rebuilt = SpanRecord.from_dict(record.to_dict())
        assert rebuilt.to_dict() == record.to_dict()

    def test_from_dict_tolerates_legacy_records(self):
        legacy = {
            "name": "a", "path": "a", "depth": 0, "start": 0.0,
            "wall_seconds": 0.1, "cpu_seconds": 0.1, "attrs": {},
            "index": 0,
        }
        record = SpanRecord.from_dict(legacy)
        assert record.trace_id is None
        assert record.span_id is None
        assert record.parent_span_id is None


class TestThreadIsolation:
    def test_two_threads_interleave_without_cross_parenting(self):
        """Regression: the active-span stack must be per-thread.

        With a shared bare-list stack, two threads nesting
        concurrently corrupt each other's paths (thread B's child
        parents under thread A's open span). The barrier forces both
        threads to hold their outer span open at the same time.
        """
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def run(label):
            with tracer.span(f"outer_{label}"):
                barrier.wait(timeout=10)
                with tracer.span(f"inner_{label}"):
                    pass
                barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=run, args=(label,)) for label in "ab"
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        by_name = {record.name: record for record in tracer.records}
        assert len(by_name) == 4
        for label in "ab":
            inner, outer = by_name[f"inner_{label}"], by_name[f"outer_{label}"]
            assert inner.path == f"outer_{label}/inner_{label}"
            assert inner.depth == 1 and outer.depth == 0
            assert inner.parent_span_id == outer.span_id
            assert inner.trace_id == outer.trace_id
        assert by_name["outer_a"].trace_id != by_name["outer_b"].trace_id


class TestSyntheticSpans:
    def test_record_span_with_explicit_identity(self):
        tracer = Tracer()
        record = tracer.record_span(
            "queue_wait", 0.25, attrs={"job": "j1"},
            trace_id="t" * 16, parent_span_id="p" * 16,
        )
        assert record.wall_seconds == 0.25
        assert record.trace_id == "t" * 16
        assert record.parent_span_id == "p" * 16
        assert record.span_id is not None
        assert tracer.records == [record]

    def test_record_span_honors_given_span_id(self):
        tracer = Tracer()
        record = tracer.record_span("job", 1.0, span_id="s" * 16)
        assert record.span_id == "s" * 16

    def test_adopt_reindexes_and_preserves_identity(self):
        worker = Tracer()
        context = new_trace(IdSource("request"))
        with activate(context):
            with worker.span("pool_task", attempt=1):
                pass
        parent = Tracer()
        with parent.span("local"):
            pass
        adopted = parent.adopt(r.to_dict() for r in worker.records)
        assert adopted == 1
        records = parent.snapshot_records()
        assert [r.index for r in records] == [0, 1]
        assert records[1].name == "pool_task"
        assert records[1].trace_id == context.trace_id
        assert records[1].parent_span_id == context.span_id

    def test_records_for_trace_filters(self):
        tracer = Tracer()
        tracer.record_span("a", 0.1, trace_id="t1" + "0" * 14)
        tracer.record_span("b", 0.1, trace_id="t2" + "0" * 14)
        names = [
            r.name for r in tracer.records_for_trace("t1" + "0" * 14)
        ]
        assert names == ["a"]


class TestGlobalTracer:
    def test_span_uses_global_tracer(self):
        isolated = Tracer()
        previous = set_tracer(isolated)
        try:
            with span("global_phase"):
                pass
        finally:
            set_tracer(previous)
        assert [record.name for record in isolated.records] == ["global_phase"]
        assert get_tracer() is previous
