"""Cross-run trace analytics: aggregation, deltas, flame, CLI."""

import time

import pytest

from repro.obs.spans import Tracer
from repro.obs.trace_report import (
    aggregate_trace,
    build_report,
    flame,
    load_trace,
    main,
    merge_aggregates,
    top_deltas,
    wall_cpu_split,
)


def write_real_trace(path, phases):
    """Produce a genuine JSONL trace by running real (tiny) spans.

    ``phases`` maps span name -> (repetitions, busy_seconds); nesting
    one child under each parent exercises path aggregation.
    """
    tracer = Tracer()
    for name, (count, busy) in phases.items():
        for _ in range(count):
            with tracer.span(name):
                with tracer.span("inner"):
                    deadline = time.perf_counter() + busy
                    while time.perf_counter() < deadline:
                        pass
    tracer.write_jsonl(path)
    return path


@pytest.fixture
def trace_pair(tmp_path):
    """Two real trace files with a deliberate phase slowdown."""
    first = write_real_trace(
        tmp_path / "a.jsonl",
        {"l1_capture": (1, 0.001), "l2_replay": (2, 0.001)},
    )
    second = write_real_trace(
        tmp_path / "b.jsonl",
        {"l1_capture": (1, 0.001), "l2_replay": (2, 0.02)},
    )
    return first, second


class TestAggregation:
    def test_aggregate_by_path_with_counts(self, trace_pair):
        records = load_trace(trace_pair[0])
        aggregate = aggregate_trace(records)
        assert aggregate["l2_replay"]["count"] == 2
        assert aggregate["l2_replay/inner"]["count"] == 2
        assert aggregate["l1_capture"]["count"] == 1
        assert aggregate["l2_replay"]["wall_seconds"] >= 0.002

    def test_merge_adds_counts_and_times(self, trace_pair):
        aggregates = [
            aggregate_trace(load_trace(path)) for path in trace_pair
        ]
        merged = merge_aggregates(aggregates)
        assert merged["l2_replay"]["count"] == 4
        assert merged["l2_replay"]["wall_seconds"] == pytest.approx(
            aggregates[0]["l2_replay"]["wall_seconds"]
            + aggregates[1]["l2_replay"]["wall_seconds"]
        )

    def test_wall_cpu_split_ratio(self, trace_pair):
        split = wall_cpu_split(aggregate_trace(load_trace(trace_pair[0])))
        assert split["wall_seconds"] > 0
        assert 0.0 <= split["cpu_over_wall"]


class TestDeltas:
    def test_top_regressing_phase_ranked_first(self, trace_pair):
        first, second = trace_pair
        rows = top_deltas(
            aggregate_trace(load_trace(first)),
            aggregate_trace(load_trace(second)),
            top=3,
        )
        assert rows[0]["path"] == "l2_replay"
        assert rows[0]["delta_seconds"] > 0
        assert rows[0]["ratio"] > 1.0

    def test_phase_only_in_candidate_is_flagged(self):
        rows = top_deltas(
            {"a": {"count": 1, "wall_seconds": 1.0, "cpu_seconds": 1.0}},
            {"b": {"count": 1, "wall_seconds": 2.0, "cpu_seconds": 2.0}},
            top=5,
        )
        by_path = {row["path"]: row for row in rows}
        assert by_path["b"]["only_in"] == "candidate"
        assert by_path["b"]["ratio"] is None
        assert by_path["a"]["only_in"] == "baseline"


class TestFlame:
    def test_bars_scale_with_wall_time(self):
        rendered = flame(
            {
                "big": {"count": 1, "wall_seconds": 1.0, "cpu_seconds": 1.0},
                "small": {"count": 1, "wall_seconds": 0.1, "cpu_seconds": 0.1},
            },
            width=20,
        )
        lines = rendered.splitlines()
        assert lines[0].count("#") == 20
        assert 1 <= lines[1].count("#") <= 3

    def test_empty_aggregate(self):
        assert flame({}) == "(no spans recorded)"


class TestBuildReport:
    def test_two_real_traces_attributed(self, trace_pair):
        report = build_report([str(path) for path in trace_pair], top=3)
        assert len(report["runs"]) == 2
        assert report["regressions"]["top"][0]["path"] == "l2_replay"
        assert report["merged"]["phases"]["l2_replay"]["count"] == 4

    def test_single_trace_has_no_regression_block(self, trace_pair):
        report = build_report([str(trace_pair[0])])
        assert "regressions" not in report
        assert report["runs"][0]["totals"]["wall_seconds"] > 0


class TestCli:
    def test_reports_two_real_traces(self, trace_pair, capsys):
        assert main([str(trace_pair[0]), str(trace_pair[1])]) == 0
        out = capsys.readouterr().out
        assert "top phase deltas" in out
        assert "merged flame" in out
        assert "l2_replay" in out

    def test_json_output(self, trace_pair, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(
            [str(trace_pair[0]), "--json", str(report_path)]
        ) == 0
        assert report_path.exists()

    def test_truncated_trace_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "x", "path": "x"')  # truncated JSON line
        assert main([str(bad)]) == 1
        assert "malformed JSONL" in capsys.readouterr().err
