"""Cross-run trace analytics: aggregation, deltas, flame, CLI."""

import json
import time

import pytest

from repro.obs.spans import Tracer
from repro.obs.trace_report import (
    aggregate_trace,
    build_job_report,
    build_report,
    build_span_tree,
    flame,
    load_trace,
    main,
    merge_aggregates,
    top_deltas,
    wall_cpu_split,
)


def write_real_trace(path, phases):
    """Produce a genuine JSONL trace by running real (tiny) spans.

    ``phases`` maps span name -> (repetitions, busy_seconds); nesting
    one child under each parent exercises path aggregation.
    """
    tracer = Tracer()
    for name, (count, busy) in phases.items():
        for _ in range(count):
            with tracer.span(name):
                with tracer.span("inner"):
                    deadline = time.perf_counter() + busy
                    while time.perf_counter() < deadline:
                        pass
    tracer.write_jsonl(path)
    return path


@pytest.fixture
def trace_pair(tmp_path):
    """Two real trace files with a deliberate phase slowdown."""
    first = write_real_trace(
        tmp_path / "a.jsonl",
        {"l1_capture": (1, 0.001), "l2_replay": (2, 0.001)},
    )
    second = write_real_trace(
        tmp_path / "b.jsonl",
        {"l1_capture": (1, 0.001), "l2_replay": (2, 0.02)},
    )
    return first, second


class TestAggregation:
    def test_aggregate_by_path_with_counts(self, trace_pair):
        records = load_trace(trace_pair[0])
        aggregate = aggregate_trace(records)
        assert aggregate["l2_replay"]["count"] == 2
        assert aggregate["l2_replay/inner"]["count"] == 2
        assert aggregate["l1_capture"]["count"] == 1
        assert aggregate["l2_replay"]["wall_seconds"] >= 0.002

    def test_merge_adds_counts_and_times(self, trace_pair):
        aggregates = [
            aggregate_trace(load_trace(path)) for path in trace_pair
        ]
        merged = merge_aggregates(aggregates)
        assert merged["l2_replay"]["count"] == 4
        assert merged["l2_replay"]["wall_seconds"] == pytest.approx(
            aggregates[0]["l2_replay"]["wall_seconds"]
            + aggregates[1]["l2_replay"]["wall_seconds"]
        )

    def test_wall_cpu_split_ratio(self, trace_pair):
        split = wall_cpu_split(aggregate_trace(load_trace(trace_pair[0])))
        assert split["wall_seconds"] > 0
        assert 0.0 <= split["cpu_over_wall"]


class TestDeltas:
    def test_top_regressing_phase_ranked_first(self, trace_pair):
        first, second = trace_pair
        rows = top_deltas(
            aggregate_trace(load_trace(first)),
            aggregate_trace(load_trace(second)),
            top=3,
        )
        # Parent and child regress by the same amount (the busy-wait
        # sits inside ``inner``), so either may rank first.
        assert rows[0]["path"] in ("l2_replay", "l2_replay/inner")
        assert rows[0]["delta_seconds"] > 0
        assert rows[0]["ratio"] > 1.0

    def test_phase_only_in_candidate_is_flagged(self):
        rows = top_deltas(
            {"a": {"count": 1, "wall_seconds": 1.0, "cpu_seconds": 1.0}},
            {"b": {"count": 1, "wall_seconds": 2.0, "cpu_seconds": 2.0}},
            top=5,
        )
        by_path = {row["path"]: row for row in rows}
        assert by_path["b"]["only_in"] == "candidate"
        assert by_path["b"]["ratio"] is None
        assert by_path["a"]["only_in"] == "baseline"


class TestFlame:
    def test_bars_scale_with_wall_time(self):
        rendered = flame(
            {
                "big": {"count": 1, "wall_seconds": 1.0, "cpu_seconds": 1.0},
                "small": {"count": 1, "wall_seconds": 0.1, "cpu_seconds": 0.1},
            },
            width=20,
        )
        lines = rendered.splitlines()
        assert lines[0].count("#") == 20
        assert 1 <= lines[1].count("#") <= 3

    def test_empty_aggregate(self):
        assert flame({}) == "(no spans recorded)"


class TestBuildReport:
    def test_two_real_traces_attributed(self, trace_pair):
        report = build_report([str(path) for path in trace_pair], top=3)
        assert len(report["runs"]) == 2
        assert report["regressions"]["top"][0]["path"] in (
            "l2_replay", "l2_replay/inner"
        )
        assert report["merged"]["phases"]["l2_replay"]["count"] == 4

    def test_single_trace_has_no_regression_block(self, trace_pair):
        report = build_report([str(trace_pair[0])])
        assert "regressions" not in report
        assert report["runs"][0]["totals"]["wall_seconds"] > 0


def write_flight_record(path, job_id="job-1"):
    """Spool a synthetic but causally-complete flight record.

    Mirrors what the service records for one retried job: an
    end-to-end ``job`` root, handler-side ``admission`` and
    ``queue_wait``, the executing ``service_job``, and two
    ``pool_task`` attempts shipped back from the pool — the first
    stamped as an error. Plus one span from an unrelated trace, which
    must never leak into the job's report.
    """
    tracer = Tracer()
    trace, other = "a" * 16, "b" * 16
    root, execute = "c" * 16, "d" * 16
    tracer.record_span(
        "admission", 0.1, attrs={"job": job_id},
        trace_id=trace, parent_span_id=root, start=0.0,
    )
    tracer.record_span(
        "queue_wait", 0.2, attrs={"job": job_id},
        trace_id=trace, parent_span_id=root, start=0.1,
    )
    tracer.record_span(
        "pool_task", 0.25, cpu_seconds=0.2,
        attrs={"key": 0, "attempt": 1, "error": True,
               "error_type": "InjectedFaultError"},
        trace_id=trace, parent_span_id=execute, start=0.3,
    )
    tracer.record_span(
        "pool_task", 0.3, cpu_seconds=0.28,
        attrs={"key": 0, "attempt": 2},
        trace_id=trace, parent_span_id=execute, start=0.55,
    )
    tracer.record_span(
        "service_job", 0.6, attrs={"job": job_id},
        trace_id=trace, span_id=execute, parent_span_id=root, start=0.3,
    )
    tracer.record_span(
        "job", 1.0, attrs={"job": job_id, "status": "done"},
        trace_id=trace, span_id=root, start=0.0,
    )
    tracer.record_span("other_work", 0.4, trace_id=other, start=0.0)
    tracer.write_jsonl(path)
    return path


class TestSpanTree:
    def test_children_nest_under_matching_parent(self, tmp_path):
        records = load_trace(write_flight_record(tmp_path / "t.jsonl"))
        roots = build_span_tree(
            [r for r in records if r["trace_id"] == "a" * 16]
        )
        (root,) = roots
        assert root["name"] == "job"
        names = [child["name"] for child in root["children"]]
        assert names == ["admission", "queue_wait", "service_job"]
        execute = root["children"][2]
        assert [c["attrs"]["attempt"] for c in execute["children"]] == [1, 2]

    def test_orphan_spans_become_roots(self):
        roots = build_span_tree([
            {"name": "stray", "span_id": "s" * 16,
             "parent_span_id": "missing0missing0", "start": 1.0, "index": 0},
            {"name": "rootless", "span_id": None,
             "parent_span_id": None, "start": 0.5, "index": 1},
        ])
        assert [r["name"] for r in roots] == ["rootless", "stray"]
        assert all(r["children"] == [] for r in roots)

    def test_self_parented_span_does_not_recurse(self):
        (root,) = build_span_tree([
            {"name": "loop", "span_id": "s" * 16,
             "parent_span_id": "s" * 16, "start": 0.0, "index": 0},
        ])
        assert root["name"] == "loop" and root["children"] == []


class TestJobReport:
    def test_critical_path_sums_exactly_to_e2e(self, tmp_path):
        records = load_trace(write_flight_record(tmp_path / "t.jsonl"))
        report = build_job_report(records, "job-1")
        assert report["trace_id"] == "a" * 16
        assert report["e2e_seconds"] == 1.0
        assert report["spans"] == 6  # the other-trace span is excluded
        by_component = {
            row["component"]: row for row in report["critical_path"]
        }
        assert by_component["queue_wait"]["wall_seconds"] == 0.2
        assert by_component["admission"]["wall_seconds"] == 0.1
        assert by_component["execute"]["wall_seconds"] == 0.6
        attributed = sum(
            row["wall_seconds"] for row in report["critical_path"]
        )
        assert attributed == report["e2e_seconds"]  # exact, not approx
        assert by_component["execute"]["share"] == pytest.approx(0.6)

    def test_worker_summary_counts_attempts_and_errors(self, tmp_path):
        records = load_trace(write_flight_record(tmp_path / "t.jsonl"))
        worker = build_job_report(records, "job-1")["worker"]
        assert worker["tasks"] == 2
        assert worker["max_attempt"] == 2
        assert worker["errors"] == 1
        assert worker["wall_seconds"] == pytest.approx(0.55)
        assert worker["cpu_seconds"] == pytest.approx(0.48)
        assert worker["merge_seconds"] == pytest.approx(0.05)

    def test_unknown_job_raises(self, tmp_path):
        records = load_trace(write_flight_record(tmp_path / "t.jsonl"))
        with pytest.raises(ValueError, match="no end-to-end 'job' span"):
            build_job_report(records, "job-ghost")


class TestJobCli:
    def test_job_flag_renders_critical_path(self, tmp_path, capsys):
        trace = write_flight_record(tmp_path / "t.jsonl")
        assert main(["--job", "job-1", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "== job job-1" in out
        assert "critical path" in out
        for component in ("queue_wait", "admission", "execute",
                          "unattributed"):
            assert component in out
        assert "max attempt 2" in out

    def test_job_flag_with_json_report(self, tmp_path, capsys):
        trace = write_flight_record(tmp_path / "t.jsonl")
        report_path = tmp_path / "flight.json"
        assert main(
            ["--job", "job-1", str(trace), "--json", str(report_path)]
        ) == 0
        report = json.loads(report_path.read_text())
        assert report["job"] == "job-1"
        assert report["tree"][0]["name"] == "job"

    def test_unknown_job_exits_one(self, tmp_path, capsys):
        trace = write_flight_record(tmp_path / "t.jsonl")
        assert main(["--job", "nope", str(trace)]) == 1
        assert "no end-to-end 'job' span" in capsys.readouterr().err


class TestCli:
    def test_reports_two_real_traces(self, trace_pair, capsys):
        assert main([str(trace_pair[0]), str(trace_pair[1])]) == 0
        out = capsys.readouterr().out
        assert "top phase deltas" in out
        assert "merged flame" in out
        assert "l2_replay" in out

    def test_json_output(self, trace_pair, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(
            [str(trace_pair[0]), "--json", str(report_path)]
        ) == 0
        assert report_path.exists()

    def test_truncated_trace_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "x", "path": "x"')  # truncated JSON line
        assert main([str(bad)]) == 1
        assert "malformed JSONL" in capsys.readouterr().err
