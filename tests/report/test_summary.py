"""The results-summary generator: content, provenance, determinism."""

import pytest

from repro.experiments.configs import default_workload
from repro.experiments.runner import ExperimentRunner
from repro.obs.bench import BenchHistory, TimingResult, build_entry
from repro.report.summary import build_summary

SCALE = 0.002


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(default_workload(scale=SCALE, seed=1989))


@pytest.fixture()
def history_file(tmp_path):
    history = BenchHistory()
    history.append(
        build_entry(
            config={"references": 4000},
            config_hash="feed",
            results={
                "l2_replay_fused_engine": {
                    "timing": TimingResult(
                        [0.9, 1.0, 1.1], warmup=1
                    ).to_dict(),
                    "requests": 4000,
                }
            },
            sha="d" * 40,
        ),
        dedupe=False,
    )
    return history.save(tmp_path / "BENCH_simulator.json")


class TestContent:
    def test_paper_tables_and_provenance(self, runner):
        text = build_summary(
            scale=SCALE, runner=runner, include_figures=False
        )
        assert "# Reproduction results summary" in text
        assert "## Provenance" in text
        assert "config_hash" in text
        assert "Table 1. Performance of Set-Associativity" in text
        assert "Table 2. Trial Set-Associativity" in text
        assert "Table 3. Trace and level-one cache" in text
        assert "cold-start segments" in text
        # Fixed-decimal columns, not :.4g wobble.
        assert "| 1.00 | 1.00 |" in text

    def test_figures_section(self, runner):
        text = build_summary(scale=SCALE, runner=runner)
        assert "## Figure series" in text
        assert "Figure 3. Probes for read-ins and write-backs" in text
        assert "Figure 5 (right). MRU-distance hit distributions" in text
        assert "Figure 6 (left). Partial transforms vs theory" in text

    def test_trajectory_section(self, runner, history_file):
        text = build_summary(
            scale=SCALE,
            runner=runner,
            include_figures=False,
            history_path=history_file,
        )
        assert "## Benchmark trajectory" in text
        assert "```text" in text
        assert "l2_replay_fused_engine" in text

    def test_no_timestamps_anywhere(self, runner, history_file):
        # The determinism contract: regenerating must not churn git.
        text = build_summary(
            scale=SCALE,
            runner=runner,
            include_figures=False,
            history_path=history_file,
        )
        for word in ("generated at", "timestamp", "20:"):
            assert word not in text.lower() or word == "20:"


class TestDeterminism:
    def test_byte_identical_across_runs(self, history_file):
        # Two fully independent builds (fresh runners, fresh workloads).
        kwargs = dict(
            scale=SCALE, include_figures=False, history_path=history_file
        )
        assert build_summary(**kwargs) == build_summary(**kwargs)
