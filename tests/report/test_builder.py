"""The declarative table builder: cascade, formats, and legacy parity."""

import pytest

from repro.report.builder import (
    DEFAULTS,
    PRESETS,
    SPARK_CHARS,
    TableBuilder,
    register_preset,
    sparkline,
)


class Point:
    """Attribute-style row object."""

    def __init__(self, name, value):
        self.name = name
        self.value = value


class TestCascade:
    def test_defaults_apply(self):
        builder = TableBuilder()
        assert builder.config["fmt"] == "ascii"
        assert builder.config["float_format"] == ".4g"

    def test_preset_overrides_defaults(self):
        builder = TableBuilder(preset="github")
        assert builder.config["fmt"] == "github"

    def test_constructor_overrides_preset(self):
        builder = TableBuilder(preset="github", fmt="csv")
        assert builder.config["fmt"] == "csv"

    def test_render_overrides_constructor(self):
        builder = TableBuilder(preset="github")
        text = builder.render([("a", 1)], headers=["x", "y"], fmt="csv")
        assert text == "x,y\na,1\n"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            TableBuilder(preset="nope")

    def test_unknown_option_rejected_everywhere(self):
        with pytest.raises(ValueError, match="unknown option"):
            TableBuilder(colour="red")
        with pytest.raises(ValueError, match="unknown option"):
            TableBuilder().render([], headers=["x"], colour="red")
        with pytest.raises(ValueError, match="unknown option"):
            register_preset("bad", {"colour": "red"})

    def test_register_preset_round_trip(self):
        register_preset("tight", {"separator": " "})
        try:
            builder = TableBuilder(preset="tight")
            text = builder.render([("a", "b")], headers=["x", "y"])
            assert "a b" in text
        finally:
            PRESETS.pop("tight", None)

    def test_runtime_columns_replace_wholesale(self):
        builder = TableBuilder(columns=[{"header": "old"}])
        text = builder.render(
            [("v",)], columns=[{"header": "new"}]
        )
        assert "new" in text and "old" not in text


class TestLookupAndFormat:
    def test_mapping_dotted_key(self):
        builder = TableBuilder(
            columns=[{"header": "region", "key": "meta.region"}]
        )
        text = builder.render([{"meta": {"region": "us-1"}}])
        assert "us-1" in text

    def test_attribute_lookup(self):
        builder = TableBuilder(
            columns=[
                {"header": "name", "key": "name"},
                {"header": "value", "key": "value"},
            ]
        )
        text = builder.render([Point("alpha", 3)])
        assert "alpha" in text and "3" in text

    def test_missing_key_renders_none_text(self):
        builder = TableBuilder(columns=[{"header": "x", "key": "absent"}])
        assert "-" in builder.render([{}])
        assert "?" in builder.render([{}], none_text="?")

    def test_per_column_format_fixes_trailing_zeros(self):
        # The historical :.4g bug: 1.0 -> "1" wobbles the column.
        builder = TableBuilder()
        legacy = builder.render([(1.0,), (1.25,)], headers=["p"])
        assert "1\n" in legacy + "\n"
        fixed = builder.render(
            [(1.0,), (1.25,)], columns=[{"header": "p", "format": ".2f"}]
        )
        assert "1.00" in fixed and "1.25" in fixed

    def test_callable_format(self):
        builder = TableBuilder(
            columns=[{"header": "sha", "format": lambda v: str(v)[:4]}]
        )
        assert "abcd" in builder.render([("abcdef0123",)])

    def test_bools_are_not_number_formatted(self):
        builder = TableBuilder(
            columns=[{"header": "flag", "format": ".2f"}]
        )
        assert "True" in builder.render([(True,)])


class TestFormats:
    ROWS = [("naive", 2.5), ("mru", 1.0)]

    def test_ascii_alignment_and_title(self):
        builder = TableBuilder(
            columns=[
                {"header": "scheme", "key": None},
                {"header": "probes", "align": "right", "format": ".2f"},
            ]
        )
        text = builder.render(self.ROWS, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert lines[-1].endswith("1.00")

    def test_github_rules_follow_alignment(self):
        builder = TableBuilder(
            fmt="github",
            columns=[
                {"header": "scheme"},
                {"header": "probes", "align": "right"},
                {"header": "note", "align": "center"},
            ],
        )
        text = builder.render([("a", 1, "b")], title="T")
        assert text.splitlines()[0] == "**T**"
        assert "| --- | ---: | :---: |" in text

    def test_github_escapes_pipes(self):
        builder = TableBuilder(fmt="github")
        text = builder.render([("a|b",)], headers=["x"])
        assert "a\\|b" in text

    def test_csv_quotes_via_csv_module(self):
        builder = TableBuilder(fmt="csv")
        text = builder.render([('say "hi"', 1)], headers=["a", "b"])
        assert '"say ""hi""",1' in text

    def test_html_escapes_and_aligns(self):
        builder = TableBuilder(
            fmt="html",
            columns=[
                {"header": "name"},
                {"header": "n", "align": "right"},
            ],
        )
        text = builder.render([("<b>", 1)], title="T")
        assert "&lt;b&gt;" in text
        assert '<td style="text-align:right">1</td>' in text
        assert "<caption>T</caption>" in text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown table format"):
            TableBuilder().render([], headers=["x"], fmt="latex")

    def test_headers_required_without_columns(self):
        with pytest.raises(ValueError, match="no columns"):
            TableBuilder().render([("a",)])


class TestLegacyParity:
    """The "legacy" preset reproduces the historical renderer."""

    def _old_render_table(self, headers, rows, title=""):
        # The pre-builder implementation, verbatim.
        def fmt(value):
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in rows]
        widths = [len(h) for h in headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(parts):
            return "  ".join(
                part.ljust(width) for part, width in zip(parts, widths)
            ).rstrip()

        out = []
        if title:
            out.append(title)
            out.append("=" * len(title))
        out.append(line(headers))
        out.append(line(["-" * w for w in widths]))
        for row in cells:
            out.append(line(row))
        return "\n".join(out)

    def test_byte_for_byte(self):
        from repro.experiments.report import render_table

        headers = ["scheme", "hits", "total", "note"]
        rows = [
            ("naive", 0.123456, 4, "x"),
            ("mru", 1.0, 17, None),
            ("partial", 2.5, 100000, True),
        ]
        for title in ("", "Probes per access"):
            assert render_table(headers, rows, title=title) == (
                self._old_render_table(headers, rows, title=title)
            )


class TestSparkline:
    def test_scales_to_charset(self):
        line = sparkline([0.0, 1.0])
        assert line == SPARK_CHARS[0] + SPARK_CHARS[-1]

    def test_none_is_space_and_flat_is_middle(self):
        assert sparkline([None, None]) == "  "
        line = sparkline([3.0, None, 3.0])
        middle = SPARK_CHARS[len(SPARK_CHARS) // 2]
        assert line == middle + " " + middle

    def test_is_pure_ascii(self):
        line = sparkline(list(range(50)))
        assert line.encode("ascii")
        assert len(line) == 50
