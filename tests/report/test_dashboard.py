"""Dashboard renderers: the v3 per-shard table, byte-stability."""

from repro.obs import validate as obs_validate
from repro.report.dashboard import (
    DASHBOARD_SCHEMA_VERSION,
    build_dashboard_payload,
    render_dashboard_html,
    render_dashboard_text,
)


def make_status(with_shards=True):
    status = {
        "ready": True,
        "reason": "2/3 shards routable",
        "draining": False,
        "queue": {"depth": 1, "capacity": 48, "shedding": False,
                  "closed": False},
        "breakers": {},
        "jobs": {"done": 2, "running": 1},
        "replay": {"counters": {}, "batch_size": {"count": 0}},
        "latency": {
            "latency.job_seconds": {
                "count": 3, "p50": 0.5, "p95": 0.9, "p99": 0.9,
                "p999": 0.9,
            }
        },
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }
    if with_shards:
        status["shards"] = {
            "shard-0": {
                "name": "shard-0", "state": "healthy", "alive": True,
                "address": "127.0.0.1:4001", "breaker": "closed",
                "execute_breaker": "closed", "queue_depth": 1,
                "jobs": 2, "restarts": 0, "readmitted_to": 0,
            },
            "shard-1": {
                "name": "shard-1", "state": "dead", "alive": False,
                "address": None, "breaker": "open",
                "execute_breaker": None, "queue_depth": None,
                "jobs": None, "restarts": 2, "readmitted_to": 1,
            },
        }
    return status


def make_payload(**kwargs):
    return build_dashboard_payload(
        make_status(**kwargs), jobs=[{"id": "job-1", "status": "done"}]
    )


class TestSchemaVersion:
    def test_payload_carries_current_version(self):
        assert make_payload()["schema_version"] == DASHBOARD_SCHEMA_VERSION

    def test_renderer_and_validator_move_in_lockstep(self):
        assert (
            DASHBOARD_SCHEMA_VERSION
            == obs_validate.SUPPORTED_DASHBOARD_SCHEMA_VERSION
        )

    def test_payload_with_shards_validates(self):
        assert obs_validate.validate_dashboard(make_payload()) == []


class TestTextShardTable:
    def test_shard_table_rendered_in_name_order(self):
        text = render_dashboard_text(make_payload())
        assert "shards (2)" in text
        healthy = text.index("shard-0")
        dead = text.index("shard-1")
        assert healthy < dead
        assert "dead" in text
        assert "open" in text

    def test_no_shards_no_table(self):
        text = render_dashboard_text(make_payload(with_shards=False))
        assert "shards (" not in text

    def test_text_is_byte_stable_and_ascii(self):
        first = render_dashboard_text(make_payload())
        second = render_dashboard_text(make_payload())
        assert first == second
        assert first.encode("ascii")

    def test_absent_counts_render_as_placeholder(self):
        # A dead shard has no queue depth or job count to report; the
        # row still renders without a clock read or a crash.
        text = render_dashboard_text(make_payload())
        (dead_line,) = [
            line for line in text.splitlines()
            if line.startswith("shard-1")
        ]
        assert "dead" in dead_line


class TestHtmlShardTable:
    def test_shard_section_present(self):
        html = render_dashboard_html(make_payload())
        assert "Shards (2)" in html
        assert "shard-0" in html and "shard-1" in html

    def test_no_section_without_shards(self):
        html = render_dashboard_html(make_payload(with_shards=False))
        assert "Shards (" not in html
