"""The bench-trajectory report: payload, verdict parity, renderings."""

import json

from repro.obs import validate as obs_validate
from repro.obs.bench import BenchHistory, TimingResult, build_entry
from repro.obs.compare import compare_entries
from repro.report.dashboard import DASHBOARD_SCHEMA_VERSION
from repro.report.trajectory import REPORT_SCHEMA_VERSION, TrajectoryReport


def entry(median=1.0, spread=0.01, config_hash="cafe", sha="a" * 40):
    samples = [median - spread, median, median + spread]
    return build_entry(
        config={"references": 4000},
        config_hash=config_hash,
        results={
            "l2_replay_fused_engine": {
                "timing": TimingResult(samples, warmup=1).to_dict(),
                "requests": 4000,
                "requests_per_second": 4000 / median,
            }
        },
        probe_counts={"naive": {"hit_probes": 100, "miss_probes": 17}},
        sha=sha,
    )


def history_with(*entries):
    history = BenchHistory()
    for item in entries:
        history.append(item, dedupe=False)
    return history


class TestBuild:
    def test_empty_history_is_an_honest_empty_report(self):
        report = TrajectoryReport.build(BenchHistory())
        assert report.data["entry_count"] == 0
        assert report.data["series"] == []
        assert report.data["verdict"] is None
        assert report.verdict is None
        text = report.render_ascii()
        assert "no benchmark entries yet" in text

    def test_missing_file_builds_empty(self, tmp_path):
        report = TrajectoryReport.from_file(tmp_path / "absent.json")
        assert report.data["entry_count"] == 0

    def test_series_points_carry_ci_and_throughput(self):
        report = TrajectoryReport.build(history_with(entry()))
        (series,) = report.data["series"]
        assert series["name"] == "l2_replay_fused_engine"
        (point,) = series["points"]
        assert point["median_seconds"] == 1.0
        assert point["requests_per_second"] == 4000.0
        assert point["ci_low_seconds"] <= 1.0 <= point["ci_high_seconds"]
        assert point["rps_low"] < 4000.0 < point["rps_high"]

    def test_schema_version_matches_validator_constant(self):
        # The validator duplicates (not imports) the constants; this is
        # the lockstep check the duplication relies on.
        assert (
            REPORT_SCHEMA_VERSION
            == obs_validate.SUPPORTED_REPORT_SCHEMA_VERSION
        )
        assert (
            DASHBOARD_SCHEMA_VERSION
            == obs_validate.SUPPORTED_DASHBOARD_SCHEMA_VERSION
        )

    def test_payload_passes_the_schema_validator(self):
        report = TrajectoryReport.build(
            history_with(entry(sha=None), entry(median=1.3, sha=None))
        )
        assert obs_validate.validate_report(report.data) == []
        assert obs_validate.validate_report(
            json.loads(report.to_json())
        ) == []


class TestVerdictParity:
    """/dashboard verdicts must match repro-bench-compare exactly."""

    def test_same_pair_same_verdict(self):
        baseline = entry(median=1.0)
        candidate = entry(median=2.0, sha="b" * 40)
        history = history_with(baseline, candidate)
        report = TrajectoryReport.build(history)
        expected = compare_entries(
            history.entries[0],
            history.entries[1],
            baseline_index=0,
            candidate_index=1,
        )
        assert report.data["verdict"]["verdict"] == expected["verdict"]
        assert report.data["verdict"]["timing"] == expected["timing"]
        assert report.verdict == "timing-regression"

    def test_lineage_selection_skips_other_config_hashes(self):
        a1 = entry(median=1.0, config_hash="aaaa")
        b1 = entry(median=5.0, config_hash="bbbb", sha="b" * 40)
        a2 = entry(median=1.01, config_hash="aaaa", sha="c" * 40)
        report = TrajectoryReport.build(history_with(a1, b1, a2))
        verdict = report.data["verdict"]
        assert verdict["baseline"]["index"] == 0
        assert verdict["candidate"]["index"] == 2
        assert verdict["verdict"] == "ok"

    def test_no_lineage_self_compares_with_note(self):
        report = TrajectoryReport.build(history_with(entry()))
        verdict = report.data["verdict"]
        assert verdict["verdict"] == "ok"
        assert any("self-comparison" in note for note in verdict["notes"])


class TestRenderings:
    def test_ascii_is_byte_stable_and_pure_ascii(self):
        report = TrajectoryReport.build(
            history_with(entry(), entry(median=1.2, sha="b" * 40))
        )
        first = report.render_ascii()
        second = report.render_ascii()
        assert first == second
        assert first.encode("ascii")
        assert "throughput" in first and "median wall" in first
        assert "verdict:" in first

    def test_ascii_flags_regressions(self):
        report = TrajectoryReport.build(
            history_with(entry(median=1.0), entry(median=2.0, sha="b" * 40))
        )
        text = report.render_ascii()
        assert "timing-regression" in text
        assert "REGRESSION" in text

    def test_html_is_self_contained(self):
        report = TrajectoryReport.build(
            history_with(entry(), entry(median=1.2, sha="b" * 40))
        )
        page = report.render_html()
        assert page.startswith("<!DOCTYPE html>")
        assert "<svg" in page and "polyline" in page
        assert "<style>" in page
        assert "http://" not in page.replace(
            "http://www.w3.org/2000/svg", ""
        )

    def test_empty_html_renders(self):
        page = TrajectoryReport.build(BenchHistory()).render_html()
        assert "no benchmark entries yet" in page
