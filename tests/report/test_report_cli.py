"""``repro-report``: artifacts, determinism, validator round-trip."""

import json

from repro.obs import validate as obs_validate
from repro.obs.bench import BenchHistory, TimingResult, build_entry
from repro.report.cli import main


def write_history(path, medians=(1.0, 1.1)):
    history = BenchHistory()
    for index, median in enumerate(medians):
        history.append(
            build_entry(
                config={"references": 4000},
                config_hash="feed",
                results={
                    "l2_replay_fused_engine": {
                        "timing": TimingResult(
                            [median - 0.01, median, median + 0.01], warmup=1
                        ).to_dict(),
                        "requests": 4000,
                    }
                },
                sha=chr(ord("a") + index) * 40,
            ),
            dedupe=False,
        )
    return history.save(path)


def run_cli(tmp_path, history, *extra):
    out_dir = tmp_path / "results"
    code = main(
        [
            "--out-dir", str(out_dir),
            "--history", str(history),
            "--scale", "0.002",
            *extra,
        ]
    )
    assert code == 0
    return out_dir


class TestArtifacts:
    def test_writes_all_three(self, tmp_path):
        history = write_history(tmp_path / "BENCH.json")
        out_dir = run_cli(tmp_path, history, "--no-figures")
        assert (out_dir / "results_summary.md").exists()
        assert (out_dir / "trajectory.json").exists()
        assert (out_dir / "trajectory.html").exists()

    def test_trajectory_json_passes_validator(self, tmp_path):
        history = write_history(tmp_path / "BENCH.json")
        out_dir = run_cli(tmp_path, history, "--no-summary")
        errors = obs_validate.validate_report_file(
            out_dir / "trajectory.json"
        )
        assert errors == []
        data = json.loads((out_dir / "trajectory.json").read_text())
        assert data["kind"] == "bench-trajectory"
        assert data["entry_count"] == 2

    def test_no_flags_skip_sections(self, tmp_path):
        history = write_history(tmp_path / "BENCH.json")
        out_dir = run_cli(
            tmp_path, history, "--no-summary", "--no-trajectory"
        )
        assert list(out_dir.iterdir()) == []

    def test_missing_history_renders_empty_trajectory(self, tmp_path):
        out_dir = run_cli(
            tmp_path, tmp_path / "absent.json", "--no-summary"
        )
        data = json.loads((out_dir / "trajectory.json").read_text())
        assert data["entry_count"] == 0


class TestDeterminism:
    def test_two_runs_byte_identical(self, tmp_path):
        # The acceptance criterion: regenerate twice, diff nothing.
        history = write_history(tmp_path / "BENCH.json")
        first = run_cli(tmp_path / "one", history, "--no-figures")
        second = run_cli(tmp_path / "two", history, "--no-figures")
        for name in (
            "results_summary.md", "trajectory.json", "trajectory.html"
        ):
            assert (first / name).read_bytes() == (
                (second / name).read_bytes()
            ), name
