"""``repro-fsck``: scanning, repair, quarantine, and the report schema."""

import json

import pytest

from repro.obs.bench import BenchHistory
from repro.obs.manifest import RunManifest, config_hash
from repro.obs.validate import (
    SUPPORTED_FSCK_REPORT_SCHEMA_VERSION,
    validate_fsck_report,
    validate_fsck_report_file,
)
from repro.resilience.checkpoint import SweepCheckpoint
from repro.storage.fsck import (
    FSCK_REPORT_SCHEMA_VERSION,
    run,
    scan_directory,
)
from repro.storage.framing import frame_line


def write_checkpoint(path, records=2, config="h"):
    with SweepCheckpoint(path, config_hash=config) as checkpoint:
        for index in range(records):
            checkpoint.record(f"sig-{index}", {"misses": index})
    return path


def findings_by_problem(report):
    return {f["problem"]: f for f in report["findings"]}


class TestCleanSpool:
    def test_empty_directory_is_clean(self, tmp_path):
        report = scan_directory(tmp_path)
        assert report["ok"] is True
        assert report["findings"] == []

    def test_valid_files_verify(self, tmp_path):
        write_checkpoint(tmp_path / "sweep.ckpt")
        config = {"tool": "t"}
        RunManifest.build("t", config).write(tmp_path / "manifest.json")
        history = BenchHistory()
        history.append({"config_hash": "c", "git_sha": None}, dedupe=False)
        history.save(tmp_path / "BENCH_x.json")
        report = scan_directory(tmp_path)
        assert report["ok"] is True
        assert report["findings"] == []
        assert report["counts"]["verified"] >= 3

    def test_missing_root_not_a_finding(self, tmp_path):
        assert run([str(tmp_path / "nope")]) == 2


class TestTornTail:
    def test_detected_in_scan_mode(self, tmp_path):
        path = write_checkpoint(tmp_path / "sweep.ckpt")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(frame_line('{"kind": "result"}')[:-7] + "\n")
        report = scan_directory(tmp_path, repair=False)
        finding = findings_by_problem(report)["torn-tail"]
        assert finding["repairable"] is True
        assert finding["action"] == "detected"
        # Scan mode never touches the disk: the torn line is still there.
        assert path.read_text().splitlines()[-1].startswith("F1 ")
        assert len(path.read_text().splitlines()) == 4

    def test_repaired_in_repair_mode(self, tmp_path):
        path = write_checkpoint(tmp_path / "sweep.ckpt", records=2)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(frame_line('{"kind": "result"}')[:-7] + "\n")
        report = scan_directory(tmp_path, repair=True)
        assert report["ok"] is True
        assert report["counts"]["repaired"] == 1
        # The healed file loads: header intact, both records present.
        restored = SweepCheckpoint(path, config_hash="h").load()
        assert len(restored) == 2


class TestQuarantine:
    def test_mid_file_corruption_quarantined(self, tmp_path):
        path = write_checkpoint(tmp_path / "sweep.ckpt", records=3)
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[1] = lines[1].replace("misses", "kisses")
        path.write_text("".join(lines), encoding="utf-8")
        report = scan_directory(tmp_path, repair=True)
        assert report["ok"] is False
        finding = findings_by_problem(report)["frame-corrupt"]
        assert finding["repairable"] is False
        assert finding["action"] == "quarantined"
        assert not path.exists()
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == ["sweep.ckpt"]

    def test_quarantine_never_deletes(self, tmp_path):
        path = write_checkpoint(tmp_path / "sweep.ckpt", records=3)
        original = path.read_bytes()
        rotten = bytearray(original)
        rotten[len(rotten) // 3] ^= 0x01
        path.write_bytes(bytes(rotten))
        scan_directory(tmp_path, repair=True)
        assert (tmp_path / "quarantine" / "sweep.ckpt").read_bytes() == bytes(
            rotten
        )

    def test_quarantine_dedupes_names(self, tmp_path):
        for _ in range(2):
            path = write_checkpoint(tmp_path / "sweep.ckpt", records=3)
            raw = bytearray(path.read_bytes())
            raw[len(raw) // 3] ^= 0x01
            path.write_bytes(bytes(raw))
            scan_directory(tmp_path, repair=True)
        assert len(list((tmp_path / "quarantine").iterdir())) == 2

    def test_quarantine_dir_not_rescanned(self, tmp_path):
        path = write_checkpoint(tmp_path / "sweep.ckpt", records=3)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0x01
        path.write_bytes(bytes(raw))
        scan_directory(tmp_path, repair=True)
        rescan = scan_directory(tmp_path, repair=False)
        assert rescan["ok"] is True
        assert rescan["findings"] == []


class TestOrphansAndLocks:
    def test_orphan_temp_removed(self, tmp_path):
        (tmp_path / "artifact.rpm2.tmp").write_bytes(b"partial")
        report = scan_directory(tmp_path, repair=True)
        assert report["ok"] is True
        assert not (tmp_path / "artifact.rpm2.tmp").exists()

    def test_dead_holder_lock_removed(self, tmp_path):
        lock = tmp_path / "sweep.ckpt.lock"
        lock.write_text("99999999\n", encoding="utf-8")
        report = scan_directory(tmp_path, repair=True)
        assert report["ok"] is True
        assert not lock.exists()

    def test_live_holder_lock_kept(self, tmp_path):
        import os

        from repro.resilience.checkpoint import process_start_ticks

        pid = os.getpid()
        ticks = process_start_ticks(pid)
        lock = tmp_path / "sweep.ckpt.lock"
        lock.write_text(
            f"{pid}\n" if ticks is None else f"{pid} {ticks}\n",
            encoding="utf-8",
        )
        report = scan_directory(tmp_path, repair=True)
        assert report["findings"] == []
        assert lock.exists()


class TestManifestCrossRef:
    def test_config_hash_mismatch_detected(self, tmp_path):
        manifest = RunManifest.build("t", {"scale": 1.0})
        manifest.data["config_hash"] = config_hash({"scale": 2.0})
        manifest.write(tmp_path / "manifest.json")
        report = scan_directory(tmp_path, repair=False)
        assert report["ok"] is False
        assert "config-hash-mismatch" in findings_by_problem(report)

    def test_checkpoint_name_cross_ref(self, tmp_path):
        # Spool checkpoints are named by config hash; a rename is
        # cross-wiring, caught by the header.
        digest = config_hash({"real": True})
        other = config_hash({"real": False})
        write_checkpoint(tmp_path / f"{other}.ckpt", config=digest)
        report = scan_directory(tmp_path, repair=False)
        assert "config-hash-mismatch" in findings_by_problem(report)


class TestReportSchema:
    def test_schema_versions_in_lockstep(self):
        # The validator duplicates the constant (obs must not import
        # repro.storage.fsck); this cross-check keeps them honest.
        assert (
            FSCK_REPORT_SCHEMA_VERSION
            == SUPPORTED_FSCK_REPORT_SCHEMA_VERSION
        )

    def test_reports_validate(self, tmp_path):
        path = write_checkpoint(tmp_path / "sweep.ckpt")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("F1 torn")
        (tmp_path / "junk.tmp").write_bytes(b"x")
        for repair in (False, True):
            report = scan_directory(tmp_path, repair=repair)
            assert validate_fsck_report(report) == []

    def test_ok_must_match_unrepairable_count(self):
        report = {
            "schema_version": 1,
            "kind": "fsck-report",
            "generated_unix": 0.0,
            "root": "/spool",
            "repair": False,
            "scanned": {},
            "findings": [],
            "counts": {
                "verified": 0,
                "findings": 1,
                "repaired": 0,
                "quarantined": 1,
                "unrepairable": 1,
            },
            "ok": True,
        }
        errors = validate_fsck_report(report)
        assert any("unrepairable" in error for error in errors)

    def test_newer_schema_rejected(self):
        errors = validate_fsck_report(
            {"schema_version": FSCK_REPORT_SCHEMA_VERSION + 1}
        )
        assert any("newer" in error for error in errors)


class TestCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        write_checkpoint(tmp_path / "sweep.ckpt")
        assert run([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_unrepairable_exit_one(self, tmp_path, capsys):
        path = write_checkpoint(tmp_path / "sweep.ckpt", records=3)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0x01
        path.write_bytes(bytes(raw))
        assert run([str(tmp_path), "--repair"]) == 1
        out = capsys.readouterr().out
        assert "quarantined" in out

    def test_report_file_validates(self, tmp_path):
        write_checkpoint(tmp_path / "sweep.ckpt")
        report_path = tmp_path / "out" / "fsck.json"
        report_path.parent.mkdir()
        assert run([str(tmp_path), "--report", str(report_path)]) == 0
        assert validate_fsck_report_file(report_path) == []
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["kind"] == "fsck-report"

    def test_report_to_stdout(self, tmp_path, capsys):
        write_checkpoint(tmp_path / "sweep.ckpt")
        assert run([str(tmp_path), "--report", "-", "--quiet"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_fsck_report(payload) == []
