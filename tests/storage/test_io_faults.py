"""The I/O fault shim: spec parsing, plans, and crash semantics."""

import errno
import os

import pytest

from repro.storage.faultio import (
    ENV_VAR,
    FaultingIO,
    InjectedCrashError,
    IOFaultPlan,
    IOFaultSpec,
    activate_io_plan,
    deactivate_io_plan,
    io_from_environment,
    parse_io_plan,
    parse_io_spec,
)
from repro.storage.io import (
    StorageIO,
    atomic_write_bytes,
    atomic_write_text,
    durable_append,
    get_io,
    set_io,
)


@pytest.fixture(autouse=True)
def clean_io(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    deactivate_io_plan()
    yield
    deactivate_io_plan()


class TestSpecParsing:
    def test_minimal_spec(self):
        spec = parse_io_spec("crash@write")
        assert (spec.kind, spec.op, spec.nth) == ("crash", "write", 1)

    def test_full_spec(self):
        spec = parse_io_spec("torn@write:path=.ckpt,nth=3,keep=7")
        assert spec.path == ".ckpt"
        assert spec.nth == 3
        assert spec.keep == 7

    def test_missing_op_rejected(self):
        with pytest.raises(ValueError, match="must name an op"):
            parse_io_spec("crash")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            parse_io_spec("meltdown@write")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            parse_io_spec("crash@reticulate")

    def test_torn_requires_write_op(self):
        with pytest.raises(ValueError, match="write"):
            parse_io_spec("torn@fsync")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            parse_io_spec("crash@write:color=red")

    def test_non_integer_nth_rejected(self):
        with pytest.raises(ValueError, match="not an integer"):
            parse_io_spec("crash@write:nth=soon")

    def test_plan_splits_on_semicolons(self):
        plan = parse_io_plan("crash@write ; enospc@open:path=.json")
        assert [s.kind for s in plan.specs] == ["crash", "enospc"]

    def test_empty_plan(self):
        assert parse_io_plan("").specs == []


class TestPlanSelection:
    def test_nth_counts_matching_ops_only(self):
        plan = IOFaultPlan([IOFaultSpec("eio", "write", nth=2)])
        assert plan.select("open", "f") is None
        assert plan.select("write", "f") is None
        assert plan.select("write", "f") is not None

    def test_path_substring_filter(self):
        plan = IOFaultPlan([IOFaultSpec("eio", "write", path=".ckpt")])
        assert plan.select("write", "/tmp/history.json") is None
        assert plan.select("write", "/tmp/sweep.ckpt") is not None

    def test_each_spec_fires_exactly_once(self):
        plan = IOFaultPlan([IOFaultSpec("eio", "write")])
        assert plan.select("write", "f") is not None
        assert plan.select("write", "f") is None

    def test_star_op_matches_all(self):
        plan = IOFaultPlan([IOFaultSpec("crash", "*")])
        assert plan.select("fsync_dir", "d") is not None


class TestFaultingIOErrors:
    def test_enospc_on_write(self, tmp_path):
        io = FaultingIO(IOFaultPlan([IOFaultSpec("enospc", "write")]))
        handle = io.open(tmp_path / "f", "w")
        with pytest.raises(OSError) as excinfo:
            io.write(handle, "data")
        assert excinfo.value.errno == errno.ENOSPC

    def test_eio_on_fsync(self, tmp_path):
        io = FaultingIO(IOFaultPlan([IOFaultSpec("eio", "fsync")]))
        handle = io.open(tmp_path / "f", "w")
        io.write(handle, "data")
        with pytest.raises(OSError) as excinfo:
            io.fsync(handle)
        assert excinfo.value.errno == errno.EIO

    def test_short_write_keeps_prefix_and_survives(self, tmp_path):
        io = FaultingIO(IOFaultPlan([IOFaultSpec("short", "write", keep=3)]))
        handle = io.open(tmp_path / "f", "w")
        with pytest.raises(OSError) as excinfo:
            io.write(handle, "abcdef")
        assert excinfo.value.errno == errno.EIO
        # The process survives; later I/O works.
        io.write(handle, "-tail")
        handle.close()
        assert (tmp_path / "f").read_text() == "abc-tail"


class TestCrashSemantics:
    def test_crash_is_base_exception(self):
        assert not issubclass(InjectedCrashError, Exception)
        assert issubclass(InjectedCrashError, BaseException)

    def test_unsynced_data_lost_on_crash(self, tmp_path):
        path = tmp_path / "f"
        io = FaultingIO(IOFaultPlan([IOFaultSpec("crash", "write", nth=3)]))
        handle = io.open(path, "w")
        io.write(handle, "durable\n")
        io.fsync(handle)
        io.write(handle, "buffered\n")  # never fsync'd
        with pytest.raises(InjectedCrashError):
            io.write(handle, "third\n")
        assert path.read_text() == "durable\n"

    def test_torn_write_prefix_is_durable(self, tmp_path):
        path = tmp_path / "f"
        io = FaultingIO(
            IOFaultPlan([IOFaultSpec("torn", "write", nth=2, keep=4)])
        )
        handle = io.open(path, "w")
        io.write(handle, "complete\n")
        io.fsync(handle)
        with pytest.raises(InjectedCrashError):
            io.write(handle, "torn-record\n")
        assert path.read_text() == "complete\ntorn"

    def test_all_io_refused_after_crash(self, tmp_path):
        io = FaultingIO(IOFaultPlan([IOFaultSpec("crash", "fsync")]))
        handle = io.open(tmp_path / "f", "w")
        io.write(handle, "x")
        with pytest.raises(InjectedCrashError):
            io.fsync(handle)
        with pytest.raises(InjectedCrashError):
            io.open(tmp_path / "g", "w")
        with pytest.raises(InjectedCrashError):
            io.replace(tmp_path / "a", tmp_path / "b")

    def test_append_mode_preserves_preexisting_durable_length(self, tmp_path):
        path = tmp_path / "f"
        path.write_text("old\n")
        io = FaultingIO(IOFaultPlan([IOFaultSpec("crash", "write", nth=2)]))
        handle = io.open(path, "a")
        io.write(handle, "never-synced\n")
        with pytest.raises(InjectedCrashError):
            io.write(handle, "more\n")
        assert path.read_text() == "old\n"

    def test_record_mode_enumerates_operations(self, tmp_path):
        io = FaultingIO(record=True)
        handle = io.open(tmp_path / "f", "w")
        io.write(handle, "x")
        io.fsync(handle)
        handle.close()
        assert [op for op, _ in io.operations] == ["open", "write", "fsync"]


class TestActivation:
    def test_set_io_wins(self):
        io = FaultingIO()
        set_io(io)
        try:
            assert get_io() is io
        finally:
            set_io(None)

    def test_default_is_passthrough(self):
        assert isinstance(get_io(), StorageIO)
        assert not isinstance(get_io(), FaultingIO)

    def test_activate_accepts_mini_language(self):
        io = activate_io_plan("eio@write:path=.ckpt")
        assert get_io() is io
        assert io.plan.specs[0].path == ".ckpt"
        deactivate_io_plan()
        assert not isinstance(get_io(), FaultingIO)

    def test_environment_plan_installs(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "eio@open:path=test-env-one")
        io = get_io()
        assert isinstance(io, FaultingIO)

    def test_environment_plan_counters_persist(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "eio@write:nth=2,path=test-env-two")
        first = io_from_environment()
        first.plan.select("write", "test-env-two")
        # The same instance comes back: ordinals keep counting.
        assert io_from_environment() is first


class TestAtomicWrites:
    def test_atomic_write_survives_replace_fault(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("old")
        set_io(
            FaultingIO(IOFaultPlan([IOFaultSpec("enospc", "replace")]))
        )
        try:
            with pytest.raises(OSError):
                atomic_write_text(path, "new")
        finally:
            set_io(None)
        assert path.read_text() == "old"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_atomic_write_bytes_round_trip(self, tmp_path):
        path = tmp_path / "blob"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_durable_append(self, tmp_path):
        path = tmp_path / "log"
        io = get_io()
        handle = io.open(path, "a")
        durable_append(io, handle, "line\n")
        handle.close()
        assert path.read_text() == "line\n"

    def test_crash_leaves_orphan_temp_for_fsck(self, tmp_path):
        path = tmp_path / "doc.json"
        set_io(FaultingIO(IOFaultPlan([IOFaultSpec("crash", "replace")])))
        try:
            with pytest.raises(InjectedCrashError):
                atomic_write_text(path, "new")
        finally:
            set_io(None)
        # Crash debris stays on disk, exactly like a real power cut;
        # repro-fsck removes it as an orphan temp.
        assert not path.exists()
        assert len(list(tmp_path.glob("*.tmp"))) == 1
