"""The background storage scrubber: passes, metrics, health flips."""

import time

from repro.obs.metrics import MetricsRegistry
from repro.resilience.checkpoint import SweepCheckpoint
from repro.storage.scrub import Scrubber


def write_checkpoint(path, records=2):
    with SweepCheckpoint(path, config_hash="h") as checkpoint:
        for index in range(records):
            checkpoint.record(f"sig-{index}", {"misses": index})
    return path


def rot(path):
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 3] ^= 0x01
    path.write_bytes(bytes(raw))


class TestScrubOnce:
    def test_clean_pass(self, tmp_path):
        write_checkpoint(tmp_path / "sweep.ckpt")
        metrics = MetricsRegistry()
        scrubber = Scrubber(tmp_path, metrics=metrics)
        report = scrubber.scrub_once()
        assert report["ok"] is True
        assert scrubber.passes == 1
        assert scrubber.healthy() is True
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["storage.scrub.scans"] == 1
        assert snapshot["storage.scrub.verified"] >= 1
        assert snapshot["storage.scrub.findings"] == 0

    def test_scan_only_never_repairs(self, tmp_path):
        path = write_checkpoint(tmp_path / "sweep.ckpt")
        before = path.read_bytes()
        rot(path)
        rotten = path.read_bytes()
        Scrubber(tmp_path).scrub_once()
        assert path.read_bytes() == rotten != before

    def test_unrepairable_flips_health(self, tmp_path):
        path = write_checkpoint(tmp_path / "sweep.ckpt", records=3)
        rot(path)
        metrics = MetricsRegistry()
        scrubber = Scrubber(tmp_path, metrics=metrics)
        scrubber.scrub_once()
        assert scrubber.healthy() is False
        unrepairable = scrubber.unrepairable_findings()
        assert unrepairable and unrepairable[0]["path"].endswith("sweep.ckpt")
        assert (
            metrics.snapshot()["counters"]["storage.scrub.unrepairable"] >= 1
        )

    def test_clean_pass_clears_condition(self, tmp_path):
        path = write_checkpoint(tmp_path / "sweep.ckpt", records=3)
        rot(path)
        scrubber = Scrubber(tmp_path)
        scrubber.scrub_once()
        assert not scrubber.healthy()
        path.unlink()  # operator ran repro-fsck --repair offline
        scrubber.scrub_once()
        assert scrubber.healthy()

    def test_status_block(self, tmp_path):
        scrubber = Scrubber(tmp_path)
        status = scrubber.status()
        assert status == {
            "passes": 0,
            "healthy": True,
            "last_counts": None,
            "unrepairable": [],
        }
        scrubber.scrub_once()
        status = scrubber.status()
        assert status["passes"] == 1
        assert status["last_counts"]["findings"] == 0


class TestThread:
    def test_start_stop(self, tmp_path):
        write_checkpoint(tmp_path / "sweep.ckpt")
        scrubber = Scrubber(tmp_path, interval=0.01)
        scrubber.start()
        try:
            deadline = time.monotonic() + 5.0
            while scrubber.passes == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            scrubber.stop()
        assert scrubber.passes >= 1
        assert scrubber.healthy() is True

    def test_start_idempotent(self, tmp_path):
        scrubber = Scrubber(tmp_path, interval=60.0)
        scrubber.start()
        thread = scrubber._thread
        scrubber.start()
        assert scrubber._thread is thread
        scrubber.stop()
