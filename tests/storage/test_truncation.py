"""Property test: an RPM2 prefix either fails typed or loads exactly.

The zero-silent-data-loss contract for stream artifacts, checked
exhaustively: for *every* possible truncation point of an RPM2 file,
loading the prefix either raises a typed error
(:class:`~repro.errors.TraceFormatError` for structural damage,
:class:`~repro.errors.IntegrityError` for checksum damage) or returns
a stream bit-identical to the original. No prefix may load as a
quietly shorter or different stream.

The one legal "lossy" window is the footer itself: a prefix holding
all the columns but only part of the 8-byte CRC32 footer is
indistinguishable from a legacy footer-less file, so it loads — with
columns provably identical to the original's.
"""

import pytest

from repro.cache.stream import PackedMissStream
from repro.errors import IntegrityError, TraceFormatError
from repro.storage.framing import FOOTER_SIZE


def small_stream() -> PackedMissStream:
    events = [
        (code, 0x1000 + 16 * index)
        for index, code in enumerate([0, 1, 0, 0, 1, 0, 1, 1, 0, 0])
    ]
    packed = PackedMissStream.from_events(events, processor_references=40)
    packed.append_flush()
    return packed


def columns(stream: PackedMissStream):
    return (
        bytes(stream.codes),
        list(stream.addresses),
        list(stream.flush_offsets),
        stream.processor_references,
    )


@pytest.mark.parametrize("mmap", [False, True], ids=["read", "mmap"])
def test_every_prefix_fails_typed_or_loads_identical(tmp_path, mmap):
    original = small_stream()
    path = tmp_path / "stream.rpm2"
    original.save(path)
    data = path.read_bytes()
    expected = columns(original)

    loaded_sizes = []
    for size in range(len(data) + 1):
        prefix = tmp_path / "prefix.rpm2"
        prefix.write_bytes(data[:size])
        try:
            stream = PackedMissStream.load(prefix, mmap=mmap)
        except (TraceFormatError, IntegrityError):
            continue
        # A prefix that loads must be bit-identical to the original —
        # anything else is silent data loss.
        assert columns(stream) == expected, f"prefix of {size} bytes"
        loaded_sizes.append(size)

    # Exactly the legal window loads: the full file, plus the
    # footer-less/partial-footer prefixes that mimic a legacy file.
    total = len(data) - FOOTER_SIZE
    assert loaded_sizes == list(range(total, len(data) + 1))


def test_full_file_round_trips(tmp_path):
    original = small_stream()
    path = tmp_path / "stream.rpm2"
    original.save(path)
    assert columns(PackedMissStream.load(path)) == columns(original)
