"""CRC32 record framing: lines, document checksums, binary footers."""

import json
import zlib

import pytest

from repro.errors import IntegrityError
from repro.storage.framing import (
    FOOTER_MAGIC,
    FOOTER_SIZE,
    FRAME_PREFIX,
    crc32_footer,
    crc32_hex,
    document_checksum,
    file_crc32,
    frame_line,
    is_framed,
    parse_framed_line,
    verify_crc32_footer,
    verify_document_checksum,
)


class TestFrameLine:
    def test_round_trip(self):
        payload = json.dumps({"kind": "result", "value": 42})
        assert parse_framed_line(frame_line(payload)) == payload

    def test_round_trip_unicode(self):
        payload = '{"name": "caché"}'
        assert parse_framed_line(frame_line(payload)) == payload

    def test_round_trip_empty_payload(self):
        assert parse_framed_line(frame_line("")) == ""

    def test_frame_shape(self):
        framed = frame_line("abc")
        prefix, crc, length, payload = framed.split(" ", 3)
        assert prefix + " " == FRAME_PREFIX
        assert crc == f"{zlib.crc32(b'abc'):08x}"
        assert length == "3"
        assert payload == "abc"

    def test_newline_in_payload_rejected(self):
        with pytest.raises(ValueError):
            frame_line("two\nlines")

    def test_is_framed(self):
        assert is_framed(frame_line("x"))
        assert not is_framed('{"plain": "json"}')

    def test_trailing_newline_stripped_before_parse(self):
        framed = frame_line("abc")
        assert parse_framed_line(framed + "\n") == "abc"
        assert parse_framed_line(framed + "\r\n") == "abc"


class TestParseFramedLine:
    def test_legacy_line_passes_through(self):
        legacy = '{"kind": "header", "schema": 1}'
        assert parse_framed_line(legacy) == legacy

    def test_flipped_payload_byte_detected(self):
        framed = frame_line('{"value": 41}')
        rotten = framed.replace("41", "42")
        with pytest.raises(IntegrityError, match="checksum"):
            parse_framed_line(rotten)

    def test_truncated_payload_detected(self):
        framed = frame_line('{"value": 12345}')
        with pytest.raises(IntegrityError):
            parse_framed_line(framed[:-4])

    def test_garbled_header_fields_detected(self):
        with pytest.raises(IntegrityError):
            parse_framed_line("F1 zzzz zz not-a-frame")

    def test_context_lands_in_message(self):
        framed = frame_line("abc").replace("abc", "abd")
        with pytest.raises(IntegrityError, match="ckpt:17"):
            parse_framed_line(framed, context="ckpt:17")


class TestDocumentChecksum:
    def test_key_order_independent(self):
        assert document_checksum({"a": 1, "b": 2}) == document_checksum(
            {"b": 2, "a": 1}
        )

    def test_verify_round_trip(self):
        entries = [{"median": 1.5}, {"median": 2.5}]
        verify_document_checksum(entries, document_checksum(entries), "t")

    def test_verify_mismatch_raises(self):
        checksum = document_checksum([{"median": 1.5}])
        with pytest.raises(IntegrityError, match="history"):
            verify_document_checksum([{"median": 9.5}], checksum, "history")


class TestCrc32Footer:
    def test_footer_layout(self):
        footer = crc32_footer(b"payload")
        assert len(footer) == FOOTER_SIZE
        assert footer.startswith(FOOTER_MAGIC)

    def test_verify_round_trip(self):
        data = b"payload bytes"
        assert verify_crc32_footer(data + crc32_footer(data), len(data)) is True

    def test_missing_footer_is_legacy(self):
        assert verify_crc32_footer(b"payload", len(b"payload")) is False

    def test_partial_footer_is_legacy(self):
        data = b"payload"
        buffer = data + crc32_footer(data)[:3]
        assert verify_crc32_footer(buffer, len(data)) is False

    def test_corrupt_content_detected(self):
        data = b"payload bytes"
        buffer = bytearray(data + crc32_footer(data))
        buffer[3] ^= 0x01
        with pytest.raises(IntegrityError, match="artifact"):
            verify_crc32_footer(bytes(buffer), len(data))

    def test_corrupt_footer_crc_detected(self):
        data = b"payload bytes"
        buffer = bytearray(data + crc32_footer(data))
        buffer[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            verify_crc32_footer(bytes(buffer), len(data))


class TestFileCrc32:
    def test_matches_zlib(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x" * 10_000)
        assert file_crc32(path) == crc32_hex(b"x" * 10_000)

    def test_streams_in_chunks(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"abcdef" * 1000)
        assert file_crc32(path, chunk_size=7) == file_crc32(path)


class TestCrc32Hex:
    def test_eight_lowercase_hex(self):
        digest = crc32_hex(b"anything")
        assert len(digest) == 8
        assert digest == digest.lower()
        assert int(digest, 16) == zlib.crc32(b"anything") & 0xFFFFFFFF
