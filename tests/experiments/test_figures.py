"""Tests for figure builders (shape assertions on small workloads)."""

import pytest

from repro.experiments.figures import (
    build_figure3,
    build_figure4,
    build_figure5,
    build_figure6,
)


@pytest.fixture(scope="module")
def fig3(runner):
    return build_figure3(runner, associativities=(2, 4), l2="64K-32")


@pytest.fixture(scope="module")
def fig4(runner):
    return build_figure4(runner, associativities=(2, 4), l2="64K-32")


@pytest.fixture(scope="module")
def fig5(runner):
    return build_figure5(
        runner, associativities=(4, 8), list_lengths=(1, 2), l2="64K-32"
    )


@pytest.fixture(scope="module")
def fig6(runner):
    return build_figure6(runner, associativities=(4, 8), l2="64K-32")


class TestFigure3:
    def test_series_present(self, fig3):
        assert "traditional (wb-opt)" in fig3.series
        assert "naive (no-opt)" in fig3.series

    def test_traditional_flat_and_minimal(self, fig3):
        trad = fig3.series["traditional (wb-opt)"]
        for a, probes in trad.items():
            assert probes <= 1.0
        for name, points in fig3.series.items():
            if name.endswith("(wb-opt)"):
                for a in trad:
                    assert points[a] >= trad[a] - 1e-9

    def test_optimization_never_hurts(self, fig3):
        for scheme in ("naive", "mru", "partial"):
            for a in (2, 4):
                assert fig3.series[f"{scheme} (no-opt)"][a] >= (
                    fig3.series[f"{scheme} (wb-opt)"][a]
                )

    def test_probes_grow_with_associativity(self, fig3):
        for scheme in ("naive", "mru"):
            series = fig3.series[f"{scheme} (wb-opt)"]
            assert series[4] > series[2]

    def test_render(self, fig3):
        text = fig3.render()
        assert "associativity" in text
        assert "Figure 3" in text


class TestFigure4:
    def test_miss_series_match_formulas(self, fig4):
        for a in (2, 4):
            assert fig4.series["naive misses"][a] == pytest.approx(a)
            assert fig4.series["mru misses"][a] == pytest.approx(a + 1)

    def test_partial_dominates_on_misses(self, fig4):
        for a in (2, 4):
            assert fig4.series["partial misses"][a] < fig4.series["naive misses"][a]

    def test_hits_series_present(self, fig4):
        for scheme in ("naive", "mru", "partial"):
            assert f"{scheme} hits" in fig4.series


class TestFigure5:
    def test_reduced_lists_no_better_than_full(self, fig5):
        full = fig5.left.series["full list"]
        for name, points in fig5.left.series.items():
            if name.startswith("list length"):
                for a, probes in points.items():
                    assert probes >= full[a] - 1e-9

    def test_longer_lists_dominate_shorter(self, fig5):
        one = fig5.left.series["list length 1"]
        two = fig5.left.series["list length 2"]
        for a in two:
            assert two[a] <= one[a] + 1e-9

    def test_distributions_normalized(self, fig5):
        for a, dist in fig5.distributions.items():
            assert len(dist) == a
            assert sum(dist) == pytest.approx(1.0, abs=1e-6)

    def test_f1_decreases_with_associativity(self, fig5):
        # Paper Figure 5 (right): wider sets spread hits over more
        # distances.
        assert fig5.distributions[8][0] <= fig5.distributions[4][0] + 0.05

    def test_render(self, fig5):
        text = fig5.render()
        assert "f1=" in text


class TestFigure6:
    def test_transform_series_present(self, fig6):
        for transform in ("none", "xor", "improved"):
            for t in (16, 32):
                assert f"{transform} t={t}" in fig6.left.series

    def test_theory_is_lower_bound_at_16_bits(self, fig6):
        # Theory is a probabilistic lower bound; measured transforms
        # should not beat it by more than noise.
        for a in (4, 8):
            theory = fig6.left.series["theory t=16"][a]
            for transform in ("none", "xor", "improved"):
                measured = fig6.left.series[f"{transform} t=16"][a]
                assert measured >= theory - 0.1

    def test_no_transform_is_worst(self, fig6):
        for t in (16, 32):
            for a in (4, 8):
                none = fig6.left.series[f"none t={t}"][a]
                assert none >= fig6.left.series[f"xor t={t}"][a] - 0.05
                assert none >= fig6.left.series[f"improved t={t}"][a] - 0.05

    def test_right_panel_has_mru_and_partial(self, fig6):
        assert "mru" in fig6.right.series
        assert "partial improved t=16" in fig6.right.series
        assert "partial improved t=32" in fig6.right.series

    def test_render(self, fig6):
        text = fig6.render()
        assert "Figure 6" in text
