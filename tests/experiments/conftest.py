"""Experiment-level fixtures: a shared runner on a tiny workload.

One session-scoped runner means the L1 miss streams are captured once
and reused by every experiments test.
"""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.trace.synthetic import AtumWorkload


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    workload = AtumWorkload(segments=2, references_per_segment=30_000, seed=11)
    return ExperimentRunner(workload)
