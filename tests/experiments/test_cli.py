"""Tests for the repro-tables CLI."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_analytic_targets(self, capsys):
        assert main(["table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "150+50x" in out

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_bad_scale(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["table3", "--scale", "7"])

    def test_simulated_target_small_scale(self, capsys):
        # Smallest legal scale: a single short segment.
        assert main(["table3", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "4K-16" in out

    def test_save_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        assert main([
            "table1", "fig4", "--scale", "0.002", "--save", str(out_dir),
        ]) == 0
        assert (out_dir / "table1.txt").exists()
        assert (out_dir / "fig4.txt").exists()
        assert (out_dir / "fig4.csv").exists()
        svg = (out_dir / "fig4.svg").read_text()
        assert svg.startswith("<svg")

    def test_save_figure_panels(self, capsys, tmp_path):
        out_dir = tmp_path / "panels"
        assert main(["fig5", "--scale", "0.002", "--save", str(out_dir)]) == 0
        assert (out_dir / "fig5_left.svg").exists()
