"""Tests for the experiment runner."""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.experiments.configs import parse_geometry


class TestMissStreamCaching:
    def test_stream_cached_per_geometry(self, runner):
        a = runner.miss_stream(parse_geometry("4K-16"))
        b = runner.miss_stream(parse_geometry("4K-16"))
        assert a is b

    def test_distinct_geometries_distinct_streams(self, runner):
        a = runner.miss_stream(parse_geometry("4K-16"))
        b = runner.miss_stream(parse_geometry("16K-16"))
        assert a is not b

    def test_l1_miss_ratio_available(self, runner):
        ratio = runner.l1_miss_ratio(parse_geometry("4K-16"))
        assert 0.0 < ratio < 1.0


class TestRun:
    def test_basic_result_fields(self, runner):
        result = runner.run("16K-16", "64K-32", 4)
        assert result.associativity == 4
        assert 0.0 < result.local_miss_ratio < 1.0
        assert 0.0 < result.fraction_writebacks < 1.0
        assert 0.0 < result.global_miss_ratio < result.l1_miss_ratio

    def test_default_schemes_present(self, runner):
        result = runner.run("16K-16", "64K-32", 4)
        for name in ("traditional", "naive", "mru", "partial"):
            assert name in result.schemes

    def test_traditional_always_one_probe(self, runner):
        result = runner.run("16K-16", "64K-32", 4)
        trad = result.schemes["traditional"]
        assert trad.misses == pytest.approx(1.0)
        assert trad.readin_hits == pytest.approx(1.0)

    def test_naive_miss_probes_equal_associativity(self, runner):
        for a in (2, 4):
            result = runner.run("16K-16", "64K-32", a)
            assert result.schemes["naive"].misses == pytest.approx(a)
            assert result.schemes["mru"].misses == pytest.approx(a + 1)

    def test_mru_list_lengths(self, runner):
        result = runner.run("16K-16", "64K-32", 4, mru_list_lengths=(1, 2))
        assert "mru/m1" in result.schemes
        assert "mru/m2" in result.schemes
        # Shorter lists cannot beat the full list on read-in hits.
        assert result.schemes["mru/m1"].readin_hits >= (
            result.schemes["mru"].readin_hits
        )

    def test_transform_variants(self, runner):
        result = runner.run(
            "16K-16", "64K-32", 4, transforms=("none", "xor"),
        )
        assert "partial/none/t16" in result.schemes
        assert "partial/xor/t16" in result.schemes
        # The default 'partial' alias matches the first transform.
        assert result.schemes["partial"].total == pytest.approx(
            result.schemes["partial/none/t16"].total
        )

    def test_extra_tag_widths(self, runner):
        result = runner.run("16K-16", "64K-32", 4, extra_tag_bits=(32,))
        assert "partial/xor/t32" in result.schemes
        # Wider tags cannot increase false matches.
        assert result.schemes["partial/xor/t32"].misses <= (
            result.schemes["partial/xor/t16"].misses + 1e-9
        )

    def test_writeback_optimization_flag(self, runner):
        optimized = runner.run("16K-16", "64K-32", 4)
        raw = runner.run("16K-16", "64K-32", 4, writeback_optimization=False)
        # Without the optimization every scheme pays probes on
        # write-backs, so totals can only go up.
        for name in ("naive", "mru", "partial"):
            assert raw.schemes[name].total >= optimized.schemes[name].total

    def test_mru_distribution_shape(self, runner):
        result = runner.run("16K-16", "64K-32", 4)
        dist = result.mru_distribution
        assert len(dist) == 4
        assert sum(dist) == pytest.approx(1.0)
        assert dist[0] == max(dist)

    def test_best_total_excludes_traditional(self, runner):
        result = runner.run("16K-16", "64K-32", 4)
        assert result.best_total() in ("naive", "mru", "partial")

    def test_geometry_objects_accepted(self, runner):
        result = runner.run(
            parse_geometry("16K-16"), parse_geometry("64K-32"), 2
        )
        assert result.l2.label == "64K-32"


class TestCrossSchemeConsistency:
    def test_all_schemes_see_identical_hit_miss_stream(self, runner):
        # Scheme probe accounting must never disagree about which
        # accesses hit: identical denominators => consistent averages.
        result = runner.run("16K-16", "64K-32", 4)
        # Traditional's total is exactly (readins / all accesses)
        # because every read-in costs one probe and write-backs cost 0.
        trad = result.schemes["traditional"]
        readin_share = 1 - result.fraction_writebacks
        assert trad.total == pytest.approx(readin_share, abs=1e-9)
