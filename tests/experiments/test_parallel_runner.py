"""Parallel execution paths are bit-identical to the serial runner.

Both parallel layers — segment-sharded replay
(:meth:`~repro.experiments.runner.ExperimentRunner.run_segmented`) and
point-sharded sweeps
(:class:`~repro.experiments.runner.ParallelSweepRunner`) — must
reproduce the serial :meth:`~repro.experiments.runner.ExperimentRunner.run`
results exactly for a fixed workload seed: every worker derives its
trace deterministically and the merged counters are integer sums.
"""

import pytest

from repro.cache.hierarchy import (
    cached_miss_stream,
    clear_miss_stream_cache,
    split_stream_at_flushes,
)
from repro.experiments.runner import (
    ExperimentRunner,
    ParallelSweepRunner,
    SweepPoint,
)
from repro.trace.synthetic import AtumWorkload


def small_workload():
    return AtumWorkload(segments=3, references_per_segment=4_000, seed=19)


def assert_results_identical(actual, expected):
    assert actual.global_miss_ratio == expected.global_miss_ratio
    assert actual.local_miss_ratio == expected.local_miss_ratio
    assert actual.fraction_writebacks == expected.fraction_writebacks
    assert actual.l1_miss_ratio == expected.l1_miss_ratio
    assert actual.writeback_miss_ratio == expected.writeback_miss_ratio
    assert actual.mru_distribution == expected.mru_distribution
    assert actual.mru_update_fraction == expected.mru_update_fraction
    assert set(actual.schemes) == set(expected.schemes)
    for label, scheme in expected.schemes.items():
        got = actual.schemes[label]
        assert got.hits == scheme.hits, label
        assert got.misses == scheme.misses, label
        assert got.total == scheme.total, label
        assert got.readin_hits == scheme.readin_hits, label


@pytest.mark.parametrize("processes", [1, 2])
def test_run_segmented_matches_serial(processes):
    workload = small_workload()
    serial = ExperimentRunner(workload).run("4K-16", "64K-32", 4)
    segmented = ExperimentRunner(workload).run_segmented(
        "4K-16", "64K-32", 4, processes=processes
    )
    assert_results_identical(segmented, serial)


def test_run_segmented_matches_serial_legacy_path():
    workload = small_workload()
    serial = ExperimentRunner(workload, use_engine=False).run(
        "4K-16", "64K-32", 4
    )
    segmented = ExperimentRunner(workload, use_engine=False).run_segmented(
        "4K-16", "64K-32", 4, processes=2
    )
    assert_results_identical(segmented, serial)


def test_run_segmented_with_options():
    workload = small_workload()
    kwargs = dict(
        mru_list_lengths=(1, 2),
        transforms=("xor", "swap"),
        writeback_optimization=False,
    )
    serial = ExperimentRunner(workload).run("4K-16", "64K-32", 4, **kwargs)
    segmented = ExperimentRunner(workload).run_segmented(
        "4K-16", "64K-32", 4, processes=2, **kwargs
    )
    assert_results_identical(segmented, serial)


@pytest.mark.parametrize("processes", [1, 2])
def test_parallel_sweep_matches_serial(processes):
    workload = small_workload()
    points = [
        SweepPoint("4K-16", "64K-32", 2),
        SweepPoint("4K-16", "64K-32", 4),
        SweepPoint("8K-16", "64K-32", 4),
        SweepPoint("4K-16", "128K-32", 4, mru_list_lengths=(1,)),
    ]
    serial_runner = ExperimentRunner(workload)
    expected = [
        serial_runner.run(
            p.l1, p.l2, p.associativity,
            tag_bits=p.tag_bits,
            transforms=p.transforms,
            mru_list_lengths=p.mru_list_lengths,
            extra_tag_bits=p.extra_tag_bits,
            writeback_optimization=p.writeback_optimization,
        )
        for p in points
    ]
    parallel = ParallelSweepRunner(workload, processes=processes)
    results = parallel.run_points(points)
    assert len(results) == len(points)
    for got, want in zip(results, expected):
        assert_results_identical(got, want)


def test_parallel_sweep_empty():
    assert ParallelSweepRunner(small_workload()).run_points([]) == []


def test_engine_and_legacy_runner_results_identical():
    """The runner's two instrumentation paths agree end to end."""
    workload = small_workload()
    engine_result = ExperimentRunner(workload, use_engine=True).run(
        "4K-16", "64K-32", 4, mru_list_lengths=(2,), transforms=("xor", "swap")
    )
    legacy_result = ExperimentRunner(workload, use_engine=False).run(
        "4K-16", "64K-32", 4, mru_list_lengths=(2,), transforms=("xor", "swap")
    )
    assert_results_identical(engine_result, legacy_result)


def test_cached_miss_stream_is_shared():
    """Same workload + L1 geometry: one capture, shared object."""
    clear_miss_stream_cache()
    workload = small_workload()
    first, ratio_a = cached_miss_stream(workload, 4096, 16)
    second, ratio_b = cached_miss_stream(
        small_workload(), 4096, 16
    )
    assert first is second
    assert ratio_a == ratio_b
    other, _ = cached_miss_stream(workload, 8192, 16)
    assert other is not first
    clear_miss_stream_cache()


def test_split_stream_at_flushes_partitions_events():
    from repro.cache.hierarchy import FLUSH_MARKER

    workload = small_workload()
    stream, _ = cached_miss_stream(workload, 4096, 16)
    segments = split_stream_at_flushes(stream)
    assert len(segments) == workload.segments
    flushes = sum(1 for event in stream.events if event == FLUSH_MARKER)
    total = sum(len(segment.events) for segment in segments)
    assert total == len(stream.events) - flushes
    recombined = [event for segment in segments for event in segment.events]
    assert recombined == [e for e in stream.events if e != FLUSH_MARKER]
    assert segments[0].processor_references == stream.processor_references
    assert all(s.processor_references == 0 for s in segments[1:])


class TestStuckProgressDrainer:
    """Regression guard: a wedged drainer warns and never blocks exit."""

    def test_stuck_drainer_warns_and_pool_results_survive(self, monkeypatch):
        import threading

        from repro.experiments import runner as runner_module

        workload = AtumWorkload(
            segments=2, references_per_segment=2_000, seed=19
        )
        sweep = ParallelSweepRunner(workload, processes=2)
        points = [
            SweepPoint("4K-16", "64K-32", 2),
            SweepPoint("8K-16", "64K-32", 2),
        ]
        by_l1 = {}
        for index, point in enumerate(points):
            by_l1.setdefault(point.l1, []).append((index, point))
        shards = [
            (shard_index, workload, sweep.use_engine, group)
            for shard_index, group in enumerate(by_l1.values())
        ]

        class StuckReporter:
            """Enabled reporter whose drain thread never consumes."""

            enabled = True
            finished_count = 0
            total = len(shards)

            def drain(self, queue):
                release = threading.Event()
                thread = threading.Thread(
                    target=release.wait, daemon=True
                )
                thread.start()
                self.release = release
                return thread

        warnings = []
        monkeypatch.setattr(
            runner_module.log,
            "warning",
            lambda message, **fields: warnings.append((message, fields)),
        )
        monkeypatch.setattr(runner_module, "_DRAINER_JOIN_TIMEOUT", 0.1)
        reporter = StuckReporter()
        outputs = sweep._run_pool(shards, 2, reporter)
        reporter.release.set()  # unblock the stub thread
        # The sweep's results are intact despite the wedged drainer...
        assert len(outputs) == len(shards)
        # ...the structured warning names the condition...
        assert [message for message, _ in warnings] == [
            "sweep.progress_drainer_stuck"
        ]
        assert warnings[0][1]["joined_timeout_s"] == 0.1
        # ...and the progress queue was detached for the next sweep.
        assert runner_module._PROGRESS_QUEUE is None

    def test_healthy_drainer_does_not_warn(self, monkeypatch):
        from repro.experiments import runner as runner_module
        from repro.obs.progress import ProgressReporter

        import io as io_module

        workload = AtumWorkload(
            segments=2, references_per_segment=2_000, seed=19
        )
        sweep = ParallelSweepRunner(workload, processes=2)
        point = SweepPoint("4K-16", "64K-32", 2)
        shards = [(0, workload, sweep.use_engine, [(0, point)])]
        warnings = []
        monkeypatch.setattr(
            runner_module.log,
            "warning",
            lambda message, **fields: warnings.append(message),
        )
        reporter = ProgressReporter(
            total=1, enabled=True, stream=io_module.StringIO()
        )
        outputs = sweep._run_pool(shards, 2, reporter)
        assert len(outputs) == 1
        assert warnings == []
