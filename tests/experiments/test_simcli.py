"""Tests for the repro-sim CLI."""

import pytest

from repro.experiments.simcli import main


class TestSimCli:
    def test_basic_run(self, capsys):
        assert main([
            "--l1", "4K-16", "--l2", "64K-32", "--assoc", "2",
            "--scale", "0.002",
        ]) == 0
        out = capsys.readouterr().out
        assert "4K-16 L1" in out
        assert "traditional" in out
        assert "best low-cost scheme" in out

    def test_options_threaded_through(self, capsys):
        assert main([
            "--l1", "4K-16", "--l2", "64K-32", "--assoc", "4",
            "--transforms", "none,improved", "--mru-lists", "1,2",
            "--extra-tag-bits", "32", "--scale", "0.002",
        ]) == 0
        out = capsys.readouterr().out
        assert "partial/improved/t16" in out
        assert "partial/none/t32" in out
        assert "mru/m1" in out

    def test_no_wb_opt(self, capsys):
        assert main([
            "--l1", "4K-16", "--l2", "64K-32", "--assoc", "2",
            "--scale", "0.002", "--no-wb-opt",
        ]) == 0

    def test_bad_geometry(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["--l1", "bogus", "--scale", "0.002"])
