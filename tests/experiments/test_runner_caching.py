"""Tests for the runner's result caching and derived metrics."""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.trace.synthetic import AtumWorkload


@pytest.fixture(scope="module")
def small_runner():
    workload = AtumWorkload(segments=1, references_per_segment=12_000, seed=31)
    return ExperimentRunner(workload)


class TestResultCaching:
    def test_identical_args_return_cached_object(self, small_runner):
        a = small_runner.run("16K-16", "64K-32", 4)
        b = small_runner.run("16K-16", "64K-32", 4)
        assert a is b

    def test_different_associativity_distinct(self, small_runner):
        a = small_runner.run("16K-16", "64K-32", 4)
        b = small_runner.run("16K-16", "64K-32", 2)
        assert a is not b

    def test_option_changes_distinct(self, small_runner):
        base = small_runner.run("16K-16", "64K-32", 4)
        assert small_runner.run(
            "16K-16", "64K-32", 4, transforms=("improved",)
        ) is not base
        assert small_runner.run(
            "16K-16", "64K-32", 4, mru_list_lengths=(1,)
        ) is not base
        assert small_runner.run(
            "16K-16", "64K-32", 4, writeback_optimization=False
        ) is not base
        assert small_runner.run(
            "16K-16", "64K-32", 4, extra_tag_bits=(32,)
        ) is not base

    def test_geometry_objects_and_labels_share_cache(self, small_runner):
        from repro.experiments.configs import parse_geometry

        a = small_runner.run("16K-16", "64K-32", 4)
        b = small_runner.run(
            parse_geometry("16K-16"), parse_geometry("64K-32"), 4
        )
        assert a is b


class TestDerivedMetrics:
    def test_mru_update_fraction_in_range(self, small_runner):
        result = small_runner.run("16K-16", "64K-32", 4)
        assert 0.0 < result.mru_update_fraction <= 1.0

    def test_writeback_miss_ratio_in_range(self, small_runner):
        result = small_runner.run("16K-16", "64K-32", 4)
        assert 0.0 <= result.writeback_miss_ratio < 1.0

    def test_update_fraction_at_least_miss_share(self, small_runner):
        # Every miss rewrites the MRU list, so u >= share of misses
        # among accesses.
        result = small_runner.run("16K-16", "64K-32", 4)
        assert result.mru_update_fraction >= result.local_miss_ratio - 1e-9
