"""Tests for ASCII rendering helpers."""

from repro.experiments.report import render_series, render_table


class TestRenderTable:
    def test_basic(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert "30" in lines[3]

    def test_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"
        assert text.splitlines()[1] == "="

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_column_alignment(self):
        text = render_table(["name", "v"], [["long-name", 1], ["s", 22]])
        lines = text.splitlines()
        # The value column starts at the same offset in every row.
        assert lines[2].index("1") == lines[3].index("22")


class TestCsv:
    def test_table_to_csv(self):
        from repro.experiments.report import table_to_csv

        text = table_to_csv(["a", "b"], [[1, "x,y"], [2.5, "z"]])
        lines = text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == '1,"x,y"'
        assert lines[2] == "2.5,z"

    def test_series_to_csv(self):
        from repro.experiments.report import series_to_csv

        text = series_to_csv({"s": {1: 1.5}, "t": {2: 2.5}}, x_label="x")
        lines = text.splitlines()
        assert lines[0] == "x,s,t"
        assert lines[1] == "1,1.5,"
        assert lines[2] == "2,,2.5"


class TestRenderSeries:
    def test_union_of_x_values(self):
        text = render_series(
            {"a": {1: 1.0, 2: 2.0}, "b": {2: 3.0, 4: 4.0}},
            x_label="x", y_label="y",
        )
        assert "1" in text and "4" in text
        # Missing points render as '-'.
        assert "-" in text

    def test_header_names(self):
        text = render_series({"s1": {1: 1.0}}, x_label="assoc", y_label="p")
        assert "assoc" in text
        assert "s1" in text
