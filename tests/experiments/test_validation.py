"""Tests for the acceptance harness."""

import pytest

from repro.experiments.validation import CheckResult, ValidationReport, validate
from repro.experiments.validatecli import main


class TestReport:
    def test_all_passed(self):
        report = ValidationReport(
            checks=[CheckResult("a", True, "ok"), CheckResult("b", True, "ok")]
        )
        assert report.passed
        assert "ALL CHECKS PASSED" in report.render()

    def test_failure_detected(self):
        report = ValidationReport(
            checks=[CheckResult("a", True, "ok"), CheckResult("b", False, "bad")]
        )
        assert not report.passed
        rendered = report.render()
        assert "[FAIL] b: bad" in rendered
        assert "SOME CHECKS FAILED" in rendered


class TestValidate:
    @pytest.fixture(scope="class")
    def report(self, runner):
        return validate(runner)

    def test_all_named_checks_present(self, report):
        names = {check.name for check in report.checks}
        assert "analytic-tables" in names
        assert "scheme-orderings" in names
        assert "mru-favored-config" in names
        assert len(report.checks) == 10

    def test_analytic_checks_pass(self, report):
        by_name = {check.name: check for check in report.checks}
        assert by_name["analytic-tables"].passed

    def test_render_mentions_every_check(self, report):
        rendered = report.render()
        for check in report.checks:
            assert check.name in rendered


class TestCli:
    def test_exit_code_zero_on_pass(self, capsys):
        # A very small scale: mechanics only; some statistical checks
        # may legitimately wobble, so only assert the report printed
        # and the exit code reflects it.
        code = main(["--scale", "0.01"])
        out = capsys.readouterr().out
        assert "analytic-tables" in out
        assert code in (0, 1)
