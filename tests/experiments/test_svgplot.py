"""Tests for the SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigurationError
from repro.experiments.svgplot import _nice_ticks, render_svg, save_svg


SERIES = {
    "alpha": {1: 1.0, 2: 2.0, 4: 3.5},
    "beta": {1: 2.0, 2: 1.5, 4: 4.0},
}


class TestRenderSvg:
    def test_well_formed_xml(self):
        document = render_svg(SERIES, title="T", x_label="x", y_label="y")
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self):
        document = render_svg(SERIES)
        assert document.count("<polyline") == 2

    def test_legend_contains_series_names(self):
        document = render_svg(SERIES)
        assert "alpha" in document
        assert "beta" in document

    def test_title_and_labels(self):
        document = render_svg(SERIES, title="My Chart", x_label="assoc",
                              y_label="probes")
        for text in ("My Chart", "assoc", "probes"):
            assert text in document

    def test_escaping(self):
        document = render_svg({"a<b": {1: 1.0}}, title="x & y")
        assert "a&lt;b" in document
        assert "x &amp; y" in document
        ET.fromstring(document)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_svg({})
        with pytest.raises(ConfigurationError):
            render_svg({"a": {}})

    def test_single_point_series(self):
        document = render_svg({"solo": {4: 2.0}})
        ET.fromstring(document)

    def test_negative_values_without_zero_baseline(self):
        document = render_svg(
            {"delta": {1: -2.0, 2: 1.0}}, y_from_zero=False
        )
        ET.fromstring(document)

    def test_many_series_cycle_palette(self):
        series = {f"s{i}": {1: float(i), 2: float(i + 1)} for i in range(12)}
        document = render_svg(series)
        ET.fromstring(document)
        assert document.count("<polyline") == 12

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        save_svg(SERIES, path, title="T")
        content = path.read_text()
        assert content.startswith("<svg")
        ET.fromstring(content)

    def test_figure_series_renders(self):
        # Integration with the figure data shape (string x keys are
        # numeric in practice).
        from repro.experiments.figures import FigureSeries

        figure = FigureSeries(
            title="f", x_label="a", y_label="p",
            series={"s": {2: 1.0, 4: 2.0}},
        )
        document = render_svg(
            figure.series, title=figure.title,
            x_label=figure.x_label, y_label=figure.y_label,
        )
        ET.fromstring(document)


class TestTicks:
    def test_cover_range(self):
        ticks = _nice_ticks(0.0, 9.7)
        assert ticks[0] <= 0.0
        assert ticks[-1] >= 9.7

    def test_rounded_steps(self):
        ticks = _nice_ticks(0.0, 10.0)
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1

    def test_degenerate_range(self):
        ticks = _nice_ticks(2.0, 2.0)
        assert len(ticks) >= 2
