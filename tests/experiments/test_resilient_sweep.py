"""Fault-tolerant sweep path: bit-identical results, resume, manifests."""

import pytest

from repro.errors import CheckpointError, SweepPointError
from repro.experiments.runner import (
    ParallelSweepRunner,
    SweepPoint,
    config_result_from_dict,
    config_result_to_dict,
)
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.resilience import faults
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.policy import RetryPolicy, SweepOutcome

from .test_parallel_runner import assert_results_identical

from repro.trace.synthetic import AtumWorkload


def tiny_workload():
    return AtumWorkload(segments=2, references_per_segment=1_500, seed=11)


POINTS = [
    SweepPoint("4K-16", "64K-32", 2),
    SweepPoint("4K-16", "64K-32", 4),
    SweepPoint("8K-16", "64K-32", 4),
]

FAST = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)


@pytest.fixture(autouse=True)
def clean_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def make_runner(**kwargs):
    kwargs.setdefault("workload", tiny_workload())
    kwargs.setdefault("processes", 2)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ParallelSweepRunner(**kwargs)


@pytest.fixture(scope="module")
def baseline():
    results = make_runner().run_points(POINTS)
    return [config_result_to_dict(result) for result in results]


def assert_matches_baseline(outcome, baseline, skip=()):
    for index, expected in enumerate(baseline):
        if index in skip:
            continue
        assert config_result_to_dict(outcome.results[index]) == expected, (
            f"point {index} diverged from the fault-free run"
        )


class TestResilientPathEquivalence:
    def test_returns_sweep_outcome(self, baseline):
        outcome = make_runner().run_points(POINTS, failure_policy="collect")
        assert isinstance(outcome, SweepOutcome)
        assert outcome.ok and outcome.completed() == len(POINTS)
        assert_matches_baseline(outcome, baseline)

    def test_config_result_dict_round_trip(self, baseline):
        restored = config_result_from_dict(baseline[0])
        assert config_result_to_dict(restored) == baseline[0]

    def test_serial_resilient_identical(self, baseline):
        outcome = make_runner(processes=1).run_points(
            POINTS, failure_policy="collect"
        )
        assert_matches_baseline(outcome, baseline)


class TestInjectedFailures:
    def test_transient_crash_retried_and_bit_identical(self, baseline):
        faults.activate(
            FaultPlan([FaultSpec("raise", at=1, attempts=frozenset({1}))])
        )
        outcome = make_runner().run_points(
            POINTS, failure_policy="retry_then_collect", retry=FAST
        )
        assert outcome.ok and outcome.retries >= 1
        assert_matches_baseline(outcome, baseline)

    def test_persistent_crash_collected_others_unharmed(
        self, baseline, tmp_path
    ):
        faults.activate(FaultPlan([FaultSpec("raise", at=1)]))
        runner = make_runner(obs_dir=tmp_path)
        outcome = runner.run_points(
            POINTS, failure_policy="retry_then_collect", retry=FAST
        )
        assert not outcome.ok
        assert outcome.results[1] is None
        assert_matches_baseline(outcome, baseline, skip={1})
        (failure,) = outcome.failures
        assert failure.key == 1
        assert failure.error_type == "InjectedFaultError"
        assert failure.attempts == FAST.max_attempts
        assert failure.point["associativity"] == POINTS[1].associativity
        assert failure.signature is not None
        # The degraded run is visibly degraded in its provenance manifest.
        manifest = RunManifest.load(tmp_path / "manifest.json")
        assert manifest.failures
        assert "InjectedFaultError" in manifest.failures[0]["error"]

    def test_fail_fast_raises_and_records(self):
        faults.activate(FaultPlan([FaultSpec("raise", at=0)]))
        runner = make_runner()
        with pytest.raises(SweepPointError) as excinfo:
            runner.run_points(POINTS, failure_policy="fail_fast")
        assert excinfo.value.failure is not None
        assert runner.failures and runner.failures[0]["key"] == 0


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_bit_identically(
        self, baseline, tmp_path
    ):
        path = tmp_path / "sweep.ckpt"
        faults.activate(FaultPlan([FaultSpec("raise", at=2)]))
        interrupted = make_runner().run_points(
            POINTS, failure_policy="collect", checkpoint=path
        )
        assert interrupted.completed() == len(POINTS) - 1
        faults.deactivate()
        metrics = MetricsRegistry()
        resumed = make_runner(metrics=metrics).run_points(
            POINTS, failure_policy="collect", checkpoint=path
        )
        assert resumed.ok
        assert resumed.resumed == len(POINTS) - 1
        assert_matches_baseline(resumed, baseline)
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.checkpoint_resumed"] == len(POINTS) - 1

    def test_fully_checkpointed_sweep_runs_nothing(self, baseline, tmp_path):
        path = tmp_path / "sweep.ckpt"
        make_runner().run_points(
            POINTS, failure_policy="collect", checkpoint=path
        )
        resumed = make_runner().run_points(
            POINTS, failure_policy="collect", checkpoint=path
        )
        assert resumed.resumed == len(POINTS)
        assert_matches_baseline(resumed, baseline)

    def test_checkpoint_accepts_prebuilt_store(self, baseline, tmp_path):
        runner = make_runner()
        checkpoint = SweepCheckpoint(
            tmp_path / "sweep.ckpt", config_hash=runner.sweep_config_hash()
        )
        outcome = runner.run_points(
            POINTS[:1], failure_policy="collect", checkpoint=checkpoint
        )
        assert outcome.ok
        assert len(checkpoint.results) == 1

    def test_wrong_workload_checkpoint_refused(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        make_runner().run_points(
            POINTS[:1], failure_policy="collect", checkpoint=path
        )
        other = make_runner(
            workload=AtumWorkload(
                segments=2, references_per_segment=1_500, seed=99
            )
        )
        with pytest.raises(CheckpointError, match="refusing to resume"):
            other.run_points(
                POINTS[:1], failure_policy="collect", checkpoint=path
            )

    def test_sweep_config_hash_stable_across_instances(self):
        assert (
            make_runner().sweep_config_hash()
            == make_runner().sweep_config_hash()
        )
