"""Observability through the runners: exact metric merges, failure
wrapping, and provenance emission.

The headline invariant (mirroring the probe-counter discipline of
``test_parallel_runner.py``): the ``engine.*`` counters merged from
:meth:`~repro.experiments.runner.ExperimentRunner.run_segmented`
workers must equal the serial run's counters bit-identically for a
fixed workload seed.
"""

import json

import pytest

from repro.errors import SweepPointError
from repro.experiments.runner import (
    ExperimentRunner,
    ParallelSweepRunner,
    SweepPoint,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.validate import validate_manifest_file, validate_trace_file
from repro.trace.synthetic import AtumWorkload


def small_workload():
    return AtumWorkload(segments=3, references_per_segment=4_000, seed=19)


def engine_counters(registry):
    """The deterministic ``engine.*`` counter slice of a snapshot."""
    return {
        name: value
        for name, value in registry.snapshot()["counters"].items()
        if name.startswith("engine.")
    }


class TestBitIdenticalMetrics:
    @pytest.mark.parametrize("processes", [1, 2])
    def test_segmented_engine_counters_match_serial(self, processes):
        workload = small_workload()
        serial_metrics = MetricsRegistry()
        ExperimentRunner(
            workload, metrics=serial_metrics, tracer=Tracer()
        ).run("4K-16", "64K-32", 4)
        segmented_metrics = MetricsRegistry()
        ExperimentRunner(
            workload, metrics=segmented_metrics, tracer=Tracer()
        ).run_segmented("4K-16", "64K-32", 4, processes=processes)
        serial = engine_counters(serial_metrics)
        assert serial["engine.accesses"] > 0
        assert engine_counters(segmented_metrics) == serial

    def test_parallel_sweep_engine_counters_match_serial(self):
        workload = small_workload()
        points = [
            SweepPoint("4K-16", "64K-32", 2),
            SweepPoint("4K-16", "64K-32", 4),
            SweepPoint("8K-16", "64K-32", 4),
        ]
        serial_metrics = MetricsRegistry()
        serial_runner = ExperimentRunner(
            workload, metrics=serial_metrics, tracer=Tracer()
        )
        for point in points:
            serial_runner.run(point.l1, point.l2, point.associativity)
        sweep_metrics = MetricsRegistry()
        ParallelSweepRunner(
            workload, processes=2,
            metrics=sweep_metrics, tracer=Tracer(),
        ).run_points(points)
        assert engine_counters(sweep_metrics) == engine_counters(
            serial_metrics
        )

    def test_runner_counters_track_replays_and_cache_hits(self):
        metrics = MetricsRegistry()
        runner = ExperimentRunner(
            small_workload(), metrics=metrics, tracer=Tracer()
        )
        runner.run("4K-16", "64K-32", 4)
        runner.run("4K-16", "64K-32", 4)
        counters = metrics.snapshot()["counters"]
        assert counters["runner.replays"] == 1
        assert counters["runner.result_cache_hits"] == 1


class TestFailureWrapping:
    @pytest.mark.parametrize("processes", [1, 2])
    def test_worker_failure_names_the_point(self, processes, tmp_path):
        good = SweepPoint("4K-16", "64K-32", 4)
        bad = SweepPoint("4K-16", "not-a-geometry", 4)
        runner = ParallelSweepRunner(
            small_workload(), processes=processes,
            metrics=MetricsRegistry(), tracer=Tracer(),
            obs_dir=tmp_path, progress=False,
        )
        with pytest.raises(SweepPointError) as excinfo:
            runner.run_points([good, bad])
        message = str(excinfo.value)
        assert "not-a-geometry" in message
        # The failure record is structured: kind, exception class,
        # worker traceback, and a human-readable summary line.
        (record,) = runner.failures
        assert record["error_type"] == "ConfigurationError"
        assert "not-a-geometry" in record["message"]
        assert "ConfigurationError" in record["traceback"]
        assert "not-a-geometry" in record["error"]
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        (persisted,) = manifest["failures"]
        assert persisted["error"] == record["error"]
        assert persisted["point"]["l2"] == "not-a-geometry"


class TestProvenanceEmission:
    def test_experiment_runner_obs_dir(self, tmp_path):
        runner = ExperimentRunner(
            small_workload(), metrics=MetricsRegistry(), tracer=Tracer(),
            obs_dir=tmp_path,
        )
        runner.run("4K-16", "64K-32", 4)
        assert validate_manifest_file(tmp_path / "manifest.json") == []
        assert validate_trace_file(tmp_path / "trace.jsonl") == []
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["tool"] == "ExperimentRunner"
        assert manifest["config"]["runs"][0]["l2"] == "64K-32"
        assert manifest["workload"]["seed"] == 19
        assert "l2_replay" in manifest["phases"]
        assert manifest["metrics"]["counters"]["engine.accesses"] > 0

    def test_sweep_runner_obs_dir(self, tmp_path):
        runner = ParallelSweepRunner(
            small_workload(), processes=1,
            metrics=MetricsRegistry(), tracer=Tracer(),
            obs_dir=tmp_path, progress=False,
        )
        runner.run_points([SweepPoint("4K-16", "64K-32", 4)])
        assert validate_manifest_file(tmp_path / "manifest.json") == []
        assert validate_trace_file(tmp_path / "trace.jsonl") == []
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["tool"] == "ParallelSweepRunner"
        assert manifest["config"]["points"][0]["l1"] == "4K-16"
        assert manifest["failures"] == []
        assert "sweep" in manifest["phases"]
