"""repro-sweep CLI: exit codes, JSON output, checkpoint/resume flags."""

import json

import pytest

from repro.experiments.sweepcli import EXIT_PARTIAL, main
from repro.resilience import faults
from repro.resilience.faults import ENV_VAR


@pytest.fixture(autouse=True)
def clean_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.deactivate()
    yield
    faults.deactivate()


def base_args(tmp_path, *extra):
    return [
        "--l1", "4K-16",
        "--l2", "64K-32",
        "--assoc", "2,4",
        "--scale", "0.002",
        "--processes", "2",
        "--retry-base", "0.01",
        "--out", str(tmp_path / "results.json"),
        *extra,
    ]


def read_out(tmp_path):
    return json.loads((tmp_path / "results.json").read_text())


class TestHappyPath:
    def test_completes_with_exit_zero(self, tmp_path):
        assert main(base_args(tmp_path)) == 0
        payload = read_out(tmp_path)
        assert len(payload["points"]) == 2
        assert all(p["result"] is not None for p in payload["points"])
        assert payload["failures"] == []

    def test_checkpoint_and_resume(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.ckpt")
        assert main(base_args(tmp_path, "--checkpoint", checkpoint)) == 0
        assert (
            main(
                base_args(
                    tmp_path, "--checkpoint", checkpoint, "--resume"
                )
            )
            == 0
        )
        payload = read_out(tmp_path)
        assert payload["resumed"] == 2


class TestUsageErrors:
    def test_resume_requires_checkpoint(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(base_args(tmp_path, "--resume"))
        assert excinfo.value.code == 2

    def test_existing_checkpoint_needs_resume(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.ckpt")
        assert main(base_args(tmp_path, "--checkpoint", checkpoint)) == 0
        with pytest.raises(SystemExit) as excinfo:
            main(base_args(tmp_path, "--checkpoint", checkpoint))
        assert excinfo.value.code == 2


class TestFailurePaths:
    def test_injected_failure_yields_partial_exit(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "raise@0")
        code = main(
            base_args(tmp_path, "--failure-policy", "collect")
        )
        assert code == EXIT_PARTIAL
        payload = read_out(tmp_path)
        assert payload["points"][0]["result"] is None
        assert payload["points"][1]["result"] is not None
        (failure,) = payload["failures"]
        assert failure["error_type"] == "InjectedFaultError"

    def test_transient_failure_retried_to_success(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "raise@0:attempts=1")
        code = main(
            base_args(tmp_path, "--failure-policy", "retry_then_collect")
        )
        assert code == 0
        payload = read_out(tmp_path)
        assert payload["retries"] >= 1
        assert payload["failures"] == []


class TestInterrupt:
    """SIGTERM/SIGINT mid-sweep: checkpoint survives, exit is partial."""

    def _interrupt_when_checkpointed(self, checkpoint, signum):
        """Fire ``signum`` at this process once one result is durable."""
        import os
        import signal as signal_module
        import threading
        import time

        def fire():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (
                    checkpoint.exists()
                    and '"kind": "result"' in checkpoint.read_text()
                ):
                    break
                time.sleep(0.05)
            os.kill(os.getpid(), signum)

        thread = threading.Thread(target=fire, daemon=True)
        thread.start()
        return thread

    @pytest.mark.parametrize("signame", ["SIGTERM", "SIGINT"])
    def test_signal_mid_sweep_exits_partial_with_durable_checkpoint(
        self, tmp_path, monkeypatch, signame
    ):
        import signal as signal_module

        from repro.resilience.checkpoint import SweepCheckpoint

        signum = getattr(signal_module, signame)
        previous = signal_module.getsignal(signum)
        # Point 1 hangs far longer than the test: the signal always
        # lands mid-sweep, after point 0 has been checkpointed.
        monkeypatch.setenv(ENV_VAR, "hang@1:seconds=300")
        checkpoint = tmp_path / "sweep.ckpt"
        thread = self._interrupt_when_checkpointed(checkpoint, signum)
        code = main(
            base_args(
                tmp_path,
                "--checkpoint", str(checkpoint),
                "--failure-policy", "collect",
            )
        )
        thread.join(timeout=10.0)
        assert code == EXIT_PARTIAL
        # The completed point is durable, and the handler was restored.
        assert len(SweepCheckpoint(checkpoint).load()) >= 1
        assert signal_module.getsignal(signum) == previous

    def test_resume_finishes_an_interrupted_sweep(
        self, tmp_path, monkeypatch
    ):
        import signal as signal_module

        monkeypatch.setenv(ENV_VAR, "hang@1:seconds=300")
        checkpoint = tmp_path / "sweep.ckpt"
        thread = self._interrupt_when_checkpointed(
            checkpoint, signal_module.SIGTERM
        )
        assert (
            main(
                base_args(
                    tmp_path,
                    "--checkpoint", str(checkpoint),
                    "--failure-policy", "collect",
                )
            )
            == EXIT_PARTIAL
        )
        thread.join(timeout=10.0)
        monkeypatch.delenv(ENV_VAR)
        code = main(
            base_args(
                tmp_path, "--checkpoint", str(checkpoint), "--resume"
            )
        )
        assert code == 0
        payload = read_out(tmp_path)
        assert payload["resumed"] >= 1
        assert all(p["result"] is not None for p in payload["points"])
