"""Tests for named configurations and the default workload."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import (
    CacheGeometry,
    L1_GEOMETRIES,
    TABLE4_CONFIGS,
    default_workload,
    parse_geometry,
    workload_scale,
)


class TestGeometry:
    def test_parse(self):
        geom = parse_geometry("16K-32")
        assert geom.capacity_bytes == 16 * 1024
        assert geom.block_size == 32

    def test_label_roundtrip(self):
        for label in ("4K-16", "64K-32", "256K-64"):
            assert parse_geometry(label).label == label

    def test_parse_rejects_garbage(self):
        for bad in ("16K", "16-16", "K-16", "16K-"):
            with pytest.raises(ConfigurationError):
                parse_geometry(bad)

    def test_str(self):
        assert str(CacheGeometry(4096, 16)) == "4K-16"


class TestTable4Configs:
    def test_eight_rows(self):
        assert len(TABLE4_CONFIGS) == 8

    def test_all_parseable_and_nested(self):
        for l1, l2 in TABLE4_CONFIGS:
            g1, g2 = parse_geometry(l1), parse_geometry(l2)
            assert g2.capacity_bytes > g1.capacity_bytes
            assert g2.block_size >= g1.block_size

    def test_l1_geometries_have_paper_ratios(self):
        assert L1_GEOMETRIES["4K-16"] == pytest.approx(0.1181)


class TestDefaultWorkload:
    def test_full_scale_matches_paper_structure(self):
        wl = default_workload(scale=1.0)
        assert wl.segments == 23
        assert wl.references_per_segment == 350_000

    def test_default_scale_keeps_long_segments(self):
        wl = default_workload(scale=0.125)
        assert wl.references_per_segment >= 330_000
        assert wl.segments >= 2

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            default_workload(scale=0.0)
        with pytest.raises(ConfigurationError):
            default_workload(scale=2.0)

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_SCALE", "0.5")
        assert workload_scale() == 0.5

    def test_env_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_SCALE", "lots")
        with pytest.raises(ConfigurationError):
            workload_scale()
        monkeypatch.setenv("REPRO_WORKLOAD_SCALE", "0")
        with pytest.raises(ConfigurationError):
            workload_scale()
