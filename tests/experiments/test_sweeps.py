"""Tests for the generic sweep tools."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweeps import (
    associativity_sweep,
    capacity_sweep,
    miss_ratio_curve,
)


class TestAssociativitySweep:
    def test_basic(self, runner):
        figure = associativity_sweep(
            runner, "16K-16", "64K-32", associativities=(2, 4)
        )
        assert set(figure.series) == {"traditional", "naive", "mru", "partial"}
        for points in figure.series.values():
            assert set(points) == {2, 4}

    def test_metric_selection(self, runner):
        figure = associativity_sweep(
            runner, "16K-16", "64K-32", associativities=(4,),
            schemes=("naive",), metric="misses",
        )
        assert figure.series["naive"][4] == pytest.approx(4.0)

    def test_unknown_metric(self, runner):
        with pytest.raises(ConfigurationError):
            associativity_sweep(
                runner, "16K-16", "64K-32", associativities=(2,),
                metric="latency",
            )

    def test_run_kwargs_forwarded(self, runner):
        figure = associativity_sweep(
            runner, "16K-16", "64K-32", associativities=(4,),
            schemes=("partial/improved/t16",), transforms=("improved",),
        )
        assert "partial/improved/t16" in figure.series


class TestCapacitySweep:
    def test_miss_ratio_falls_with_capacity(self, runner):
        figure = capacity_sweep(
            runner, "16K-16", ("64K-32", "256K-32"), associativity=4
        )
        local = figure.series["local miss"]
        assert local[256] < local[64]

    def test_x_axis_in_kb(self, runner):
        figure = capacity_sweep(
            runner, "16K-16", ("64K-32",), associativity=2
        )
        assert set(figure.series["naive"]) == {64}


class TestMissRatioCurve:
    def test_monotone(self, runner):
        curve = miss_ratio_curve(
            runner, "16K-16", block_size=32, num_sets=512,
            associativities=(1, 2, 4, 8),
        )
        values = [curve[a] for a in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_matches_explicit_runner(self, runner):
        # The stack curve must agree with explicit simulation: compare
        # against the runner's local miss ratio for one geometry.
        curve = miss_ratio_curve(
            runner, "16K-16", block_size=32, num_sets=512,
            associativities=(4,),
        )
        result = runner.run("16K-16", "64K-32", 4)
        assert curve[4] == pytest.approx(result.local_miss_ratio, abs=1e-12)

    def test_empty_associativities(self, runner):
        with pytest.raises(ConfigurationError):
            miss_ratio_curve(
                runner, "16K-16", block_size=32, num_sets=512,
                associativities=(),
            )
