"""Columnar replay through the experiment runner: equality and reuse.

The headline invariant: ``ExperimentRunner(use_columnar=True)`` must
produce :class:`~repro.experiments.runner.ConfigResult` values equal
to the default fused-engine path for the same workload — including the
``engine.*`` metric counters — while reusing the packed stream and the
batch engine's memoized aggregates across points.
"""

import os

import pytest

from repro.cache.artifacts import set_artifact_store
from repro.cache.hierarchy import clear_miss_stream_cache
from repro.experiments.runner import (
    COLUMNAR_ENV_VAR,
    ExperimentRunner,
    ParallelSweepRunner,
    SweepPoint,
    config_result_to_dict,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.trace.synthetic import AtumWorkload


def small_workload():
    return AtumWorkload(segments=3, references_per_segment=4_000, seed=19)


def engine_counters(registry):
    return {
        name: value
        for name, value in registry.snapshot()["counters"].items()
        if name.startswith("engine.")
    }


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(COLUMNAR_ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_STREAM_ARTIFACTS", raising=False)


class TestResultEquality:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"mru_list_lengths": (1, 2)},
            {"transforms": ("none", "xor", "swap"), "tag_bits": 14},
            {"writeback_optimization": False},
            {"extra_tag_bits": (32,)},
        ],
    )
    def test_run_matches_fused_path(self, kwargs):
        workload = small_workload()
        fused = ExperimentRunner(workload).run("4K-16", "64K-32", 4, **kwargs)
        columnar = ExperimentRunner(workload, use_columnar=True).run(
            "4K-16", "64K-32", 4, **kwargs
        )
        assert config_result_to_dict(columnar) == config_result_to_dict(fused)

    @pytest.mark.parametrize("a", [2, 4])
    def test_run_segmented_matches_fused_path(self, a):
        workload = small_workload()
        fused = ExperimentRunner(workload).run_segmented(
            "4K-16", "64K-32", a, processes=2
        )
        columnar = ExperimentRunner(workload, use_columnar=True).run_segmented(
            "4K-16", "64K-32", a, processes=2
        )
        assert config_result_to_dict(columnar) == config_result_to_dict(fused)

    def test_engine_counters_match_fused_path(self):
        workload = small_workload()
        fused_metrics = MetricsRegistry()
        ExperimentRunner(
            workload, metrics=fused_metrics, tracer=Tracer()
        ).run("4K-16", "64K-32", 4)
        columnar_metrics = MetricsRegistry()
        ExperimentRunner(
            workload,
            metrics=columnar_metrics,
            tracer=Tracer(),
            use_columnar=True,
        ).run("4K-16", "64K-32", 4)
        fused = engine_counters(fused_metrics)
        assert fused["engine.accesses"] > 0
        assert engine_counters(columnar_metrics) == fused

    def test_columnar_run_emits_batch_metrics(self):
        metrics = MetricsRegistry()
        runner = ExperimentRunner(
            small_workload(),
            metrics=metrics,
            tracer=Tracer(),
            use_columnar=True,
        )
        runner.run("4K-16", "64K-32", 4)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["replay.columnar_replays"] == 1
        batch = snapshot["histograms"]["replay.batch_size"]
        assert batch["count"] > 0
        assert batch["min"] >= 1


class TestEnvResolution:
    def test_env_var_enables_columnar(self, monkeypatch):
        monkeypatch.setenv(COLUMNAR_ENV_VAR, "1")
        runner = ExperimentRunner(small_workload())
        assert runner.use_columnar

    @pytest.mark.parametrize("value", ["", "0", "false", "no"])
    def test_falsy_env_values_stay_fused(self, monkeypatch, value):
        monkeypatch.setenv(COLUMNAR_ENV_VAR, value)
        runner = ExperimentRunner(small_workload())
        assert not runner.use_columnar

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(COLUMNAR_ENV_VAR, "1")
        runner = ExperimentRunner(small_workload(), use_columnar=False)
        assert not runner.use_columnar

    def test_columnar_requires_engine_path(self):
        runner = ExperimentRunner(
            small_workload(), use_engine=False, use_columnar=True
        )
        assert not runner.use_columnar


class TestSweepEquality:
    def test_parallel_sweep_columnar_matches_fused(self):
        workload = small_workload()
        points = [
            SweepPoint("4K-16", "64K-32", 2),
            SweepPoint("4K-16", "64K-32", 4),
        ]
        fused = ParallelSweepRunner(
            workload, processes=2, metrics=MetricsRegistry(), tracer=Tracer()
        ).run_points(points)
        columnar = ParallelSweepRunner(
            workload,
            processes=2,
            metrics=MetricsRegistry(),
            tracer=Tracer(),
            use_columnar=True,
        ).run_points(points)
        for fused_result, columnar_result in zip(fused, columnar):
            assert config_result_to_dict(columnar_result) == (
                config_result_to_dict(fused_result)
            )

    def test_sweep_env_restored_after_run(self):
        workload = small_workload()
        ParallelSweepRunner(
            workload,
            processes=1,
            metrics=MetricsRegistry(),
            tracer=Tracer(),
            use_columnar=True,
        ).run_points([SweepPoint("4K-16", "64K-32", 2)])
        assert os.environ.get(COLUMNAR_ENV_VAR) is None


class TestArtifactReuse:
    @pytest.fixture(autouse=True)
    def _isolate_store(self):
        clear_miss_stream_cache()
        yield
        set_artifact_store(None)
        clear_miss_stream_cache()

    def test_runner_roundtrips_through_artifact_store(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_STREAM_ARTIFACTS", str(tmp_path))
        workload = small_workload()
        first = ExperimentRunner(workload, use_columnar=True).run(
            "4K-16", "64K-32", 4
        )
        saved = list(tmp_path.iterdir())
        assert saved, "expected a persisted stream artifact"
        # A fresh runner with a cold in-process cache must mmap the
        # artifact back instead of re-capturing, bit-identically.
        clear_miss_stream_cache()
        second = ExperimentRunner(workload, use_columnar=True).run(
            "4K-16", "64K-32", 4
        )
        assert config_result_to_dict(second) == config_result_to_dict(first)
        assert list(tmp_path.iterdir()) == saved
