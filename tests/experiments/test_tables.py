"""Tests for table builders."""

import pytest

from repro.experiments.tables import (
    Table3,
    Table3Row,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
)


class TestTable1:
    def test_matches_paper_values(self):
        table = build_table1()
        by_method = {r.method: r for r in table.rows}
        assert by_method["Naive"].hit_probes == 2.5
        assert by_method["Naive"].miss_probes == 4.0
        assert round(by_method["Partial (k=4)"].hit_probes, 2) == 2.09
        assert by_method["Partial (k=4)"].miss_probes == 1.25
        assert round(by_method["Partial (k=2)"].hit_probes, 2) == 2.88
        assert round(by_method["Partial w/Subsets (k=4)"].hit_probes, 2) == 2.72
        assert by_method["Partial w/Subsets (k=4)"].miss_probes == 2.5

    def test_mru_within_table_range(self):
        table = build_table1()
        mru = next(r for r in table.rows if r.method == "MRU")
        assert 2.0 <= mru.hit_probes <= 5.0
        assert mru.miss_probes == 5.0

    def test_render(self):
        text = build_table1().render()
        assert "Traditional" in text
        assert "2.5" in text


class TestTable2:
    def test_cells_complete(self):
        table = build_table2()
        assert len(table.cells) == 8

    def test_render_contains_symbolic_timings(self):
        text = build_table2().render()
        assert "150+50x" in text
        assert "65+55y" in text
        assert "42" in text


class TestTable3:
    def test_rows_for_all_l1_geometries(self, runner):
        table = build_table3(runner)
        labels = {r.geometry for r in table.rows}
        assert labels == {"4K-16", "16K-16", "16K-32"}

    def test_miss_ratios_ordered_by_capacity(self, runner):
        table = build_table3(runner)
        ratios = {r.geometry: r.measured_miss_ratio for r in table.rows}
        assert ratios["4K-16"] > ratios["16K-16"]
        assert ratios["16K-16"] > ratios["16K-32"]

    def test_render(self, runner):
        text = build_table3(runner).render()
        assert "cold-start segments" in text


class TestTable4:
    @pytest.fixture(scope="class")
    def table(self, runner):
        # Two configs x two associativities keeps the test fast while
        # exercising the full build path.
        return build_table4(
            runner,
            associativities=(2, 4),
            configs=(("16K-16", "64K-32"), ("4K-16", "64K-16")),
        )

    def test_row_count(self, table):
        assert len(table.rows) == 4

    def test_rows_for_filters(self, table):
        assert len(table.rows_for(2)) == 2
        assert len(table.rows_for(4)) == 2
        assert table.rows_for(16) == []

    def test_probe_sanity(self, table):
        for row in table.rows:
            a = row.associativity
            # "Hits" columns count write-backs as zero-probe hits
            # (paper accounting), so they can dip below one probe.
            assert 0.0 < row.naive_hits <= a
            assert 0.0 < row.mru_hits <= a + 1
            assert row.partial_misses >= 1.0
            assert 0 < row.global_miss_ratio < row.local_miss_ratio

    def test_best_total_consistent(self, table):
        for row in table.rows:
            totals = {
                "naive": row.naive_total,
                "mru": row.mru_total,
                "partial": row.partial_total,
            }
            assert totals[row.best_total] == min(totals.values())

    def test_render_marks_best(self, table):
        text = table.render()
        assert "*" in text
        assert "Table 4 (2-way" in text
        assert "Table 4 (4-way" in text


class TestGoldenRenderings:
    """Byte-exact golden output for Tables 1-3 (the fixed-decimal fix).

    These pin the per-column format specs: a regression back to :.4g
    (which drops trailing zeros and wobbles the columns) or a changed
    alignment shows up as a diff here.
    """

    TABLE1_GOLDEN = """\
Table 1. Performance of Set-Associativity Implementations (expected probes, t=16)
=================================================================================
Method                   Assoc  Subsets  TagMemWidth  Hit   Miss
-----------------------  -----  -------  -----------  ----  ----
Traditional                  4        1           64  1.00  1.00
Naive                        4        1           16  2.50  4.00
MRU                          4        1           16  2.73  5.00
Partial (k=4)                4        1           16  2.09  1.25
Partial (k=2)                8        1           16  2.88  3.00
Partial w/Subsets (k=4)      8        2           16  2.72  2.50"""

    TABLE2_GOLDEN = """\
Table 2. Trial Set-Associativity Implementations (1M 24-bit tags, 4-way)
========================================================================
                       Direct  Traditional  MRU          Partial
---------------------  ------  -----------  -----------  -------
DRAM Access time (ns)     136          132      150+50x  150+50y
DRAM Cycle time (ns)      230          190  250+50(x+u)  250+50y
DRAM Memory packages        3           12            3        3
DRAM Support packages      15           30           19       18
DRAM Total packages        18           42           22       21
SRAM Access time (ns)      61           84       65+55x   65+55y
SRAM Cycle time (ns)       85          100   75+55(x+u)   75+55y
SRAM Memory packages        6            6            6        6
SRAM Support packages      14           31           19       18
SRAM Total packages        20           37           25       24"""

    TABLE3_GOLDEN = """\
Workload: 1 cold-start segments, 16100 references total
Table 3. Trace and level-one cache characteristics
==================================================
L1 geometry  Measured miss ratio  Paper miss ratio
-----------  -------------------  ----------------
16K-16                    0.0525            0.0520
32K-32                    0.0330                 -"""

    def test_table1_golden(self):
        assert build_table1().render() == self.TABLE1_GOLDEN

    def test_table2_golden(self):
        assert build_table2().render() == self.TABLE2_GOLDEN

    def test_table3_golden(self):
        table = Table3(
            references=16100,
            segments=1,
            rows=[
                Table3Row("16K-16", 0.0525, 0.052),
                Table3Row("32K-32", 0.033, None),
            ],
        )
        assert table.render() == self.TABLE3_GOLDEN

    def test_table1_github_format(self):
        text = build_table1().render(fmt="github")
        lines = text.splitlines()
        assert lines[0].startswith("**Table 1.")
        assert "| --- | ---: | ---: | ---: | ---: | ---: |" in text
        assert "| Traditional | 4 | 1 | 64 | 1.00 | 1.00 |" in text

    def test_table3_github_keeps_workload_paragraph(self):
        table = Table3(
            references=100,
            segments=2,
            rows=[Table3Row("16K-16", 0.05, None)],
        )
        text = table.render(fmt="github")
        # The preamble must be its own paragraph or markdown folds it
        # into the table.
        assert text.startswith(
            "Workload: 2 cold-start segments, 100 references total\n\n"
        )
        assert "| 0.0500 | - |" in text
