"""Tests for table builders."""

import pytest

from repro.experiments.tables import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
)


class TestTable1:
    def test_matches_paper_values(self):
        table = build_table1()
        by_method = {r.method: r for r in table.rows}
        assert by_method["Naive"].hit_probes == 2.5
        assert by_method["Naive"].miss_probes == 4.0
        assert round(by_method["Partial (k=4)"].hit_probes, 2) == 2.09
        assert by_method["Partial (k=4)"].miss_probes == 1.25
        assert round(by_method["Partial (k=2)"].hit_probes, 2) == 2.88
        assert round(by_method["Partial w/Subsets (k=4)"].hit_probes, 2) == 2.72
        assert by_method["Partial w/Subsets (k=4)"].miss_probes == 2.5

    def test_mru_within_table_range(self):
        table = build_table1()
        mru = next(r for r in table.rows if r.method == "MRU")
        assert 2.0 <= mru.hit_probes <= 5.0
        assert mru.miss_probes == 5.0

    def test_render(self):
        text = build_table1().render()
        assert "Traditional" in text
        assert "2.5" in text


class TestTable2:
    def test_cells_complete(self):
        table = build_table2()
        assert len(table.cells) == 8

    def test_render_contains_symbolic_timings(self):
        text = build_table2().render()
        assert "150+50x" in text
        assert "65+55y" in text
        assert "42" in text


class TestTable3:
    def test_rows_for_all_l1_geometries(self, runner):
        table = build_table3(runner)
        labels = {r.geometry for r in table.rows}
        assert labels == {"4K-16", "16K-16", "16K-32"}

    def test_miss_ratios_ordered_by_capacity(self, runner):
        table = build_table3(runner)
        ratios = {r.geometry: r.measured_miss_ratio for r in table.rows}
        assert ratios["4K-16"] > ratios["16K-16"]
        assert ratios["16K-16"] > ratios["16K-32"]

    def test_render(self, runner):
        text = build_table3(runner).render()
        assert "cold-start segments" in text


class TestTable4:
    @pytest.fixture(scope="class")
    def table(self, runner):
        # Two configs x two associativities keeps the test fast while
        # exercising the full build path.
        return build_table4(
            runner,
            associativities=(2, 4),
            configs=(("16K-16", "64K-32"), ("4K-16", "64K-16")),
        )

    def test_row_count(self, table):
        assert len(table.rows) == 4

    def test_rows_for_filters(self, table):
        assert len(table.rows_for(2)) == 2
        assert len(table.rows_for(4)) == 2
        assert table.rows_for(16) == []

    def test_probe_sanity(self, table):
        for row in table.rows:
            a = row.associativity
            # "Hits" columns count write-backs as zero-probe hits
            # (paper accounting), so they can dip below one probe.
            assert 0.0 < row.naive_hits <= a
            assert 0.0 < row.mru_hits <= a + 1
            assert row.partial_misses >= 1.0
            assert 0 < row.global_miss_ratio < row.local_miss_ratio

    def test_best_total_consistent(self, table):
        for row in table.rows:
            totals = {
                "naive": row.naive_total,
                "mru": row.mru_total,
                "partial": row.partial_total,
            }
            assert totals[row.best_total] == min(totals.values())

    def test_render_marks_best(self, table):
        text = table.render()
        assert "*" in text
        assert "Table 4 (2-way" in text
        assert "Table 4 (4-way" in text
