"""Public-API surface tests: every exported name resolves and the
documented quickstart works as written."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.core",
    "repro.cache",
    "repro.trace",
    "repro.hardware",
    "repro.experiments",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__")
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart_runs():
    from repro import (
        AtumWorkload,
        DirectMappedCache,
        MRULookup,
        NaiveLookup,
        PartialCompareLookup,
        ProbeObserver,
        SetAssociativeCache,
        TwoLevelHierarchy,
    )

    workload = AtumWorkload(segments=1, references_per_segment=2_000, seed=1)
    l1 = DirectMappedCache(16 * 1024, 16)
    l2 = SetAssociativeCache(256 * 1024, 32, associativity=4)
    observers = [
        ProbeObserver(s)
        for s in (
            NaiveLookup(4),
            MRULookup(4),
            PartialCompareLookup(4, tag_bits=16),
        )
    ]
    l2.attach_all(observers)
    stats = TwoLevelHierarchy(l1, l2).run(workload)
    assert stats.processor_references == 2_000
    for observer in observers:
        assert observer.accumulator.total_accesses > 0


def test_errors_hierarchy():
    from repro.errors import (
        ConfigurationError,
        ReproError,
        SimulationError,
        TraceFormatError,
    )

    for exc in (ConfigurationError, SimulationError, TraceFormatError):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")
