"""Tests for the partial-compare lookup (§2.2)."""

import pytest

from repro.core.partial import PartialCompareLookup
from repro.core.probes import SetView
from repro.core.transforms import IdentityTransform
from repro.errors import ConfigurationError


def view(tags, mru=None):
    if mru is None:
        mru = tuple(i for i, t in enumerate(tags) if t is not None)
    return SetView(tags=tuple(tags), mru_order=tuple(mru))


def identity_scheme(a, tag_bits=16, subsets=1, k=None):
    return PartialCompareLookup(
        a, tag_bits=tag_bits, subsets=subsets, partial_bits=k,
        transform=IdentityTransform(tag_bits, k if k else tag_bits * subsets // a),
    )


class TestConstruction:
    def test_default_partial_width(self):
        assert PartialCompareLookup(4, tag_bits=16).partial_bits == 4
        assert PartialCompareLookup(8, tag_bits=16, subsets=2).partial_bits == 4
        assert PartialCompareLookup(8, tag_bits=32).partial_bits == 4

    def test_rejects_bad_subsets(self):
        with pytest.raises(ConfigurationError):
            PartialCompareLookup(4, subsets=3)
        with pytest.raises(ConfigurationError):
            PartialCompareLookup(4, subsets=8)

    def test_rejects_width_overflow(self):
        # 16 tags sharing a 16-bit memory: k=1 works, k=2 does not.
        PartialCompareLookup(16, tag_bits=16, partial_bits=1)
        with pytest.raises(ConfigurationError):
            PartialCompareLookup(16, tag_bits=16, partial_bits=2)

    def test_rejects_zero_width(self):
        # 32 tags cannot each get a field of a 16-bit tag.
        with pytest.raises(ConfigurationError):
            PartialCompareLookup(32, tag_bits=16)

    def test_transform_by_name(self):
        scheme = PartialCompareLookup(4, tag_bits=16, transform="improved")
        assert scheme.transform.name == "improved"

    def test_default_transform_is_xor(self):
        assert PartialCompareLookup(4, tag_bits=16).transform.name == "xor"

    def test_transform_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PartialCompareLookup(
                4, tag_bits=16, transform=IdentityTransform(16, 8)
            )


class TestProbeCounting:
    def test_hit_with_no_false_matches_costs_two(self):
        # Tags chosen so no stored tag shares any compared field.
        scheme = identity_scheme(4, k=4)
        # position i compares field i: make field i distinct across tags.
        tags = [0x1111, 0x2222, 0x3333, 0x4444]
        v = view(tags)
        for tag in tags:
            outcome = scheme.lookup(v, tag)
            assert outcome.hit
            assert outcome.probes == 2

    def test_miss_with_no_false_matches_costs_one(self):
        scheme = identity_scheme(4, k=4)
        v = view([0x1111, 0x2222, 0x3333, 0x4444])
        outcome = scheme.lookup(v, 0x5555)
        assert not outcome.hit
        assert outcome.probes == 1

    def test_false_match_costs_extra_probe(self):
        scheme = identity_scheme(4, k=4)
        # Frame 0 compares field 0. Stored 0xAAA7 shares field 0 with
        # incoming 0x1117 -> one false match before the true hit in
        # frame 2 (field 2 of 0x1117 is 1).
        tags = [0xAAA7, 0x2222, 0x1117, 0x4444]
        v = view(tags)
        outcome = scheme.lookup(v, 0x1117)
        assert outcome.hit
        assert outcome.frame == 2
        # 1 partial probe + false match at frame 0 + true match.
        assert outcome.probes == 3

    def test_miss_counts_all_false_matches(self):
        scheme = identity_scheme(4, k=4)
        # Incoming 0x7777: frame 0 compares field0 (7), frame 1 field1,
        # frame 2 field2, frame 3 field3. Make frames 1 and 3 match.
        tags = [0x1111, 0x2272, 0x3333, 0x7444]
        outcome = scheme.lookup(view(tags), 0x7777)
        assert not outcome.hit
        assert outcome.probes == 1 + 2

    def test_invalid_frames_never_partially_match(self):
        scheme = identity_scheme(4, k=4)
        v = view([None, None, None, None], mru=())
        outcome = scheme.lookup(v, 0x1234)
        assert not outcome.hit
        assert outcome.probes == 1

    def test_subsets_processed_in_series(self):
        scheme = identity_scheme(8, subsets=2, k=4)
        # Hit in the second subset (frames 4-7); first subset has no
        # partial matches: probes = 1 (subset 0) + 1 (subset 1) + 1.
        tags = [0x1111, 0x2222, 0x3333, 0x4444,
                0x5555, 0x6666, 0x7777, 0x8888]
        outcome = scheme.lookup(view(tags), 0x6666)
        assert outcome.hit
        assert outcome.frame == 5
        assert outcome.probes == 3

    def test_hit_in_first_subset_skips_second(self):
        scheme = identity_scheme(8, subsets=2, k=4)
        tags = [0x1111, 0x2222, 0x3333, 0x4444,
                0x5555, 0x6666, 0x7777, 0x8888]
        outcome = scheme.lookup(view(tags), 0x2222)
        assert outcome.probes == 2

    def test_miss_probes_at_least_subsets(self):
        scheme = identity_scheme(8, subsets=2, k=4)
        tags = [0x1111, 0x2222, 0x3333, 0x4444,
                0x5555, 0x6666, 0x7777, 0x8888]
        outcome = scheme.lookup(view(tags), 0x9999)
        assert not outcome.hit
        assert outcome.probes == 2

    def test_full_width_partial_is_naive_like(self):
        # k = t (one tag per subset): step one compares whole tags, so
        # no step-two probes; s = a behaves like the naive scheme.
        scheme = identity_scheme(4, subsets=4, k=16)
        tags = [0x1111, 0x2222, 0x3333, 0x4444]
        v = view(tags)
        for frame, tag in enumerate(tags):
            assert scheme.lookup(v, tag).probes == frame + 1
        assert scheme.lookup(v, 0x9999).probes == 4

    def test_false_matches_counter(self):
        scheme = identity_scheme(4, k=4)
        tags = [0x7771, 0x2072, 0x3733, 0x7444]
        # Incoming 0x7777 partially matches frames 3 (field3=7) but not
        # 0 (field0: 1 != 7), not 1 (field1: 7 == 7!) ... compute:
        # frame0 field0: 1 vs 7 no; frame1 field1: 7 vs 7 yes;
        # frame2 field2: 7 vs 7 yes; frame3 field3: 7 vs 7 yes.
        assert scheme.false_matches(view(tags), 0x7777) == 3

    def test_wider_tags_reduce_false_matches_statistically(self):
        import random
        rng = random.Random(7)
        narrow = identity_scheme(4, tag_bits=16, k=4)
        wide = identity_scheme(4, tag_bits=32, k=8)
        narrow_fm = wide_fm = 0
        for _ in range(300):
            tags16 = [rng.randrange(2**16) for _ in range(4)]
            tags32 = [rng.randrange(2**32) for _ in range(4)]
            narrow_fm += narrow.false_matches(view(tags16), rng.randrange(2**16))
            wide_fm += wide.false_matches(view(tags32), rng.randrange(2**32))
        assert wide_fm < narrow_fm
