"""Tests for the naive serial lookup (paper Figure 1b)."""

import pytest

from repro.core.naive import NaiveLookup
from repro.core.probes import SetView
from repro.errors import ConfigurationError


def view(tags, mru=None):
    if mru is None:
        mru = tuple(i for i, t in enumerate(tags) if t is not None)
    return SetView(tags=tuple(tags), mru_order=tuple(mru))


class TestNaiveLookup:
    def test_hit_probes_equal_frame_position_plus_one(self):
        scheme = NaiveLookup(4)
        v = view([10, 20, 30, 40])
        for frame, tag in enumerate([10, 20, 30, 40]):
            outcome = scheme.lookup(v, tag)
            assert outcome.hit
            assert outcome.frame == frame
            assert outcome.probes == frame + 1

    def test_miss_probes_all_frames(self):
        scheme = NaiveLookup(4)
        outcome = scheme.lookup(view([10, 20, 30, 40]), 99)
        assert not outcome.hit
        assert outcome.probes == 4

    def test_miss_on_partially_filled_set_still_scans_all(self):
        # A probe reads the tag memory whether or not the frame is
        # valid; the hardware cannot stop early on a miss.
        scheme = NaiveLookup(4)
        outcome = scheme.lookup(view([10, None, None, None]), 99)
        assert outcome.probes == 4

    def test_hit_skips_over_invalid_frames(self):
        scheme = NaiveLookup(4)
        outcome = scheme.lookup(view([None, None, 30, None]), 30)
        assert outcome.hit
        assert outcome.frame == 2
        assert outcome.probes == 3

    def test_associativity_one(self):
        scheme = NaiveLookup(1)
        assert scheme.lookup(view([5]), 5).probes == 1
        assert scheme.lookup(view([5]), 6).probes == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            NaiveLookup(3)

    def test_rejects_mismatched_view(self):
        scheme = NaiveLookup(4)
        with pytest.raises(ConfigurationError):
            scheme.lookup(view([1, 2]), 1)

    def test_average_hit_probes_over_uniform_positions(self):
        # (a-1)/2 + 1 for uniformly distributed hit positions.
        scheme = NaiveLookup(8)
        tags = list(range(100, 108))
        v = view(tags)
        total = sum(scheme.lookup(v, t).probes for t in tags)
        assert total / 8 == pytest.approx((8 - 1) / 2 + 1)
