"""Differential tests: the fused engine vs the legacy observer path.

The :class:`~repro.core.engine.FusedProbeEngine` derives every scheme's
probe counts analytically from shared lookup facts; the legacy
:class:`~repro.cache.observers.ProbeObserver` path runs each scheme's
actual ``lookup()`` per access and is the reference implementation.
These tests drive both over identical randomized request streams and
assert *exact* integer equality of every accumulator field, the MRU
hit-distance histogram, and the cache statistics — across
associativities, tag transforms, subset counts, reduced MRU lists, the
generic fallback, and both write-back-optimization settings.
"""

import random

import pytest

from repro.cache.observers import MruDistanceObserver, ProbeObserver
from repro.cache.set_associative import SetAssociativeCache
from repro.core.banked import BankedLookup
from repro.core.engine import FusedProbeEngine
from repro.core.mru import MRULookup
from repro.core.naive import NaiveLookup
from repro.core.partial import PartialCompareLookup
from repro.core.traditional import TraditionalLookup
from repro.errors import ConfigurationError

ACCUMULATOR_FIELDS = (
    "hit_accesses",
    "hit_probes",
    "miss_accesses",
    "miss_probes",
    "writeback_accesses",
    "writeback_probes",
)


def full_roster(associativity):
    """Every scheme family the engine models, plus the generic fallback."""
    a = associativity
    roster = [
        ("traditional", TraditionalLookup(a)),
        ("naive", NaiveLookup(a)),
        ("mru", MRULookup(a)),
        ("mru/m1", MRULookup(a, list_length=1)),
        ("partial", PartialCompareLookup(a, tag_bits=16)),
        ("partial/swap", PartialCompareLookup(a, tag_bits=16, transform="swap")),
        ("partial/none", PartialCompareLookup(a, tag_bits=16, transform="none")),
        (
            "partial/s2",
            PartialCompareLookup(a, tag_bits=16, subsets=2, transform="improved"),
        ),
        (
            "partial/full",
            PartialCompareLookup(a, tag_bits=16, partial_bits=16, subsets=a),
        ),
        ("banked", BankedLookup(a)),
    ]
    if a > 2:
        roster.append(("mru/m2", MRULookup(a, list_length=2)))
    return roster


def drive_both(roster_fn, associativity, writeback_optimization, seed,
               accesses=4000, writeback_fraction=0.25, invalidate_every=None):
    """Replay one random stream through both paths; return the pieces."""
    legacy = SetAssociativeCache(16 * 1024, 32, associativity)
    fused = SetAssociativeCache(16 * 1024, 32, associativity)
    legacy_accs = {}
    for label, scheme in roster_fn(associativity):
        observer = ProbeObserver(
            scheme,
            writeback_optimization=writeback_optimization,
            label=label,
        )
        legacy.attach(observer)
        legacy_accs[label] = observer.accumulator
    distance_observer = MruDistanceObserver(associativity)
    legacy.attach(distance_observer)

    engine = FusedProbeEngine(associativity)
    channels = {}
    for label, scheme in roster_fn(associativity):
        channels[label] = engine.add_scheme(
            scheme,
            writeback_optimization=writeback_optimization,
            label=label,
        )
    distance_stats = engine.add_mru_distance()
    fused.attach_engine(engine)

    rng = random.Random(seed)
    for step in range(accesses):
        address = rng.randrange(0, 1 << 22) & ~31
        if rng.random() < writeback_fraction:
            legacy.write_back(address)
            fused.write_back(address)
        else:
            legacy.read_in(address)
            fused.read_in(address)
        if invalidate_every and step and step % invalidate_every == 0:
            legacy.invalidate_all()
            fused.invalidate_all()
    return legacy, fused, legacy_accs, channels, distance_observer, distance_stats


def assert_identical(legacy, fused, legacy_accs, channels,
                     distance_observer, distance_stats):
    for label, reference in legacy_accs.items():
        accumulator = channels[label].accumulator
        for field in ACCUMULATOR_FIELDS:
            assert getattr(accumulator, field) == getattr(reference, field), (
                f"{label}.{field} diverges from the observer reference"
            )
    assert distance_stats.hits == distance_observer.hits
    assert distance_stats.accesses == distance_observer.accesses
    assert distance_stats.updates == distance_observer.updates
    assert distance_stats.counts == distance_observer.counts
    assert distance_stats.distribution() == distance_observer.distribution()
    assert fused.stats.__dict__ == legacy.stats.__dict__


@pytest.mark.parametrize("associativity", [2, 4, 8])
@pytest.mark.parametrize("writeback_optimization", [True, False])
def test_engine_matches_observers_exactly(associativity, writeback_optimization):
    pieces = drive_both(
        full_roster, associativity, writeback_optimization,
        seed=1000 + associativity,
    )
    assert_identical(*pieces)


def test_engine_matches_across_cold_start_flushes():
    pieces = drive_both(full_roster, 4, True, seed=77, invalidate_every=500)
    assert_identical(*pieces)


def test_engine_matches_on_single_partial_fast_path():
    """The inlined single-group scan agrees with the reference too."""

    def roster(a):
        return [
            ("naive", NaiveLookup(a)),
            ("mru", MRULookup(a)),
            ("partial", PartialCompareLookup(a, tag_bits=16)),
        ]

    for wb_opt in (True, False):
        pieces = drive_both(roster, 4, wb_opt, seed=5 if wb_opt else 6)
        assert_identical(*pieces)


def test_engine_shares_aliased_partial_scheme():
    """One scheme instance under two labels: identical totals, one group."""
    engine = FusedProbeEngine(4)
    scheme = PartialCompareLookup(4, tag_bits=16)
    first = engine.add_scheme(scheme, label="partial")
    second = engine.add_scheme(scheme, label="partial/xor/t16")
    assert first.group is second.group
    cache = SetAssociativeCache(16 * 1024, 32, 4)
    cache.attach_engine(engine)
    rng = random.Random(3)
    for _ in range(2000):
        cache.read_in(rng.randrange(0, 1 << 20) & ~31)
    a1, a2 = first.accumulator, second.accumulator
    for field in ACCUMULATOR_FIELDS:
        assert getattr(a1, field) == getattr(a2, field)
    assert a1.hit_probes > 0


def test_engine_rejects_mismatched_associativity():
    engine = FusedProbeEngine(4)
    with pytest.raises(ConfigurationError):
        engine.add_scheme(NaiveLookup(8))
    cache = SetAssociativeCache(16 * 1024, 32, 8)
    with pytest.raises(ConfigurationError):
        cache.attach_engine(engine)


def test_engine_rejects_duplicate_labels_and_engines():
    engine = FusedProbeEngine(4)
    engine.add_scheme(NaiveLookup(4), label="naive")
    with pytest.raises(ConfigurationError):
        engine.add_scheme(NaiveLookup(4), label="naive")
    cache = SetAssociativeCache(16 * 1024, 32, 4)
    cache.attach_engine(engine)
    with pytest.raises(ConfigurationError):
        cache.attach_engine(FusedProbeEngine(4))


def test_engine_accumulator_reads_are_live():
    """Accumulators finalize on read: mid-replay reads are consistent."""
    engine = FusedProbeEngine(4)
    channel = engine.add_scheme(TraditionalLookup(4))
    cache = SetAssociativeCache(16 * 1024, 32, 4)
    cache.attach_engine(engine)
    rng = random.Random(9)
    for _ in range(100):
        cache.read_in(rng.randrange(0, 1 << 18) & ~31)
    acc = channel.accumulator
    assert acc.hit_accesses + acc.miss_accesses == 100
    for _ in range(50):
        cache.read_in(rng.randrange(0, 1 << 18) & ~31)
    acc = channel.accumulator
    assert acc.hit_accesses + acc.miss_accesses == 150
