"""Monte Carlo agreement between schemes and the Table 1 closed forms.

The analytic module predicts expected probes under two assumptions:
uniform-random hit positions, and independent uniform partial fields.
These tests *construct* those conditions (full sets of uniform-random
t-bit tags, uniformly chosen hit targets) and check that the measured
averages of the actual scheme implementations converge to the
formulas — the strongest possible consistency check between
``repro.core.analysis`` and the probe-counting code.
"""

import random

import pytest

from repro.core.analysis import (
    expected_mru_hit_probes,
    expected_naive_hit_probes,
    expected_partial_hit_probes,
    expected_partial_miss_probes,
)
from repro.core.banked import BankedLookup, expected_banked_hit_probes
from repro.core.mru import MRULookup
from repro.core.naive import NaiveLookup
from repro.core.partial import PartialCompareLookup
from repro.core.probes import SetView

TRIALS = 4000


def random_full_view(rng, associativity, tag_bits=16):
    tags = rng.sample(range(2**tag_bits), associativity)
    order = list(range(associativity))
    rng.shuffle(order)
    return SetView(tags=tuple(tags), mru_order=tuple(order))


def fresh_tag(rng, view, tag_bits=16):
    while True:
        tag = rng.randrange(2**tag_bits)
        if tag not in view.tags:
            return tag


class TestHitFormulas:
    @pytest.mark.parametrize("associativity", [2, 4, 8])
    def test_naive_uniform_hits(self, associativity):
        rng = random.Random(11)
        scheme = NaiveLookup(associativity)
        total = 0
        for _ in range(TRIALS):
            view = random_full_view(rng, associativity)
            target = view.tags[rng.randrange(associativity)]
            total += scheme.lookup(view, target).probes
        measured = total / TRIALS
        expected = expected_naive_hit_probes(associativity)
        assert measured == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize("associativity,banks", [(8, 2), (8, 4), (16, 4)])
    def test_banked_uniform_hits(self, associativity, banks):
        rng = random.Random(12)
        scheme = BankedLookup(associativity, banks=banks)
        total = 0
        for _ in range(TRIALS):
            view = random_full_view(rng, associativity)
            target = view.tags[rng.randrange(associativity)]
            total += scheme.lookup(view, target).probes
        measured = total / TRIALS
        expected = expected_banked_hit_probes(associativity, banks)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_mru_with_controlled_distance_distribution(self):
        # Force hits at distance d with probability f_d and check the
        # 1 + sum(d * f_d) formula.
        rng = random.Random(13)
        associativity = 4
        distribution = [0.6, 0.2, 0.15, 0.05]
        scheme = MRULookup(associativity)
        total = 0
        for _ in range(TRIALS):
            view = random_full_view(rng, associativity)
            roll, cumulative, distance = rng.random(), 0.0, 1
            for index, probability in enumerate(distribution):
                cumulative += probability
                if roll < cumulative:
                    distance = index + 1
                    break
            target = view.tags[view.mru_order[distance - 1]]
            total += scheme.lookup(view, target).probes
        measured = total / TRIALS
        expected = expected_mru_hit_probes(distribution)
        assert measured == pytest.approx(expected, rel=0.05)


class TestPartialFormulas:
    @pytest.mark.parametrize(
        "associativity,subsets,tag_bits",
        [(4, 1, 16), (8, 2, 16), (8, 1, 32), (16, 4, 16)],
    )
    def test_partial_uniform_hits(self, associativity, subsets, tag_bits):
        rng = random.Random(14)
        scheme = PartialCompareLookup(
            associativity, tag_bits=tag_bits, subsets=subsets
        )
        total = 0
        for _ in range(TRIALS):
            view = random_full_view(rng, associativity, tag_bits)
            target = view.tags[rng.randrange(associativity)]
            total += scheme.lookup(view, target).probes
        measured = total / TRIALS
        expected = expected_partial_hit_probes(
            associativity, scheme.partial_bits, subsets
        )
        assert measured == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize(
        "associativity,subsets,tag_bits",
        [(4, 1, 16), (8, 2, 16), (16, 4, 16)],
    )
    def test_partial_uniform_misses(self, associativity, subsets, tag_bits):
        rng = random.Random(15)
        scheme = PartialCompareLookup(
            associativity, tag_bits=tag_bits, subsets=subsets
        )
        total = 0
        for _ in range(TRIALS):
            view = random_full_view(rng, associativity, tag_bits)
            total += scheme.lookup(view, fresh_tag(rng, view, tag_bits)).probes
        measured = total / TRIALS
        expected = expected_partial_miss_probes(
            associativity, scheme.partial_bits, subsets
        )
        assert measured == pytest.approx(expected, rel=0.05)

    def test_transform_choice_irrelevant_for_uniform_tags(self):
        # With already-uniform tags, every transform gives the same
        # expected false-match rate: the transforms only matter for
        # structured (real) tags.
        rng = random.Random(16)
        totals = {}
        for transform in ("none", "xor", "improved"):
            scheme = PartialCompareLookup(
                4, tag_bits=16, transform=transform
            )
            rng_local = random.Random(17)
            total = 0
            for _ in range(TRIALS):
                view = random_full_view(rng_local, 4)
                total += scheme.lookup(
                    view, fresh_tag(rng_local, view)
                ).probes
            totals[transform] = total / TRIALS
        values = list(totals.values())
        assert max(values) - min(values) < 0.05
