"""Tests for the banked serial lookup (intermediate tag widths)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.banked import (
    BankedLookup,
    expected_banked_hit_probes,
    expected_banked_miss_probes,
)
from repro.core.naive import NaiveLookup
from repro.core.probes import SetView
from repro.core.traditional import TraditionalLookup
from repro.errors import ConfigurationError


def view(tags):
    mru = tuple(i for i, t in enumerate(tags) if t is not None)
    return SetView(tags=tuple(tags), mru_order=mru)


class TestBankedLookup:
    def test_banks_must_divide(self):
        with pytest.raises(ConfigurationError):
            BankedLookup(8, banks=3)
        with pytest.raises(ConfigurationError):
            BankedLookup(4, banks=0)

    def test_hit_probes_by_group(self):
        scheme = BankedLookup(8, banks=2)
        tags = list(range(100, 108))
        v = view(tags)
        for frame, tag in enumerate(tags):
            assert scheme.lookup(v, tag).probes == frame // 2 + 1

    def test_miss_probes(self):
        scheme = BankedLookup(8, banks=2)
        assert scheme.lookup(view(list(range(8))), 99).probes == 4

    def test_b_equals_one_is_naive(self):
        tags = [10, 20, 30, 40]
        v = view(tags)
        banked = BankedLookup(4, banks=1)
        naive = NaiveLookup(4)
        for tag in tags + [99]:
            assert banked.lookup(v, tag) == naive.lookup(v, tag)

    def test_b_equals_a_is_traditional(self):
        tags = [10, 20, 30, 40]
        v = view(tags)
        banked = BankedLookup(4, banks=4)
        traditional = TraditionalLookup(4)
        for tag in tags + [99]:
            assert banked.lookup(v, tag) == traditional.lookup(v, tag)

    @given(
        banks=st.sampled_from([1, 2, 4, 8]),
        tag=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=100)
    def test_agreement_with_ground_truth(self, banks, tag):
        tags = tuple((tag + offset) % 2**16 for offset in (0, 3, 7, 11, 13, 17, 23, 29))
        v = view(list(tags))
        outcome = BankedLookup(8, banks=banks).lookup(v, tag)
        assert outcome.hit == (v.find(tag) is not None)
        assert outcome.frame == v.find(tag)


class TestExpectedProbes:
    def test_interpolates_between_naive_and_traditional(self):
        # b=1: (a+1)/2 hits, a misses. b=a: 1 and 1.
        assert expected_banked_hit_probes(8, 1) == 4.5
        assert expected_banked_miss_probes(8, 1) == 8.0
        assert expected_banked_hit_probes(8, 8) == 1.0
        assert expected_banked_miss_probes(8, 8) == 1.0
        assert expected_banked_hit_probes(8, 2) == 2.5
        assert expected_banked_miss_probes(8, 2) == 4.0

    def test_monotone_in_banks(self):
        values = [expected_banked_miss_probes(16, b) for b in (1, 2, 4, 8, 16)]
        assert values == sorted(values, reverse=True)
