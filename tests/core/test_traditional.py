"""Tests for the traditional parallel lookup (paper Figure 1a)."""

import pytest

from repro.core.probes import SetView
from repro.core.traditional import TraditionalLookup
from repro.errors import ConfigurationError


class TestTraditionalLookup:
    def test_hit_is_one_probe(self):
        scheme = TraditionalLookup(4)
        view = SetView(tags=(1, 2, 3, 4), mru_order=(0, 1, 2, 3))
        for tag in (1, 2, 3, 4):
            outcome = scheme.lookup(view, tag)
            assert outcome.hit
            assert outcome.probes == 1

    def test_miss_is_one_probe(self):
        scheme = TraditionalLookup(4)
        view = SetView(tags=(1, 2, 3, 4), mru_order=(0, 1, 2, 3))
        outcome = scheme.lookup(view, 9)
        assert not outcome.hit
        assert outcome.probes == 1

    def test_identifies_matching_frame(self):
        scheme = TraditionalLookup(2)
        view = SetView(tags=(7, 9), mru_order=(1, 0))
        assert scheme.lookup(view, 9).frame == 1

    def test_empty_set(self):
        scheme = TraditionalLookup(2)
        view = SetView(tags=(None, None), mru_order=())
        outcome = scheme.lookup(view, 0)
        assert not outcome.hit
        assert outcome.probes == 1

    def test_view_size_checked(self):
        scheme = TraditionalLookup(8)
        with pytest.raises(ConfigurationError):
            scheme.lookup(SetView(tags=(1,), mru_order=(0,)), 1)
