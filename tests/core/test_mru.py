"""Tests for the MRU lookup scheme and reduced MRU lists (§2.1, Fig 5)."""

import pytest

from repro.core.mru import MRULookup
from repro.core.probes import SetView
from repro.errors import ConfigurationError


def view(tags, mru):
    return SetView(tags=tuple(tags), mru_order=tuple(mru))


class TestFullMRU:
    def test_hit_at_mru_head_costs_two_probes(self):
        # One probe for the ordering information plus one tag probe.
        scheme = MRULookup(4)
        v = view([10, 20, 30, 40], mru=[2, 0, 3, 1])
        outcome = scheme.lookup(v, 30)
        assert outcome.hit
        assert outcome.frame == 2
        assert outcome.probes == 2

    def test_hit_at_mru_distance_i_costs_one_plus_i(self):
        scheme = MRULookup(4)
        v = view([10, 20, 30, 40], mru=[2, 0, 3, 1])
        expected = {30: 2, 10: 3, 40: 4, 20: 5}
        for tag, probes in expected.items():
            assert scheme.lookup(v, tag).probes == probes

    def test_miss_costs_one_plus_associativity(self):
        scheme = MRULookup(4)
        v = view([10, 20, 30, 40], mru=[0, 1, 2, 3])
        outcome = scheme.lookup(v, 99)
        assert not outcome.hit
        assert outcome.probes == 5

    def test_miss_on_partially_filled_set(self):
        scheme = MRULookup(4)
        v = view([10, None, None, None], mru=[0])
        assert scheme.lookup(v, 99).probes == 5

    def test_hit_beyond_mru_list_in_partially_filled_set(self):
        # Invalid frames are appended after the MRU-listed ones.
        scheme = MRULookup(4)
        v = view([10, None, 30, None], mru=[2, 0])
        assert scheme.lookup(v, 10).probes == 3

    def test_hit_distance(self):
        scheme = MRULookup(4)
        v = view([10, 20, 30, 40], mru=[3, 2, 1, 0])
        assert scheme.hit_distance(v, 40) == 1
        assert scheme.hit_distance(v, 10) == 4
        assert scheme.hit_distance(v, 99) is None


class TestReducedMRU:
    def test_list_length_validation(self):
        with pytest.raises(ConfigurationError):
            MRULookup(4, list_length=0)
        with pytest.raises(ConfigurationError):
            MRULookup(4, list_length=5)

    def test_default_is_full_list(self):
        assert MRULookup(8).list_length == 8

    def test_search_order_lists_then_frame_order(self):
        scheme = MRULookup(4, list_length=2)
        v = view([10, 20, 30, 40], mru=[3, 1, 0, 2])
        # First two MRU entries (frames 3, 1), then remaining frames in
        # frame order (0, 2).
        assert scheme.search_order(v) == [3, 1, 0, 2]

    def test_reduced_list_hit_within_list(self):
        scheme = MRULookup(4, list_length=2)
        v = view([10, 20, 30, 40], mru=[3, 1, 0, 2])
        assert scheme.lookup(v, 40).probes == 2
        assert scheme.lookup(v, 20).probes == 3

    def test_reduced_list_hit_beyond_list_uses_frame_order(self):
        scheme = MRULookup(4, list_length=2)
        v = view([10, 20, 30, 40], mru=[3, 1, 0, 2])
        # Frame 0 is the first tail candidate: probes = 1 + 2 + 1.
        assert scheme.lookup(v, 10).probes == 4
        # Frame 2 is the second tail candidate.
        assert scheme.lookup(v, 30).probes == 5

    def test_reduced_list_never_beats_full_list_on_average(self):
        full = MRULookup(4)
        reduced = MRULookup(4, list_length=1)
        v = view([10, 20, 30, 40], mru=[3, 2, 1, 0])
        tags = [10, 20, 30, 40]
        full_total = sum(full.lookup(v, t).probes for t in tags)
        reduced_total = sum(reduced.lookup(v, t).probes for t in tags)
        assert reduced_total >= full_total

    def test_length_one_list(self):
        scheme = MRULookup(2, list_length=1)
        v = view([5, 6], mru=[1, 0])
        assert scheme.lookup(v, 6).probes == 2
        assert scheme.lookup(v, 5).probes == 3

    def test_miss_cost_unchanged_by_list_length(self):
        v = view([10, 20, 30, 40], mru=[0, 1, 2, 3])
        for m in (1, 2, 3, 4):
            assert MRULookup(4, list_length=m).lookup(v, 99).probes == 5
