"""Tests for SetView, LookupOutcome, and ProbeAccumulator."""

import pytest

from repro.core.probes import LookupOutcome, ProbeAccumulator, SetView


class TestSetView:
    def test_associativity(self):
        view = SetView(tags=(1, 2, None, 4), mru_order=(0, 1, 3))
        assert view.associativity == 4

    def test_find_hit(self):
        view = SetView(tags=(10, 20, 30), mru_order=(0, 1, 2))
        assert view.find(20) == 1

    def test_find_miss(self):
        view = SetView(tags=(10, 20, 30), mru_order=(0, 1, 2))
        assert view.find(99) is None

    def test_find_skips_invalid_frames(self):
        view = SetView(tags=(None, None, 7), mru_order=(2,))
        assert view.find(7) == 2

    def test_empty_set_always_misses(self):
        view = SetView(tags=(None, None), mru_order=())
        assert view.find(0) is None

    def test_tag_zero_is_findable(self):
        # Tag value 0 must not be confused with an invalid frame.
        view = SetView(tags=(0, None), mru_order=(0,))
        assert view.find(0) == 0


class TestLookupOutcome:
    def test_hit_requires_frame(self):
        with pytest.raises(ValueError):
            LookupOutcome(hit=True, frame=None, probes=1)

    def test_miss_forbids_frame(self):
        with pytest.raises(ValueError):
            LookupOutcome(hit=False, frame=2, probes=1)

    def test_negative_probes_rejected(self):
        with pytest.raises(ValueError):
            LookupOutcome(hit=False, frame=None, probes=-1)

    def test_valid_hit(self):
        outcome = LookupOutcome(hit=True, frame=3, probes=4)
        assert outcome.frame == 3
        assert outcome.probes == 4


class TestProbeAccumulator:
    def test_initially_zero(self):
        acc = ProbeAccumulator()
        assert acc.probes_per_hit == 0.0
        assert acc.probes_per_miss == 0.0
        assert acc.probes_per_access == 0.0
        assert acc.hits_including_writebacks == 0.0

    def test_hit_average(self):
        acc = ProbeAccumulator()
        acc.record_hit(1)
        acc.record_hit(3)
        assert acc.probes_per_hit == 2.0

    def test_miss_average(self):
        acc = ProbeAccumulator()
        acc.record_miss(4)
        acc.record_miss(6)
        assert acc.probes_per_miss == 5.0

    def test_total_includes_writebacks_in_denominator(self):
        acc = ProbeAccumulator()
        acc.record_hit(2)
        acc.record_writeback(0)
        # (2 + 0) probes over 2 accesses.
        assert acc.probes_per_access == 1.0

    def test_hits_including_writebacks_matches_paper_accounting(self):
        # Paper Table 4: write-backs cost 0 probes but count as hits.
        acc = ProbeAccumulator()
        for _ in range(8):
            acc.record_hit(2)
        for _ in range(2):
            acc.record_writeback(0)
        assert acc.hits_including_writebacks == pytest.approx(1.6)
        assert acc.probes_per_hit == pytest.approx(2.0)

    def test_unoptimized_writebacks_contribute_probes(self):
        acc = ProbeAccumulator()
        acc.record_hit(1)
        acc.record_writeback(3)
        assert acc.probes_per_access == 2.0

    def test_readin_accesses(self):
        acc = ProbeAccumulator()
        acc.record_hit(1)
        acc.record_miss(4)
        acc.record_writeback(0)
        assert acc.readin_accesses == 2
        assert acc.total_accesses == 3

    def test_probes_per_readin(self):
        acc = ProbeAccumulator()
        acc.record_hit(2)
        acc.record_miss(4)
        assert acc.probes_per_readin == 3.0

    def test_merge(self):
        a = ProbeAccumulator()
        a.record_hit(2)
        b = ProbeAccumulator()
        b.record_hit(4)
        b.record_miss(8)
        b.record_writeback(1)
        a.merge(b)
        assert a.hit_accesses == 2
        assert a.probes_per_hit == 3.0
        assert a.miss_probes == 8
        assert a.writeback_probes == 1
