"""Differential: columnar batch replay vs the serial fused engine.

The :class:`~repro.core.batch.ColumnarReplayEngine` claims bit-identical
probe accounting to a :class:`~repro.core.engine.FusedProbeEngine`
attached to a live :class:`~repro.cache.set_associative.SetAssociativeCache`
replaying the same miss stream serially. These tests drive both paths
over identical packed streams and compare every observable: cache
stats, per-scheme probe accumulators, MRU-distance statistics, and the
update count — across replacement policies, fill policies, writeback
optimization, and the full lookup-scheme roster (including reduced MRU
lists, partial-compare transforms, and the generic channel fallback).
"""

import random

import pytest

from repro.cache.hierarchy import MissStream, replay_miss_stream
from repro.cache.replacement import make_replacement
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.stream import PackedMissStream
from repro.core.banked import BankedLookup
from repro.core.batch import (
    ColumnarReplayEngine,
    clear_run_delta_memo,
    columnar_supported,
)
from repro.core.engine import FusedProbeEngine
from repro.core.mru import MRULookup
from repro.core.naive import NaiveLookup
from repro.core.partial import PartialCompareLookup
from repro.core.traditional import TraditionalLookup
from repro.errors import ConfigurationError

CAPACITY = 16 * 1024
BLOCK = 32

ACCUMULATOR_FIELDS = (
    "hit_accesses",
    "hit_probes",
    "miss_accesses",
    "miss_probes",
    "writeback_accesses",
    "writeback_probes",
)


def full_roster(a):
    """Every scheme shape the fused engine special-cases, plus generic."""
    roster = [
        ("traditional", TraditionalLookup(a)),
        ("naive", NaiveLookup(a)),
        ("mru", MRULookup(a)),
        ("partial", PartialCompareLookup(a, tag_bits=16)),
        ("partial-swap", PartialCompareLookup(a, tag_bits=16, transform="swap")),
        ("partial-none", PartialCompareLookup(a, tag_bits=16, transform="none")),
        ("partial-s2", PartialCompareLookup(
            a, tag_bits=16, subsets=2, transform="improved"
        )),
        ("partial-full", PartialCompareLookup(
            a, tag_bits=16, partial_bits=16, subsets=a
        )),
        ("banked", BankedLookup(a)),
    ]
    if a > 2:
        roster.append(("mru-m1", MRULookup(a, list_length=a - 1)))
        roster.append(("mru-m2", MRULookup(a, list_length=a - 2)))
    return roster


def make_stream(seed, events=4_000, segments=2, writeback_fraction=0.25):
    """A synthetic miss stream with flush boundaries between segments."""
    rng = random.Random(seed)
    stream = MissStream()
    per_segment = events // segments
    for segment in range(segments):
        if segment:
            stream.append_flush()
        for _ in range(per_segment):
            address = rng.randrange(0, 1 << 22) & ~31
            code = 1 if rng.random() < writeback_fraction else 0
            stream.events.append((code, address))
    stream.processor_references = events * 4
    return stream


def serial_reference(stream, a, roster, *, wb_opt, replacement, fill, seed):
    """Replay serially through a live cache + fused engine."""
    cache = SetAssociativeCache(
        CAPACITY,
        BLOCK,
        a,
        replacement=make_replacement(replacement, fill=fill, seed=seed),
    )
    engine = FusedProbeEngine(a)
    for label, scheme in roster:
        engine.add_scheme(scheme, writeback_optimization=wb_opt, label=label)
    distance = engine.add_mru_distance()
    cache.attach_engine(engine)
    replay_miss_stream(stream, cache)
    engine.finalize()
    return cache, engine, distance


def columnar_outcome(stream, a, roster, *, wb_opt, replacement, fill, seed):
    """Replay the same stream through the batch engine."""
    engine = ColumnarReplayEngine(
        CAPACITY,
        BLOCK,
        a,
        roster,
        writeback_optimization=wb_opt,
        replacement=make_replacement(replacement, fill=fill, seed=seed),
    )
    return engine.replay(PackedMissStream.from_miss_stream(stream))


def assert_identical(cache, engine, distance, outcome):
    assert outcome.stats.__dict__ == cache.stats.__dict__
    assert set(outcome.accumulators) == set(engine.channels)
    for label, channel in engine.channels.items():
        got = outcome.accumulators[label]
        for field in ACCUMULATOR_FIELDS:
            assert getattr(got, field) == getattr(
                channel.accumulator, field
            ), (label, field)
    assert outcome.distance is not None
    assert outcome.distance.hits == distance.hits
    assert outcome.distance.accesses == distance.accesses
    assert outcome.distance.counts == distance.counts
    assert outcome.updates == distance.updates


@pytest.mark.parametrize("a", [2, 4])
@pytest.mark.parametrize("wb_opt", [True, False])
def test_columnar_matches_serial_lru_random_fill(a, wb_opt):
    roster = full_roster(a)
    stream = make_stream(seed=100 + a)
    cache, engine, distance = serial_reference(
        stream, a, roster,
        wb_opt=wb_opt, replacement="lru", fill="random", seed=0,
    )
    outcome = columnar_outcome(
        stream, a, full_roster(a),
        wb_opt=wb_opt, replacement="lru", fill="random", seed=0,
    )
    assert_identical(cache, engine, distance, outcome)


@pytest.mark.parametrize("replacement", ["lru", "fifo"])
@pytest.mark.parametrize("fill", ["random", "first"])
def test_columnar_matches_serial_policy_grid(replacement, fill):
    a = 4
    roster = full_roster(a)
    stream = make_stream(seed=7)
    cache, engine, distance = serial_reference(
        stream, a, roster,
        wb_opt=True, replacement=replacement, fill=fill, seed=3,
    )
    outcome = columnar_outcome(
        stream, a, full_roster(a),
        wb_opt=True, replacement=replacement, fill=fill, seed=3,
    )
    assert_identical(cache, engine, distance, outcome)


def test_columnar_matches_serial_without_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    a = 4
    stream = make_stream(seed=11)
    cache, engine, distance = serial_reference(
        stream, a, full_roster(a),
        wb_opt=True, replacement="lru", fill="random", seed=0,
    )
    outcome = columnar_outcome(
        stream, a, full_roster(a),
        wb_opt=True, replacement="lru", fill="random", seed=0,
    )
    assert_identical(cache, engine, distance, outcome)


def test_warm_replay_reuses_aggregates_bit_identically():
    a = 4
    stream = make_stream(seed=13)
    packed = PackedMissStream.from_miss_stream(stream)
    engine = ColumnarReplayEngine(CAPACITY, BLOCK, a, full_roster(a))
    cold = engine.replay(packed)
    warm = engine.replay(packed)
    assert warm.stats.__dict__ == cold.stats.__dict__
    for label in cold.accumulators:
        for field in ACCUMULATOR_FIELDS:
            assert getattr(warm.accumulators[label], field) == getattr(
                cold.accumulators[label], field
            )
    assert warm.distance.counts == cold.distance.counts
    assert warm.run_count == cold.run_count


def test_cold_replay_after_memo_clear_still_identical():
    a = 2
    stream = make_stream(seed=17, events=1_000, segments=1)
    packed = PackedMissStream.from_miss_stream(stream)
    engine = ColumnarReplayEngine(CAPACITY, BLOCK, a, full_roster(a))
    first = engine.replay(packed)
    clear_run_delta_memo()
    packed_again = PackedMissStream.from_miss_stream(stream)
    second = engine.replay(packed_again)
    assert second.stats.__dict__ == first.stats.__dict__


def test_batch_hist_reflects_per_set_runs():
    stream = make_stream(seed=19, events=2_000, segments=2)
    engine = ColumnarReplayEngine(CAPACITY, BLOCK, 4, full_roster(4))
    outcome = engine.replay(PackedMissStream.from_miss_stream(stream))
    assert outcome.run_count == outcome.batch_hist["count"]
    assert outcome.batch_hist["total"] == stream.readins + stream.writebacks
    assert outcome.batch_hist["min"] >= 1


def test_random_replacement_rejected():
    assert columnar_supported("lru")
    assert columnar_supported("fifo")
    assert not columnar_supported("random")
    with pytest.raises(ConfigurationError, match="columnar"):
        ColumnarReplayEngine(
            CAPACITY, BLOCK, 4, full_roster(4), replacement="random"
        )


def test_track_distance_disabled():
    stream = make_stream(seed=23, events=1_000, segments=1)
    engine = ColumnarReplayEngine(
        CAPACITY, BLOCK, 4, full_roster(4), track_distance=False
    )
    outcome = engine.replay(PackedMissStream.from_miss_stream(stream))
    assert outcome.distance is None
    cache, fused, _ = serial_reference(
        stream, 4, full_roster(4),
        wb_opt=True, replacement="lru", fill="random", seed=0,
    )
    assert outcome.stats.__dict__ == cache.stats.__dict__
