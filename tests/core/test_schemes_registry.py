"""Tests for the scheme registry and base-class validation."""

import pytest

from repro.core.mru import MRULookup
from repro.core.partial import PartialCompareLookup
from repro.core.schemes import (
    available_schemes,
    build_scheme,
    register_scheme,
    require_power_of_two,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_builtin_schemes_registered(self):
        names = available_schemes()
        for name in ("traditional", "naive", "mru", "partial"):
            assert name in names

    def test_build_by_name(self):
        scheme = build_scheme("naive", 4)
        assert scheme.name == "naive"
        assert scheme.associativity == 4

    def test_build_with_kwargs(self):
        scheme = build_scheme("mru", 8, list_length=2)
        assert isinstance(scheme, MRULookup)
        assert scheme.list_length == 2

    def test_build_partial_with_kwargs(self):
        scheme = build_scheme(
            "partial", 8, tag_bits=32, subsets=2, transform="improved"
        )
        assert isinstance(scheme, PartialCompareLookup)
        assert scheme.tag_bits == 32
        assert scheme.subsets == 2

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            build_scheme("oracle", 4)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scheme("naive", lambda a: None)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 1024])
    def test_accepts_powers(self, value):
        require_power_of_two(value, "x")

    @pytest.mark.parametrize("value", [0, -1, 3, 6, 12, 1000])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ConfigurationError):
            require_power_of_two(value, "x")
