"""GF(2) linear-algebra view of the tag transformations.

Paper footnote 8: "Our hash function is a linear transformation T from
GF(2) to itself, given by a lower-triangular matrix with 1's on the
diagonal. It can be shown using Gaussian elimination that T is
invertible, and its inverse is lower-triangular as well."

These tests construct each transform's matrix explicitly (by probing
basis vectors) and verify the footnote's algebra.
"""

import pytest

from repro.core.transforms import (
    ImprovedXorTransform,
    XorLowTransform,
)

TAG_BITS = 16
FIELD_BITS = 4


def matrix_of(transform, bits=TAG_BITS):
    """Column ``j`` of T is T(e_j); rows as bit-lists (LSB = index 0)."""
    columns = []
    for j in range(bits):
        image = transform.apply(1 << j)
        columns.append([(image >> i) & 1 for i in range(bits)])
    # rows[i][j] = bit i of T(e_j)
    return [[columns[j][i] for j in range(bits)] for i in range(bits)]


def is_linear(transform, bits=TAG_BITS, samples=200):
    """T(a ^ b) == T(a) ^ T(b) on random pairs (0 maps to 0)."""
    import random

    rng = random.Random(5)
    if transform.apply(0) != 0:
        return False
    for _ in range(samples):
        a = rng.randrange(1 << bits)
        b = rng.randrange(1 << bits)
        if transform.apply(a ^ b) != transform.apply(a) ^ transform.apply(b):
            return False
    return True


def gf2_rank(matrix):
    """Rank over GF(2) via Gaussian elimination."""
    rows = [int("".join(str(b) for b in reversed(row)), 2) for row in matrix]
    rank = 0
    for bit in range(len(matrix)):
        pivot = None
        for index in range(rank, len(rows)):
            if rows[index] >> bit & 1:
                pivot = index
                break
        if pivot is None:
            continue
        rows[rank], rows[pivot] = rows[pivot], rows[rank]
        for index in range(len(rows)):
            if index != rank and rows[index] >> bit & 1:
                rows[index] ^= rows[rank]
        rank += 1
    return rank


@pytest.mark.parametrize("cls", [XorLowTransform, ImprovedXorTransform])
class TestFootnote8:
    def test_transform_is_gf2_linear(self, cls):
        assert is_linear(cls(TAG_BITS, FIELD_BITS))

    def test_matrix_full_rank(self, cls):
        matrix = matrix_of(cls(TAG_BITS, FIELD_BITS))
        assert gf2_rank(matrix) == TAG_BITS

    def test_unit_diagonal(self, cls):
        matrix = matrix_of(cls(TAG_BITS, FIELD_BITS))
        assert all(matrix[i][i] == 1 for i in range(TAG_BITS))

    def test_lower_triangular(self, cls):
        # "given by a lower-triangular matrix with 1's on the
        # diagonal": output bit i depends only on input bits <= i...
        # at field granularity. Both transforms only fold *lower*
        # fields upward, so above the diagonal, entries are zero.
        matrix = matrix_of(cls(TAG_BITS, FIELD_BITS))
        for i in range(TAG_BITS):
            for j in range(TAG_BITS):
                # Field of row/column.
                if j // FIELD_BITS > i // FIELD_BITS:
                    assert matrix[i][j] == 0, (i, j)

    def test_inverse_matrix_matches_invert(self, cls):
        import random

        transform = cls(TAG_BITS, FIELD_BITS)
        rng = random.Random(6)
        for _ in range(100):
            tag = rng.randrange(1 << TAG_BITS)
            assert transform.invert(transform.apply(tag)) == tag


class TestSelfInverseStructure:
    def test_xor_matrix_is_involution(self):
        # T^2 = I for the simple XOR transform.
        transform = XorLowTransform(TAG_BITS, FIELD_BITS)
        for j in range(TAG_BITS):
            basis = 1 << j
            assert transform.apply(transform.apply(basis)) == basis

    def test_improved_matrix_is_not_involution(self):
        transform = ImprovedXorTransform(TAG_BITS, FIELD_BITS)
        violated = any(
            transform.apply(transform.apply(1 << j)) != (1 << j)
            for j in range(TAG_BITS)
        )
        assert violated
