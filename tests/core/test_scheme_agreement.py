"""Property tests: every scheme agrees with ground truth on hit/miss,
identifies the same frame, and respects its probe bounds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mru import MRULookup
from repro.core.naive import NaiveLookup
from repro.core.partial import PartialCompareLookup
from repro.core.probes import SetView
from repro.core.traditional import TraditionalLookup


@st.composite
def set_views(draw, associativity=4, tag_bits=16):
    """Random set states: some frames invalid, distinct tags, and a
    consistent MRU order over the valid frames."""
    tags = []
    for _ in range(associativity):
        if draw(st.booleans()):
            tags.append(None)
        else:
            tags.append(draw(st.integers(0, 2**tag_bits - 1)))
    # Enforce within-set tag uniqueness (a cache invariant).
    seen = set()
    for index, tag in enumerate(tags):
        if tag is None:
            continue
        while tag in seen:
            tag = (tag + 1) % 2**tag_bits
        seen.add(tag)
        tags[index] = tag
    valid = [i for i, t in enumerate(tags) if t is not None]
    mru = draw(st.permutations(valid))
    return SetView(tags=tuple(tags), mru_order=tuple(mru))


def schemes_for(associativity):
    from repro.core.banked import BankedLookup

    built = [
        TraditionalLookup(associativity),
        NaiveLookup(associativity),
        MRULookup(associativity),
        MRULookup(associativity, list_length=1),
        BankedLookup(associativity, banks=min(2, associativity)),
    ]
    for transform in ("none", "xor", "improved", "swap"):
        built.append(
            PartialCompareLookup(associativity, tag_bits=16, transform=transform)
        )
    if associativity >= 2:
        built.append(
            PartialCompareLookup(associativity, tag_bits=16, subsets=2)
        )
    return built


@given(view=set_views(4), tag=st.integers(0, 2**16 - 1))
@settings(max_examples=300)
def test_all_schemes_agree_with_ground_truth_4way(view, tag):
    expected = view.find(tag)
    for scheme in schemes_for(4):
        outcome = scheme.lookup(view, tag)
        assert outcome.hit == (expected is not None), scheme
        assert outcome.frame == expected, scheme


@given(view=set_views(8), tag=st.integers(0, 2**16 - 1))
@settings(max_examples=150)
def test_all_schemes_agree_with_ground_truth_8way(view, tag):
    expected = view.find(tag)
    for scheme in schemes_for(8):
        outcome = scheme.lookup(view, tag)
        assert outcome.hit == (expected is not None), scheme
        assert outcome.frame == expected, scheme


@given(view=set_views(4), tag=st.integers(0, 2**16 - 1))
@settings(max_examples=300)
def test_probe_bounds_4way(view, tag):
    a = 4
    assert TraditionalLookup(a).lookup(view, tag).probes == 1

    naive = NaiveLookup(a).lookup(view, tag)
    assert 1 <= naive.probes <= a

    mru = MRULookup(a).lookup(view, tag)
    assert 2 <= mru.probes <= a + 1
    if not mru.hit:
        assert mru.probes == a + 1
    if not naive.hit:
        assert naive.probes == a

    partial = PartialCompareLookup(a, tag_bits=16).lookup(view, tag)
    # 1 partial probe, then at most one full compare per valid frame.
    valid = sum(1 for t in view.tags if t is not None)
    assert 1 <= partial.probes <= 1 + valid
    if partial.hit:
        assert partial.probes >= 2


@given(view=set_views(8), tag=st.integers(0, 2**16 - 1))
@settings(max_examples=150)
def test_partial_subset_probe_bounds_8way(view, tag):
    scheme = PartialCompareLookup(8, tag_bits=16, subsets=2)
    outcome = scheme.lookup(view, tag)
    valid = sum(1 for t in view.tags if t is not None)
    if outcome.hit:
        assert 2 <= outcome.probes <= 2 + valid
    else:
        assert 2 <= outcome.probes <= 2 + valid


@given(view=set_views(4), tag=st.integers(0, 2**16 - 1))
@settings(max_examples=200)
def test_mru_full_list_never_slower_than_naive_worst_case(view, tag):
    # The MRU scheme costs at most one probe more than scanning the
    # whole set (the ordering lookup).
    mru = MRULookup(4).lookup(view, tag)
    assert mru.probes <= 4 + 1


@given(view=set_views(4), tag=st.integers(0, 2**16 - 1))
@settings(max_examples=200)
def test_reduced_list_probes_at_least_full_list_on_hits(view, tag):
    full = MRULookup(4).lookup(view, tag)
    reduced = MRULookup(4, list_length=1).lookup(view, tag)
    if full.hit:
        # Distance-1 hits cost the same; deeper hits may cost more
        # under the reduced list but never less.
        if full.probes == 2:
            assert reduced.probes == 2
        else:
            assert reduced.probes >= 2
