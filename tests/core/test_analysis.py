"""Tests for the closed-form probe models (Table 1 and §2.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    default_subsets,
    expected_mru_hit_probes,
    expected_mru_miss_probes,
    expected_naive_hit_probes,
    expected_naive_miss_probes,
    expected_partial_hit_probes,
    expected_partial_miss_probes,
    expected_total_probes,
    expected_traditional_probes,
    geometric_hit_distribution,
    optimal_partial_width,
    optimal_subsets,
)
from repro.errors import ConfigurationError


class TestTable1Values:
    """Exact agreement with the paper's Table 1 example rows."""

    def test_traditional(self):
        assert expected_traditional_probes() == 1.0

    def test_naive_4way(self):
        assert expected_naive_hit_probes(4) == 2.5
        assert expected_naive_miss_probes(4) == 4.0

    def test_mru_miss_4way(self):
        assert expected_mru_miss_probes(4) == 5.0

    def test_partial_4way_k4(self):
        assert expected_partial_hit_probes(4, 4, 1) == pytest.approx(
            2 + (4 - 1) / 2**5
        )
        assert round(expected_partial_hit_probes(4, 4, 1), 2) == 2.09
        assert expected_partial_miss_probes(4, 4, 1) == 1.25

    def test_partial_8way_k2_one_subset(self):
        assert round(expected_partial_hit_probes(8, 2, 1), 2) == 2.88
        assert expected_partial_miss_probes(8, 2, 1) == 3.0

    def test_partial_8way_k4_two_subsets(self):
        assert round(expected_partial_hit_probes(8, 4, 2), 2) == 2.72
        assert expected_partial_miss_probes(8, 4, 2) == 2.5

    def test_mru_hit_range(self):
        # Table 1 gives the MRU hit range [2, a+1]: best case every hit
        # at distance 1, worst case every hit at distance a.
        best = expected_mru_hit_probes([1.0, 0.0, 0.0, 0.0])
        worst = expected_mru_hit_probes([0.0, 0.0, 0.0, 1.0])
        assert best == 2.0
        assert worst == 5.0


class TestMruModel:
    def test_distribution_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            expected_mru_hit_probes([0.5, 0.2])

    def test_negative_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_mru_hit_probes([1.5, -0.5])

    def test_geometric_distribution_normalized(self):
        for ratio in (0.1, 0.5, 1.0):
            dist = geometric_hit_distribution(8, ratio)
            assert math.fsum(dist) == pytest.approx(1.0)
            assert all(p >= 0 for p in dist)

    def test_geometric_distribution_is_decreasing(self):
        dist = geometric_hit_distribution(8, 0.5)
        assert all(a >= b for a, b in zip(dist, dist[1:]))

    def test_geometric_ratio_one_is_uniform(self):
        dist = geometric_hit_distribution(4, 1.0)
        assert dist == pytest.approx([0.25] * 4)

    def test_geometric_mru_probes_grow_roughly_linearly(self):
        # The paper's explanation of Figure 3: geometric f_i with slope
        # ~ -1/a gives probes linear in associativity.
        probes = []
        for a in (4, 8, 16):
            dist = geometric_hit_distribution(a, 1 - 1 / a)
            probes.append(expected_mru_hit_probes(dist))
        first_gap = probes[1] - probes[0]
        second_gap = probes[2] - probes[1]
        assert second_gap > first_gap > 0


class TestPartialModel:
    def test_partial_reduces_to_naive_at_full_subsets(self):
        # s = a with k = t: each "partial" probe examines one whole tag.
        # Miss cost s + a/2^k ~ a for wide k.
        assert expected_partial_miss_probes(8, 16, 8) == pytest.approx(
            8 + 8 / 2**16
        )

    def test_more_subsets_cost_more_on_misses_for_wide_k(self):
        assert expected_partial_miss_probes(8, 4, 4) > (
            expected_partial_miss_probes(8, 4, 2)
        )

    def test_wider_compares_reduce_hit_probes(self):
        assert expected_partial_hit_probes(8, 4, 1) < (
            expected_partial_hit_probes(8, 2, 1)
        )

    def test_subsets_must_divide(self):
        with pytest.raises(ConfigurationError):
            expected_partial_hit_probes(8, 4, 3)

    @given(
        a=st.sampled_from([2, 4, 8, 16]),
        k=st.integers(1, 8),
    )
    @settings(max_examples=60)
    def test_hit_probes_at_least_two(self, a, k):
        # One partial probe plus the final full match.
        assert expected_partial_hit_probes(a, k, 1) >= 2.0

    @given(a=st.sampled_from([4, 8, 16]), k=st.integers(1, 8))
    @settings(max_examples=60)
    def test_miss_probes_decrease_with_k(self, a, k):
        assert expected_partial_miss_probes(a, k + 1, 1) < (
            expected_partial_miss_probes(a, k, 1)
        )


class TestOptimalChoices:
    def test_k_opt_formula(self):
        assert optimal_partial_width(16) == pytest.approx(math.log2(16) - 0.5)
        assert optimal_partial_width(32) == pytest.approx(4.5)

    def test_default_subsets_matches_paper_t16(self):
        # Paper §3: 1, 2, 4 subsets for 4, 8, 16-way at t = 16.
        assert default_subsets(4, 16) == 1
        assert default_subsets(8, 16) == 2
        assert default_subsets(16, 16) == 4

    def test_default_subsets_t32(self):
        # Paper Figure 6: larger tags reduce the subset count.
        assert default_subsets(4, 32) == 1
        assert default_subsets(8, 32) == 1
        assert default_subsets(16, 32) == 2

    def test_optimal_subsets_prefers_fewer_at_low_miss_ratio(self):
        low = optimal_subsets(8, 16, miss_ratio=0.0)
        high = optimal_subsets(8, 16, miss_ratio=1.0)
        assert low <= high or low == high

    def test_optimal_subsets_matches_expected_probe_enumeration(self):
        a, t, m = 8, 16, 0.2
        best = optimal_subsets(a, t, m)
        costs = {}
        s = 1
        while s <= a:
            k = t * s // a
            if k >= 1:
                costs[s] = expected_total_probes(
                    expected_partial_hit_probes(a, k, s),
                    expected_partial_miss_probes(a, k, s),
                    m,
                )
            s *= 2
        assert costs[best] == min(costs.values())

    def test_total_probes_interpolates(self):
        assert expected_total_probes(2.0, 4.0, 0.5) == 3.0
        assert expected_total_probes(2.0, 4.0, 0.0) == 2.0
        assert expected_total_probes(2.0, 4.0, 1.0) == 4.0

    def test_total_probes_rejects_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            expected_total_probes(2.0, 4.0, 1.5)


class TestValidation:
    def test_associativity_power_of_two(self):
        with pytest.raises(ConfigurationError):
            expected_naive_hit_probes(6)
        with pytest.raises(ConfigurationError):
            expected_mru_miss_probes(0)

    def test_partial_bits_positive(self):
        with pytest.raises(ConfigurationError):
            expected_partial_hit_probes(4, 0, 1)
