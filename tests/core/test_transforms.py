"""Tests for the tag transformations of Section 2.2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transforms import (
    BitSwapTransform,
    IdentityTransform,
    ImprovedXorTransform,
    TagTransform,
    XorLowTransform,
    available_transforms,
    join_fields,
    make_transform,
    split_fields,
)
from repro.errors import ConfigurationError

ALL_TRANSFORMS = [
    IdentityTransform,
    XorLowTransform,
    ImprovedXorTransform,
    BitSwapTransform,
]


class TestFieldSplitting:
    def test_split_even(self):
        assert split_fields(0xABCD, 16, 4) == [0xD, 0xC, 0xB, 0xA]

    def test_split_ragged(self):
        # 10-bit tag, 4-bit fields: fields of 4, 4, 2 bits.
        assert split_fields(0b11_0101_1001, 10, 4) == [0b1001, 0b0101, 0b11]

    def test_join_inverts_split(self):
        for tag in (0, 1, 0x1234, 0xFFFF):
            fields = split_fields(tag, 16, 4)
            assert join_fields(fields, 16, 4) == tag

    def test_split_rejects_oversized_tag(self):
        with pytest.raises(ValueError):
            split_fields(1 << 16, 16, 4)

    @given(tag=st.integers(0, 2**24 - 1), field_bits=st.sampled_from([2, 3, 4, 8]))
    def test_split_join_roundtrip(self, tag, field_bits):
        fields = split_fields(tag, 24, field_bits)
        assert join_fields(fields, 24, field_bits) == tag


class TestTransformValidation:
    @pytest.mark.parametrize("cls", ALL_TRANSFORMS)
    def test_rejects_nonpositive_widths(self, cls):
        with pytest.raises(ConfigurationError):
            cls(0, 4)
        with pytest.raises(ConfigurationError):
            cls(16, 0)

    @pytest.mark.parametrize("cls", ALL_TRANSFORMS)
    def test_rejects_field_wider_than_tag(self, cls):
        with pytest.raises(ConfigurationError):
            cls(4, 8)

    def test_make_transform_by_name(self):
        for name in available_transforms():
            transform = make_transform(name, 16, 4)
            assert isinstance(transform, TagTransform)
            assert transform.name == name

    def test_make_transform_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_transform("md5", 16, 4)


class TestBijectivity:
    @pytest.mark.parametrize("cls", ALL_TRANSFORMS)
    def test_exhaustive_bijection_8bit(self, cls):
        transform = cls(8, 2)
        images = {transform.apply(tag) for tag in range(256)}
        assert len(images) == 256

    @pytest.mark.parametrize("cls", ALL_TRANSFORMS)
    @given(tag=st.integers(0, 2**16 - 1))
    @settings(max_examples=200)
    def test_invert_recovers_tag(self, cls, tag):
        transform = cls(16, 4)
        assert transform.invert(transform.apply(tag)) == tag

    @pytest.mark.parametrize("cls", ALL_TRANSFORMS)
    @given(tag=st.integers(0, 2**17 - 1))
    @settings(max_examples=100)
    def test_invert_recovers_tag_ragged(self, cls, tag):
        # 17-bit tags with 4-bit fields: a 1-bit top field.
        transform = cls(17, 4)
        assert transform.invert(transform.apply(tag)) == tag

    @given(tag=st.integers(0, 2**16 - 1))
    @settings(max_examples=100)
    def test_xor_is_self_inverse(self, tag):
        transform = XorLowTransform(16, 4)
        assert transform.apply(transform.apply(tag)) == tag

    def test_improved_is_not_self_inverse(self):
        transform = ImprovedXorTransform(16, 4)
        # The paper: "the new transformation is not its own inverse".
        counterexamples = [
            t for t in range(2**16) if transform.apply(transform.apply(t)) != t
        ]
        assert counterexamples


class TestTransformSemantics:
    def test_identity_passes_through(self):
        transform = IdentityTransform(16, 4)
        assert transform.apply(0xBEEF) == 0xBEEF

    def test_xor_low_folds_field0_into_others(self):
        transform = XorLowTransform(16, 4)
        # tag fields (low to high): D, C, B, A -> D, C^D, B^D, A^D
        assert transform.apply(0xABCD) == (
            (0xA ^ 0xD) << 12 | (0xB ^ 0xD) << 8 | (0xC ^ 0xD) << 4 | 0xD
        )

    def test_improved_structure(self):
        transform = ImprovedXorTransform(16, 4)
        # fields f0..f3 -> f0, f1^f0, f2^f0^f1, f3^f0^f1
        f0, f1, f2, f3 = 0xD, 0xC, 0xB, 0xA
        expected = (
            (f3 ^ f0 ^ f1) << 12 | (f2 ^ f0 ^ f1) << 8 | (f1 ^ f0) << 4 | f0
        )
        assert transform.apply(0xABCD) == expected

    def test_improved_field0_preserved(self):
        transform = ImprovedXorTransform(16, 4)
        for tag in (0x0001, 0xFFF7, 0x1234):
            assert transform.apply(tag) & 0xF == tag & 0xF

    def test_compare_slice_reads_transformed_field(self):
        transform = XorLowTransform(16, 4)
        tag = 0xABCD
        stored = transform.apply(tag)
        for position in range(4):
            expected = (stored >> (4 * position)) & 0xF
            assert transform.compare_slice(tag, position) == expected

    def test_compare_slice_out_of_range(self):
        transform = IdentityTransform(16, 4)
        with pytest.raises(ConfigurationError):
            transform.compare_slice(0, 4)

    def test_swap_always_compares_low_field(self):
        transform = BitSwapTransform(16, 4)
        tag = 0xABCD
        for position in range(4):
            assert transform.compare_slice(tag, position) == 0xD

    def test_swap_stores_tags_unmodified(self):
        transform = BitSwapTransform(16, 4)
        assert transform.apply(0x1234) == 0x1234

    @pytest.mark.parametrize("cls", ALL_TRANSFORMS)
    def test_apply_stays_within_tag_width(self, cls):
        transform = cls(16, 4)
        for tag in (0, 0xFFFF, 0x8421, 0x7001):
            assert 0 <= transform.apply(tag) < 2**16
            assert 0 <= transform.invert(tag) < 2**16

    def test_num_fields(self):
        assert IdentityTransform(16, 4).num_fields == 4
        assert IdentityTransform(17, 4).num_fields == 5
        assert IdentityTransform(16, 16).num_fields == 1
