"""Tests for the effective-access-time model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.hardware.effective import (
    crossover_miss_penalty_ns,
    effective_access_ns,
    tag_path_ns,
)


class TestTagPath:
    def test_direct_ignores_probes(self):
        assert tag_path_ns("direct", "dram", 1.0) == 136.0
        assert tag_path_ns("direct", "dram", 5.0) == 136.0

    def test_serial_pays_per_extra_probe(self):
        # DRAM MRU: 150 + 50x with x = probes - 1.
        assert tag_path_ns("mru", "dram", 1.0) == 150.0
        assert tag_path_ns("mru", "dram", 3.0) == 250.0

    def test_first_probe_floor(self):
        assert tag_path_ns("partial", "dram", 0.5) == 150.0

    def test_negative_probes_rejected(self):
        with pytest.raises(ConfigurationError):
            tag_path_ns("mru", "dram", -1.0)


class TestEffectiveAccess:
    def test_zero_penalty_equals_tag_path(self):
        assert effective_access_ns("mru", "dram", 2.0, 0.2, 0.0) == 200.0

    def test_penalty_weighted_by_miss_ratio(self):
        value = effective_access_ns("direct", "dram", 1.0, 0.25, 400.0)
        assert value == 136.0 + 100.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            effective_access_ns("direct", "dram", 1.0, 1.5, 10.0)
        with pytest.raises(ConfigurationError):
            effective_access_ns("direct", "dram", 1.0, 0.5, -1.0)


class TestCrossover:
    def test_basic_crossover(self):
        # Serial pays 250ns vs 136ns direct; saves 0.10 miss ratio.
        penalty = crossover_miss_penalty_ns("mru", "dram", 3.0, 0.15, 0.25)
        assert penalty == pytest.approx((250.0 - 136.0) / 0.10)

    def test_no_miss_gain_never_crosses(self):
        assert math.isinf(
            crossover_miss_penalty_ns("mru", "dram", 3.0, 0.25, 0.25)
        )

    def test_already_faster_crosses_at_zero(self):
        # One probe at 150ns base is still slower than direct (136),
        # so use partial on SRAM at 1 probe: 65 < 61? No: 65 > 61.
        # Construct via probes < 1 floor: base 65 vs direct 61 -> gap
        # positive. Verify the zero case with equal designs instead.
        assert crossover_miss_penalty_ns("direct", "dram", 1.0, 0.1, 0.2) == 0.0

    def test_crossover_decreases_with_bigger_ratio_gain(self):
        small = crossover_miss_penalty_ns("partial", "dram", 2.0, 0.20, 0.25)
        large = crossover_miss_penalty_ns("partial", "dram", 2.0, 0.10, 0.25)
        assert large < small

    def test_effective_orders_flip_beyond_crossover(self):
        probes, m_serial, m_direct = 2.5, 0.12, 0.22
        penalty = crossover_miss_penalty_ns(
            "partial", "dram", probes, m_serial, m_direct
        )
        below = penalty * 0.5
        above = penalty * 2.0
        serial_below = effective_access_ns("partial", "dram", probes, m_serial, below)
        direct_below = effective_access_ns("direct", "dram", 1.0, m_direct, below)
        serial_above = effective_access_ns("partial", "dram", probes, m_serial, above)
        direct_above = effective_access_ns("direct", "dram", 1.0, m_direct, above)
        assert serial_below > direct_below
        assert serial_above < direct_above
