"""Tests for the shared-bus contention model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.hardware.interconnect import (
    BusScenario,
    contention_gain,
    offered_utilization,
    queued_penalty_ns,
)


class TestUtilization:
    def test_proportional_to_everything(self):
        base = offered_utilization(4, 10.0, 0.1, 100.0)
        assert offered_utilization(8, 10.0, 0.1, 100.0) == 2 * base
        assert offered_utilization(4, 20.0, 0.1, 100.0) == 2 * base
        assert offered_utilization(4, 10.0, 0.2, 100.0) == 2 * base

    def test_units(self):
        # 1 proc, 1000 accesses/us = 1/ns, all misses, 0.5ns service
        # -> utilization 0.5.
        assert offered_utilization(1, 1000.0, 1.0, 0.5) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            offered_utilization(0, 1.0, 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            offered_utilization(1, 1.0, 1.5, 1.0)


class TestPenalty:
    def test_uncontended_is_service_plus_memory(self):
        assert queued_penalty_ns(100.0, 0.0, memory_ns=50.0) == 150.0

    def test_queueing_inflates(self):
        assert queued_penalty_ns(100.0, 0.5) == pytest.approx(200.0)
        assert queued_penalty_ns(100.0, 0.9) == pytest.approx(1000.0)

    def test_saturation_raises(self):
        with pytest.raises(ConfigurationError, match="saturated"):
            queued_penalty_ns(100.0, 1.0)

    def test_monotone_in_utilization(self):
        values = [queued_penalty_ns(100.0, u) for u in (0.0, 0.3, 0.6, 0.9)]
        assert values == sorted(values)


class TestScenario:
    def scenario(self):
        return BusScenario(
            processors=8, accesses_per_us=5.0, service_ns=80.0, memory_ns=100.0
        )

    def test_penalty_sensitive_to_miss_ratio(self):
        s = self.scenario()
        assert s.penalty_ns(0.05) < s.penalty_ns(0.15)

    def test_saturation_miss_ratio(self):
        s = self.scenario()
        threshold = s.saturation_miss_ratio()
        assert 0 < threshold < 1
        with pytest.raises(ConfigurationError):
            s.penalty_ns(threshold * 1.01)

    def test_unsaturable_bus(self):
        s = BusScenario(processors=1, accesses_per_us=0.1, service_ns=10.0)
        assert s.saturation_miss_ratio() > 1.0

    def test_zero_rate(self):
        s = BusScenario(processors=1, accesses_per_us=0.0, service_ns=10.0)
        assert math.isinf(s.saturation_miss_ratio())
        assert s.penalty_ns(1.0) == 10.0


class TestContentionGain:
    def test_contention_amplifies_associativity(self):
        # The paper's point: the miss-service advantage under
        # contention exceeds the plain miss-ratio advantage.
        s = BusScenario(processors=8, accesses_per_us=5.0, service_ns=80.0)
        direct, assoc = 0.20, 0.12
        gain = contention_gain(s, direct, assoc)
        assert gain > direct / assoc

    def test_no_contention_no_amplification(self):
        s = BusScenario(processors=1, accesses_per_us=0.001, service_ns=1.0)
        direct, assoc = 0.20, 0.12
        gain = contention_gain(s, direct, assoc)
        assert gain == pytest.approx(direct / assoc, rel=1e-3)

    def test_perfect_cache_infinite_gain(self):
        s = BusScenario(processors=2, accesses_per_us=1.0, service_ns=10.0)
        assert math.isinf(contention_gain(s, 0.2, 0.0))
