"""Tests that the cost model regenerates Table 2 exactly."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.costmodel import (
    TimingExpression,
    build_design,
    table2_designs,
)

#: The paper's Table 2 bottom half, transcribed.
PAPER_TABLE2 = {
    # (design, family): (access, cycle, total packages)
    ("direct", "dram"): ("136", "230", 18),
    ("traditional", "dram"): ("132", "190", 42),
    ("mru", "dram"): ("150+50x", "250+50(x+u)", 22),
    ("partial", "dram"): ("150+50y", "250+50y", 21),
    ("direct", "sram"): ("61", "85", 20),
    ("traditional", "sram"): ("84", "100", 37),
    ("mru", "sram"): ("65+55x", "75+55(x+u)", 25),
    ("partial", "sram"): ("65+55y", "75+55y", 24),
}


class TestTable2Exact:
    @pytest.mark.parametrize("key", sorted(PAPER_TABLE2))
    def test_access_time(self, key):
        cost = build_design(*key)
        assert str(cost.access_time) == PAPER_TABLE2[key][0]

    @pytest.mark.parametrize("key", sorted(PAPER_TABLE2))
    def test_cycle_time(self, key):
        cost = build_design(*key)
        assert str(cost.cycle_time) == PAPER_TABLE2[key][1]

    @pytest.mark.parametrize("key", sorted(PAPER_TABLE2))
    def test_package_count(self, key):
        cost = build_design(*key)
        assert cost.total_packages == PAPER_TABLE2[key][2]

    def test_all_designs_built(self):
        assert len(table2_designs()) == 8


class TestTimingExpression:
    def test_fixed(self):
        expr = TimingExpression(100.0)
        assert str(expr) == "100"
        assert expr.evaluate() == 100.0

    def test_symbolic(self):
        expr = TimingExpression(150.0, 50.0, "x")
        assert str(expr) == "150+50x"
        assert expr.evaluate(2.0) == 250.0

    def test_negative_probes_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingExpression(1.0, 1.0, "x").evaluate(-1)


class TestModelStructure:
    def test_unknown_design(self):
        with pytest.raises(ConfigurationError):
            build_design("pseudo", "dram")
        with pytest.raises(ConfigurationError):
            build_design("direct", "flash")

    def test_serial_designs_cheaper_than_traditional(self):
        # The paper's cost claim: MRU/partial need ~half the packages.
        for family in ("dram", "sram"):
            traditional = build_design("traditional", family).total_packages
            for design in ("mru", "partial"):
                assert build_design(design, family).total_packages < traditional

    def test_serial_access_slower_at_realistic_probe_counts(self):
        # The paper's speed caveat: at 2+ probes the serial designs are
        # slower than the traditional implementation.
        traditional = build_design("traditional", "dram")
        mru = build_design("mru", "dram")
        assert mru.access_time.evaluate(2.0) > traditional.access_time.evaluate()

    def test_serial_designs_use_direct_mapped_chips(self):
        for family in ("dram", "sram"):
            direct = build_design("direct", family)
            for design in ("mru", "partial"):
                assert build_design(design, family).chip == direct.chip
