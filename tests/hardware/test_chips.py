"""Tests for the memory-chip catalog."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.chips import DRAM_CHIPS, SRAM_CHIPS, ChipSpec


class TestCatalog:
    def test_dram_timings_match_paper(self):
        chip = DRAM_CHIPS["1Mx8"]
        assert chip.access_ns == 100
        assert chip.cycle_ns == 190
        assert chip.page_access_ns == 35
        assert chip.has_page_mode

    def test_fast_dram_has_no_page_mode(self):
        assert not DRAM_CHIPS["256Kx8"].has_page_mode

    def test_sram_timings(self):
        chip = SRAM_CHIPS["1Mx4"]
        assert chip.access_ns == chip.cycle_ns == 40
        assert not chip.has_page_mode


class TestChipsFor:
    def test_narrow_deep(self):
        # 1M 24-bit tags from 1Mx8 chips: 3 packages.
        assert DRAM_CHIPS["1Mx8"].chips_for(1 << 20, 24) == 3

    def test_wide_shallow(self):
        # 256K sets of 96 bits from 256Kx8 chips: 12 packages.
        assert DRAM_CHIPS["256Kx8"].chips_for(1 << 18, 96) == 12

    def test_mixed_width_banks(self):
        # 96 bits from (16, 8) banks: 6 x 16-bit.
        assert SRAM_CHIPS["256Kx(16,8)"].chips_for(1 << 18, 96) == 6
        # 24 bits: one 16 plus one 8.
        assert SRAM_CHIPS["256Kx(16,8)"].chips_for(1 << 18, 24) == 2

    def test_depth_multiplies(self):
        assert DRAM_CHIPS["256Kx8"].chips_for(1 << 20, 8) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DRAM_CHIPS["1Mx8"].chips_for(0, 8)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ChipSpec("bad", 0, (8,), 10, 20)
        with pytest.raises(ConfigurationError):
            ChipSpec("bad", 8, (8,), 10, 5)  # cycle < access
        with pytest.raises(ConfigurationError):
            ChipSpec("bad", 8, (), 10, 20)
