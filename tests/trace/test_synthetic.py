"""Tests for the ATUM-like multiprogrammed workload."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.reference import AccessKind
from repro.trace.synthetic import AtumWorkload, SegmentParameters, kind_mix


class TestStructure:
    def test_len_counts_references(self):
        wl = AtumWorkload(segments=3, references_per_segment=100)
        assert len(wl) == 300

    def test_flush_between_segments_only(self):
        wl = AtumWorkload(segments=3, references_per_segment=50)
        refs = list(wl)
        flushes = [i for i, r in enumerate(refs) if r.is_flush]
        assert len(flushes) == 2
        assert refs[0].kind is not AccessKind.FLUSH
        assert not refs[-1].is_flush
        # Exactly 50 references between boundaries.
        assert flushes[0] == 50
        assert flushes[1] == 101

    def test_single_segment_has_no_flush(self):
        wl = AtumWorkload(segments=1, references_per_segment=50)
        assert not any(r.is_flush for r in wl)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AtumWorkload(segments=0)
        with pytest.raises(ConfigurationError):
            AtumWorkload(references_per_segment=0)
        with pytest.raises(ConfigurationError):
            SegmentParameters(processes=0).validate()

    def test_segment_out_of_range(self):
        wl = AtumWorkload(segments=2, references_per_segment=10)
        with pytest.raises(ConfigurationError):
            list(wl.segment_references(2))


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = list(AtumWorkload(segments=2, references_per_segment=500, seed=7))
        b = list(AtumWorkload(segments=2, references_per_segment=500, seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(AtumWorkload(segments=1, references_per_segment=500, seed=7))
        b = list(AtumWorkload(segments=1, references_per_segment=500, seed=8))
        assert a != b

    def test_segments_differ_from_each_other(self):
        wl = AtumWorkload(segments=2, references_per_segment=500, seed=7)
        seg0 = list(wl.segment_references(0))
        seg1 = list(wl.segment_references(1))
        assert seg0 != seg1

    def test_iteration_is_repeatable(self):
        wl = AtumWorkload(segments=1, references_per_segment=300, seed=3)
        assert list(wl) == list(wl)


class TestScaling:
    def test_scaled_shortens_segments(self):
        wl = AtumWorkload(segments=4, references_per_segment=1000)
        half = wl.scaled(0.5)
        assert half.segments == 4
        assert half.references_per_segment == 500

    def test_scaled_validation(self):
        with pytest.raises(ConfigurationError):
            AtumWorkload().scaled(0.0)
        with pytest.raises(ConfigurationError):
            AtumWorkload().scaled(1.5)

    def test_with_params(self):
        wl = AtumWorkload(segments=2, references_per_segment=100)
        changed = wl.with_params(processes=3)
        assert changed.params.processes == 3
        assert changed.segments == 2


class TestCharacter:
    def test_kind_mix_plausible(self):
        wl = AtumWorkload(segments=1, references_per_segment=20_000, seed=1)
        mix = kind_mix(wl)
        assert 0.4 < mix[AccessKind.INSTRUCTION] < 0.65
        assert mix[AccessKind.STORE] < mix[AccessKind.LOAD]

    def test_multiple_processes_appear(self):
        from repro.trace.process_model import PROCESS_SPACE_BITS

        wl = AtumWorkload(segments=1, references_per_segment=50_000, seed=1)
        pids = {r.address >> PROCESS_SPACE_BITS for r in wl if not r.is_flush}
        assert len(pids) >= 4

    def test_addresses_fit_32_bits(self):
        # A multiprogrammed mix must fit one 32-bit space so 16-bit
        # tags are exact for the paper's L2 geometries.
        wl = AtumWorkload(segments=2, references_per_segment=5_000, seed=1)
        assert all(r.address < 2**32 for r in wl if not r.is_flush)
