"""Tests for the binary trace format."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.trace.binary import MAGIC, read_binary, write_binary
from repro.trace.reference import FLUSH, AccessKind, Reference

SAMPLE = [
    Reference(AccessKind.LOAD, 0x1000),
    Reference(AccessKind.STORE, 0xFFFF_FFFF_FF),
    Reference(AccessKind.INSTRUCTION, 0),
    FLUSH,
    Reference(AccessKind.LOAD, 7 << 26),
]


class TestRoundTrip:
    def test_memory_roundtrip(self):
        buffer = io.BytesIO()
        assert write_binary(SAMPLE, buffer) == len(SAMPLE)
        buffer.seek(0)
        assert list(read_binary(buffer)) == SAMPLE

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.rpt"
        write_binary(SAMPLE, path)
        assert list(read_binary(path)) == SAMPLE

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "trace.rpt.gz"
        write_binary(SAMPLE, path)
        assert list(read_binary(path)) == SAMPLE

    def test_binary_matches_din_semantics(self, tmp_path):
        from repro.trace.dinero import read_din, write_din
        from repro.trace.synthetic import AtumWorkload

        workload = list(
            AtumWorkload(segments=2, references_per_segment=500, seed=3)
        )
        bin_path = tmp_path / "t.rpt"
        din_path = tmp_path / "t.din"
        write_binary(workload, bin_path)
        write_din(workload, din_path)
        assert list(read_binary(bin_path)) == list(read_din(din_path))

    def test_smaller_than_din(self, tmp_path):
        from repro.trace.dinero import write_din
        from repro.trace.synthetic import AtumWorkload

        workload = list(
            AtumWorkload(segments=1, references_per_segment=2_000, seed=3)
        )
        bin_path = tmp_path / "t.rpt"
        din_path = tmp_path / "t.din"
        write_binary(workload, bin_path)
        write_din(workload, din_path)
        assert bin_path.stat().st_size < din_path.stat().st_size


class TestErrors:
    def test_oversized_address_rejected(self):
        with pytest.raises(TraceFormatError, match="64-bit"):
            write_binary(
                [Reference(AccessKind.LOAD, 1 << 64)], io.BytesIO()
            )

    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            list(read_binary(io.BytesIO(b"NOPE" + b"\x00" * 9)))

    def test_truncated_record(self):
        buffer = io.BytesIO(MAGIC + b"\x00\x01")
        with pytest.raises(TraceFormatError, match="truncated"):
            list(read_binary(buffer))

    def test_truncated_record_names_offset(self):
        import struct

        buffer = io.BytesIO(
            MAGIC + struct.pack("<BQ", 0, 0x10) + b"\x00\x01"
        )
        with pytest.raises(TraceFormatError, match="offset 13"):
            list(read_binary(buffer))

    def test_unknown_kind(self):
        import struct

        buffer = io.BytesIO(MAGIC + struct.pack("<BQ", 9, 0))
        with pytest.raises(
            TraceFormatError, match="unknown record kind 9 at offset 4"
        ):
            list(read_binary(buffer))

    def test_truncated_gzip_fatal(self, tmp_path):
        path = tmp_path / "trace.rpt.gz"
        write_binary(
            [Reference(AccessKind.LOAD, i) for i in range(500)], path
        )
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            list(read_binary(path))


class TestSkipMode:
    @pytest.fixture(autouse=True)
    def isolated_metrics(self):
        from repro.obs.metrics import MetricsRegistry, set_metrics

        self.metrics = MetricsRegistry()
        previous = set_metrics(self.metrics)
        yield
        set_metrics(previous)

    def skipped(self):
        counters = self.metrics.snapshot()["counters"]
        return counters.get("trace.binary.skipped_records", 0)

    def corrupted_buffer(self):
        import struct

        return io.BytesIO(
            MAGIC
            + struct.pack("<BQ", 0, 0x10)
            + struct.pack("<BQ", 9, 0x20)  # unknown kind byte
            + struct.pack("<BQ", 1, 0x30)
        )

    def test_unknown_kind_dropped_and_counted(self):
        refs = list(read_binary(self.corrupted_buffer(), errors="skip"))
        assert refs == [
            Reference(AccessKind.LOAD, 0x10),
            Reference(AccessKind.STORE, 0x30),
        ]
        assert self.skipped() == 1

    def test_clean_trace_skips_nothing(self):
        buffer = io.BytesIO()
        write_binary(SAMPLE, buffer)
        buffer.seek(0)
        assert list(read_binary(buffer, errors="skip")) == SAMPLE
        assert self.skipped() == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(TraceFormatError, match="errors mode"):
            list(read_binary(io.BytesIO(MAGIC), errors="ignore"))

    def test_truncation_fatal_even_in_skip_mode(self):
        buffer = io.BytesIO(MAGIC + b"\x00\x01")
        with pytest.raises(TraceFormatError, match="truncated"):
            list(read_binary(buffer, errors="skip"))
