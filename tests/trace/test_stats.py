"""Tests for trace statistics."""

import pytest

from repro.trace.reference import FLUSH, AccessKind, Reference
from repro.trace.stats import stack_distance_profile, summarize_trace


def load(addr):
    return Reference(AccessKind.LOAD, addr)


class TestSummarize:
    def test_counts(self):
        trace = [
            Reference(AccessKind.INSTRUCTION, 0),
            load(16),
            Reference(AccessKind.STORE, 32),
            FLUSH,
            load(48),
        ]
        stats = summarize_trace(trace, block_size=16)
        assert stats.references == 4
        assert stats.flushes == 1
        assert stats.unique_blocks == 4
        assert stats.instruction_fraction == 0.25
        assert stats.store_fraction == pytest.approx(1 / 3)

    def test_limit(self):
        trace = [load(i * 16) for i in range(100)]
        stats = summarize_trace(trace, limit=10)
        assert stats.references == 10
        assert stats.unique_blocks == 10

    def test_empty(self):
        stats = summarize_trace([])
        assert stats.references == 0
        assert stats.instruction_fraction == 0.0
        assert stats.store_fraction == 0.0


class TestStackProfile:
    def test_first_touches_in_overflow_bucket(self):
        trace = [load(i * 16) for i in range(5)]
        profile = stack_distance_profile(trace, block_size=16, max_tracked=8)
        assert profile[8] == 5
        assert sum(profile[:8]) == 0

    def test_immediate_rereference_is_distance_one(self):
        trace = [load(0), load(0), load(0)]
        profile = stack_distance_profile(trace, block_size=16, max_tracked=8)
        assert profile[0] == 2

    def test_distance_two(self):
        trace = [load(0), load(16), load(0)]
        profile = stack_distance_profile(trace, block_size=16, max_tracked=8)
        assert profile[1] == 1

    def test_flushes_skipped(self):
        trace = [load(0), FLUSH, load(0)]
        profile = stack_distance_profile(trace, block_size=16, max_tracked=4)
        # The flush does not clear the profiling stack; distance 1.
        assert profile[0] == 1
