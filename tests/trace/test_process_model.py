"""Tests for the per-process reference model."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.process_model import (
    PROCESS_SPACE_BITS,
    ProcessModel,
    ProcessParameters,
)
from repro.trace.reference import AccessKind


def refs(model, n):
    return [model.next_reference() for _ in range(n)]


class TestValidation:
    def test_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            ProcessParameters(instruction_fraction=1.5).validate()
        with pytest.raises(ConfigurationError):
            ProcessParameters(chase_fraction=-0.1).validate()

    def test_bad_structure(self):
        with pytest.raises(ConfigurationError):
            ProcessParameters(routines=0).validate()
        with pytest.raises(ConfigurationError):
            ProcessParameters(data_block=6).validate()
        with pytest.raises(ConfigurationError):
            ProcessParameters(allocation_skip_max=0).validate()
        with pytest.raises(ConfigurationError):
            ProcessParameters(placement_skew=0.5).validate()

    def test_negative_pid_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessModel(-1, seed=0)

    def test_shared_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessParameters(shared_fraction=1.5).validate()
        with pytest.raises(ConfigurationError):
            ProcessParameters(shared_blocks=0).validate()
        with pytest.raises(ConfigurationError):
            ProcessParameters(shared_theta=0).validate()


class TestSharedSegment:
    def test_shared_references_land_in_pid0_slice(self):
        from repro.trace.process_model import PROCESS_SPACE_BITS

        params = ProcessParameters(shared_fraction=0.2)
        model = ProcessModel(3, seed=4, params=params)
        shared = [
            addr for _, addr in refs(model, 10_000)
            if (addr >> PROCESS_SPACE_BITS) == 0
        ]
        assert shared

    def test_two_processes_share_blocks(self):
        params = ProcessParameters(shared_fraction=0.2)
        a = ProcessModel(1, seed=4, params=params)
        b = ProcessModel(2, seed=9, params=params)
        blocks_a = {addr // 16 for _, addr in refs(a, 8_000) if addr < (1 << 26)}
        blocks_b = {addr // 16 for _, addr in refs(b, 8_000) if addr < (1 << 26)}
        assert blocks_a & blocks_b

    def test_zero_fraction_never_touches_shared(self):
        model = ProcessModel(1, seed=4)  # default shared_fraction = 0
        assert all(addr >= (1 << 26) for _, addr in refs(model, 5_000))


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = ProcessModel(3, seed=11)
        b = ProcessModel(3, seed=11)
        assert refs(a, 500) == refs(b, 500)

    def test_different_pids_different_streams(self):
        a = ProcessModel(3, seed=11)
        b = ProcessModel(4, seed=11)
        assert refs(a, 200) != refs(b, 200)


class TestAddressSpace:
    def test_addresses_within_process_space(self):
        pid = 5
        model = ProcessModel(pid, seed=1)
        lo = pid << PROCESS_SPACE_BITS
        hi = (pid + 1) << PROCESS_SPACE_BITS
        for _, addr in refs(model, 3000):
            assert lo <= addr < hi

    def test_processes_never_share_addresses(self):
        a = {addr for _, addr in refs(ProcessModel(1, seed=1), 1000)}
        b = {addr for _, addr in refs(ProcessModel(2, seed=1), 1000)}
        assert not (a & b)

    def test_word_alignment(self):
        model = ProcessModel(1, seed=1)
        for _, addr in refs(model, 1000):
            assert addr % 4 == 0


class TestMix:
    def test_kind_fractions_near_parameters(self):
        params = ProcessParameters(instruction_fraction=0.5, store_fraction=0.2)
        model = ProcessModel(1, seed=9, params=params)
        sample = refs(model, 20_000)
        counts = {k: 0 for k in AccessKind}
        for kind, _ in sample:
            counts[kind] += 1
        ifrac = counts[AccessKind.INSTRUCTION] / len(sample)
        assert 0.45 < ifrac < 0.55
        data = counts[AccessKind.LOAD] + counts[AccessKind.STORE]
        sfrac = counts[AccessKind.STORE] / data
        assert 0.15 < sfrac < 0.25

    def test_instruction_stream_is_sequentialish(self):
        model = ProcessModel(1, seed=2)
        last = None
        sequential = total = 0
        for kind, addr in refs(model, 5000):
            if kind is AccessKind.INSTRUCTION:
                if last is not None:
                    total += 1
                    if addr == last + 4:
                        sequential += 1
                last = addr
            else:
                last = None
        assert sequential / total > 0.5

    def test_temporal_locality_of_data(self):
        model = ProcessModel(1, seed=2)
        blocks = [
            addr // 16
            for kind, addr in refs(model, 10_000)
            if kind is not AccessKind.INSTRUCTION
        ]
        assert len(set(blocks)) < len(blocks) * 0.5
