"""Tests for the repro-trace CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.cli import main


@pytest.fixture
def din_path(tmp_path):
    path = tmp_path / "t.din"
    assert main([
        "generate", "--out", str(path), "--segments", "2", "--refs", "300",
    ]) == 0
    return path


class TestGenerate:
    def test_generates_file(self, din_path):
        assert din_path.stat().st_size > 0

    def test_gzip_output(self, tmp_path):
        path = tmp_path / "t.rpt.gz"
        assert main(["generate", "--out", str(path), "--refs", "100",
                     "--segments", "1"]) == 0
        from repro.trace.binary import read_binary

        assert sum(1 for _ in read_binary(path)) == 100

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ConfigurationError):
            main(["generate", "--out", str(tmp_path / "t.xyz")])


class TestConvert:
    def test_din_to_binary_roundtrip(self, din_path, tmp_path, capsys):
        out = tmp_path / "t.rpt"
        assert main(["convert", str(din_path), str(out)]) == 0
        from repro.trace.binary import read_binary
        from repro.trace.dinero import read_din

        assert list(read_binary(out)) == list(read_din(din_path))


class TestStats:
    def test_summary_printed(self, din_path, capsys):
        assert main(["stats", str(din_path), "--block", "32"]) == 0
        out = capsys.readouterr().out
        assert "references           : 600" in out
        assert "flushes              : 1" in out

    def test_limit(self, din_path, capsys):
        assert main(["stats", str(din_path), "--limit", "50"]) == 0
        assert "references           : 50" in capsys.readouterr().out


class TestHead:
    def test_prints_records(self, din_path, capsys):
        assert main(["head", str(din_path), "-n", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        assert any("0x" in line for line in lines)
