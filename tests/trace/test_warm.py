"""Tests for the warm (no-flush) workload variant."""

from repro.trace.synthetic import AtumWorkload


class TestWarmedWorkload:
    def test_warmed_removes_flushes(self):
        wl = AtumWorkload(segments=3, references_per_segment=200, seed=2)
        warm = wl.warmed()
        assert sum(1 for r in wl if r.is_flush) == 2
        assert sum(1 for r in warm if r.is_flush) == 0

    def test_same_references_otherwise(self):
        wl = AtumWorkload(segments=3, references_per_segment=200, seed=2)
        warm = wl.warmed()
        cold_refs = [r for r in wl if not r.is_flush]
        warm_refs = list(warm)
        assert cold_refs == warm_refs

    def test_len_unchanged(self):
        wl = AtumWorkload(segments=3, references_per_segment=200, seed=2)
        assert len(wl.warmed()) == len(wl)

    def test_scaled_preserves_cold_start_flag(self):
        warm = AtumWorkload(segments=2, references_per_segment=100).warmed()
        assert warm.scaled(0.5).cold_start is False
        assert warm.with_params(processes=2).cold_start is False

    def test_kernel_layout_shared_across_segments(self):
        # The OS pseudo-process keeps one layout, so segments share
        # kernel blocks — the substrate of warm-cache benefits.
        from repro.trace.process_model import PROCESS_SPACE_BITS

        # Seed chosen so the scheduler gives the kernel a quantum in
        # both (short) segments.
        wl = AtumWorkload(segments=2, references_per_segment=60_000, seed=1)
        kernel_pid = wl.params.processes + 1
        kernel_blocks = []
        for segment in range(2):
            blocks = {
                r.address // 32
                for r in wl.segment_references(segment)
                if (r.address >> PROCESS_SPACE_BITS) == kernel_pid
            }
            kernel_blocks.append(blocks)
        assert kernel_blocks[0] & kernel_blocks[1]
