"""Tests for trace filtering and composition utilities."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.filters import (
    align_to_blocks,
    filter_address_range,
    filter_kinds,
    insert_flushes,
    interleave,
    skip,
    take,
)
from repro.trace.reference import FLUSH, AccessKind, Reference


def load(addr):
    return Reference(AccessKind.LOAD, addr)


def ifetch(addr):
    return Reference(AccessKind.INSTRUCTION, addr)


TRACE = [load(0), ifetch(4), FLUSH, load(8), ifetch(12), load(16)]


class TestTakeSkip:
    def test_take_counts_references_not_flushes(self):
        result = list(take(TRACE, 3))
        refs = [r for r in result if not r.is_flush]
        assert len(refs) == 3
        assert FLUSH in result

    def test_take_zero(self):
        assert list(take(TRACE, 0)) == []

    def test_skip(self):
        result = list(skip(TRACE, 2))
        assert [r.address for r in result if not r.is_flush] == [8, 12, 16]
        assert FLUSH in result

    def test_take_skip_partition(self):
        head = [r for r in take(TRACE, 2) if not r.is_flush]
        tail = [r for r in skip(TRACE, 2) if not r.is_flush]
        whole = [r for r in TRACE if not r.is_flush]
        assert head + tail == whole

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            list(take(TRACE, -1))
        with pytest.raises(ConfigurationError):
            list(skip(TRACE, -1))


class TestFilters:
    def test_filter_kinds(self):
        result = list(filter_kinds(TRACE, [AccessKind.INSTRUCTION]))
        assert [r.address for r in result if not r.is_flush] == [4, 12]
        assert FLUSH in result

    def test_filter_address_range(self):
        result = list(filter_address_range(TRACE, 4, 13))
        assert [r.address for r in result if not r.is_flush] == [4, 8, 12]

    def test_filter_address_validation(self):
        with pytest.raises(ConfigurationError):
            list(filter_address_range(TRACE, 10, 5))

    def test_align_to_blocks(self):
        result = list(align_to_blocks([load(0x47), load(0x10)], 16))
        assert [r.address for r in result] == [0x40, 0x10]

    def test_align_preserves_kind_and_flush(self):
        result = list(align_to_blocks([ifetch(5), FLUSH], 16))
        assert result[0].kind is AccessKind.INSTRUCTION
        assert result[1].is_flush

    def test_align_validation(self):
        with pytest.raises(ConfigurationError):
            list(align_to_blocks(TRACE, 24))


class TestInterleave:
    def test_round_robin(self):
        a = [load(0), load(1), load(2)]
        b = [load(100), load(101), load(102)]
        result = [r.address for r in interleave([a, b], quantum=2)]
        assert result == [0, 1, 100, 101, 2, 102]

    def test_uneven_lengths(self):
        a = [load(0)]
        b = [load(100), load(101), load(102)]
        result = [r.address for r in interleave([a, b], quantum=1)]
        assert result == [0, 100, 101, 102]

    def test_input_flushes_dropped(self):
        a = [load(0), FLUSH, load(1)]
        result = list(interleave([a], quantum=10))
        assert all(not r.is_flush for r in result)
        assert len(result) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            list(interleave([[]], quantum=0))


class TestInsertFlushes:
    def test_inserts_at_interval(self):
        trace = [load(i) for i in range(5)]
        result = list(insert_flushes(trace, every=2))
        kinds = ["F" if r.is_flush else "r" for r in result]
        assert kinds == ["r", "r", "F", "r", "r", "F", "r"]

    def test_existing_flushes_pass_through(self):
        result = list(insert_flushes([load(0), FLUSH, load(1)], every=10))
        assert sum(1 for r in result if r.is_flush) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            list(insert_flushes(TRACE, every=0))
