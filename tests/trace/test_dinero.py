"""Tests for din trace I/O."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.trace.dinero import read_din, write_din
from repro.trace.reference import FLUSH, AccessKind, Reference


SAMPLE = [
    Reference(AccessKind.LOAD, 0x1000),
    Reference(AccessKind.STORE, 0x2004),
    Reference(AccessKind.INSTRUCTION, 0x400),
    FLUSH,
    Reference(AccessKind.LOAD, 0xDEADBEEF),
]


class TestRoundTrip:
    def test_memory_roundtrip(self):
        buffer = io.StringIO()
        count = write_din(SAMPLE, buffer)
        assert count == len(SAMPLE)
        buffer.seek(0)
        assert list(read_din(buffer)) == SAMPLE

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.din"
        write_din(SAMPLE, path)
        assert list(read_din(path)) == SAMPLE

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "trace.din.gz"
        write_din(SAMPLE, path)
        assert path.stat().st_size > 0
        assert list(read_din(path)) == SAMPLE

    def test_format_content(self):
        buffer = io.StringIO()
        write_din([Reference(AccessKind.STORE, 0xAB)], buffer)
        assert buffer.getvalue() == "1 ab\n"


class TestParsing:
    def parse(self, text):
        return list(read_din(io.StringIO(text)))

    def test_comments_and_blank_lines_skipped(self):
        refs = self.parse("# header\n\n0 10\n")
        assert refs == [Reference(AccessKind.LOAD, 0x10)]

    def test_extra_columns_tolerated(self):
        # Classic din files sometimes carry extra fields.
        refs = self.parse("2 400 0\n")
        assert refs == [Reference(AccessKind.INSTRUCTION, 0x400)]

    def test_flush_marker(self):
        assert self.parse("4 0\n") == [FLUSH]

    def test_unknown_type_rejected(self):
        with pytest.raises(TraceFormatError):
            self.parse("9 10\n")

    def test_missing_address_rejected(self):
        with pytest.raises(TraceFormatError):
            self.parse("0\n")

    def test_bad_hex_rejected(self):
        with pytest.raises(TraceFormatError):
            self.parse("0 xyzzy\n")

    def test_error_mentions_line_number(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            self.parse("0 10\nbogus line here\n")

    def test_lazy_parsing(self):
        # read_din is a generator: errors surface at iteration time.
        iterator = read_din(io.StringIO("0 10\n9 10\n"))
        assert next(iterator) == Reference(AccessKind.LOAD, 0x10)
        with pytest.raises(TraceFormatError):
            next(iterator)

    def test_negative_address_rejected(self):
        with pytest.raises(TraceFormatError, match="negative"):
            self.parse("0 -10\n")


class TestSkipMode:
    @pytest.fixture(autouse=True)
    def isolated_metrics(self):
        from repro.obs.metrics import MetricsRegistry, set_metrics

        self.metrics = MetricsRegistry()
        previous = set_metrics(self.metrics)
        yield
        set_metrics(previous)

    def skipped(self):
        counters = self.metrics.snapshot()["counters"]
        return counters.get("trace.din.skipped_records", 0)

    def test_bad_records_dropped_and_counted(self):
        text = "0 10\n9 20\n1 zzz\n0 -4\n2 30\n"
        refs = list(read_din(io.StringIO(text), errors="skip"))
        assert refs == [
            Reference(AccessKind.LOAD, 0x10),
            Reference(AccessKind.INSTRUCTION, 0x30),
        ]
        assert self.skipped() == 3

    def test_clean_trace_skips_nothing(self):
        refs = list(read_din(io.StringIO("0 10\n4 0\n"), errors="skip"))
        assert refs == [Reference(AccessKind.LOAD, 0x10), FLUSH]
        assert self.skipped() == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(TraceFormatError, match="errors mode"):
            list(read_din(io.StringIO(""), errors="ignore"))

    def test_truncated_gzip_fatal_even_in_skip_mode(self, tmp_path):
        path = tmp_path / "trace.din.gz"
        write_din(
            [Reference(AccessKind.LOAD, i) for i in range(500)], path
        )
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError, match="unreadable"):
            list(read_din(path, errors="skip"))
