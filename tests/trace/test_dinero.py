"""Tests for din trace I/O."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.trace.dinero import read_din, write_din
from repro.trace.reference import FLUSH, AccessKind, Reference


SAMPLE = [
    Reference(AccessKind.LOAD, 0x1000),
    Reference(AccessKind.STORE, 0x2004),
    Reference(AccessKind.INSTRUCTION, 0x400),
    FLUSH,
    Reference(AccessKind.LOAD, 0xDEADBEEF),
]


class TestRoundTrip:
    def test_memory_roundtrip(self):
        buffer = io.StringIO()
        count = write_din(SAMPLE, buffer)
        assert count == len(SAMPLE)
        buffer.seek(0)
        assert list(read_din(buffer)) == SAMPLE

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.din"
        write_din(SAMPLE, path)
        assert list(read_din(path)) == SAMPLE

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "trace.din.gz"
        write_din(SAMPLE, path)
        assert path.stat().st_size > 0
        assert list(read_din(path)) == SAMPLE

    def test_format_content(self):
        buffer = io.StringIO()
        write_din([Reference(AccessKind.STORE, 0xAB)], buffer)
        assert buffer.getvalue() == "1 ab\n"


class TestParsing:
    def parse(self, text):
        return list(read_din(io.StringIO(text)))

    def test_comments_and_blank_lines_skipped(self):
        refs = self.parse("# header\n\n0 10\n")
        assert refs == [Reference(AccessKind.LOAD, 0x10)]

    def test_extra_columns_tolerated(self):
        # Classic din files sometimes carry extra fields.
        refs = self.parse("2 400 0\n")
        assert refs == [Reference(AccessKind.INSTRUCTION, 0x400)]

    def test_flush_marker(self):
        assert self.parse("4 0\n") == [FLUSH]

    def test_unknown_type_rejected(self):
        with pytest.raises(TraceFormatError):
            self.parse("9 10\n")

    def test_missing_address_rejected(self):
        with pytest.raises(TraceFormatError):
            self.parse("0\n")

    def test_bad_hex_rejected(self):
        with pytest.raises(TraceFormatError):
            self.parse("0 xyzzy\n")

    def test_error_mentions_line_number(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            self.parse("0 10\nbogus line here\n")

    def test_lazy_parsing(self):
        # read_din is a generator: errors surface at iteration time.
        iterator = read_din(io.StringIO("0 10\n9 10\n"))
        assert next(iterator) == Reference(AccessKind.LOAD, 0x10)
        with pytest.raises(TraceFormatError):
            next(iterator)
