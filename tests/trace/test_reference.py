"""Tests for reference types."""

import pytest

from repro.trace.reference import FLUSH, AccessKind, Reference


class TestReference:
    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Reference(AccessKind.LOAD, -1)

    def test_flush_sentinel(self):
        assert FLUSH.is_flush
        assert not Reference(AccessKind.LOAD, 0).is_flush

    def test_frozen(self):
        ref = Reference(AccessKind.LOAD, 4)
        with pytest.raises(Exception):
            ref.address = 8

    def test_equality(self):
        assert Reference(AccessKind.LOAD, 4) == Reference(AccessKind.LOAD, 4)
        assert Reference(AccessKind.LOAD, 4) != Reference(AccessKind.STORE, 4)
