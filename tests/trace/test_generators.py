"""Tests for the simple trace generators."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.generators import (
    ZipfStackSampler,
    loop_trace,
    random_trace,
    sequential_trace,
    stack_distance_trace,
)
from repro.trace.reference import AccessKind

import random


class TestSequential:
    def test_addresses_march_by_stride(self):
        refs = list(sequential_trace(0x100, 4, stride=8))
        assert [r.address for r in refs] == [0x100, 0x108, 0x110, 0x118]

    def test_kind(self):
        refs = list(sequential_trace(0, 2, kind=AccessKind.INSTRUCTION))
        assert all(r.kind is AccessKind.INSTRUCTION for r in refs)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            list(sequential_trace(0, -1))


class TestLoop:
    def test_repeats_working_set(self):
        refs = list(loop_trace([0, 16, 32], iterations=2))
        assert [r.address for r in refs] == [0, 16, 32, 0, 16, 32]

    def test_zero_iterations(self):
        assert list(loop_trace([0], 0)) == []


class TestRandom:
    def test_deterministic_by_seed(self):
        a = [r.address for r in random_trace(50, 4096, seed=3)]
        b = [r.address for r in random_trace(50, 4096, seed=3)]
        assert a == b

    def test_respects_range_and_alignment(self):
        for ref in random_trace(200, 4096, seed=1, alignment=8):
            assert 0 <= ref.address < 4096
            assert ref.address % 8 == 0

    def test_bad_range(self):
        with pytest.raises(ConfigurationError):
            list(random_trace(1, 0))


class TestZipfSampler:
    def test_sample_range(self):
        sampler = ZipfStackSampler(100, 1.5, random.Random(0))
        for _ in range(500):
            assert 1 <= sampler.sample() <= 100

    def test_small_distances_dominate(self):
        sampler = ZipfStackSampler(1000, 1.5, random.Random(0))
        samples = [sampler.sample() for _ in range(2000)]
        small = sum(1 for s in samples if s <= 10)
        assert small > len(samples) * 0.5

    def test_higher_theta_more_concentrated(self):
        flat = ZipfStackSampler(1000, 1.1, random.Random(0))
        steep = ZipfStackSampler(1000, 2.5, random.Random(0))
        flat_mean = sum(flat.sample() for _ in range(2000)) / 2000
        steep_mean = sum(steep.sample() for _ in range(2000)) / 2000
        assert steep_mean < flat_mean

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfStackSampler(0, 1.5, random.Random(0))
        with pytest.raises(ConfigurationError):
            ZipfStackSampler(10, 0.0, random.Random(0))


class TestStackDistanceTrace:
    def test_deterministic(self):
        a = [r.address for r in stack_distance_trace(200, seed=5)]
        b = [r.address for r in stack_distance_trace(200, seed=5)]
        assert a == b

    def test_exhibits_temporal_locality(self):
        refs = list(stack_distance_trace(2000, block_size=16, seed=1))
        blocks = [r.address // 16 for r in refs]
        # Re-referenced blocks should be common.
        assert len(set(blocks)) < len(blocks) * 0.5

    def test_word_aligned(self):
        for ref in stack_distance_trace(100, seed=2):
            assert ref.address % 4 == 0
