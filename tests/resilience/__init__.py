"""Tests for the fault-tolerant sweep execution layer."""
