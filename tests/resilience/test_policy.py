"""Retry/failure policies: validation, determinism, failure records."""

import pytest

from repro.errors import (
    ConfigurationError,
    SweepPointError,
    SweepTimeoutError,
)
from repro.resilience.policy import (
    FAILURE_KINDS,
    FailurePolicy,
    PointFailure,
    RetryPolicy,
    SweepOutcome,
)


class TestFailurePolicy:
    def test_coerce_accepts_enum(self):
        assert FailurePolicy.coerce(FailurePolicy.COLLECT) is (
            FailurePolicy.COLLECT
        )

    def test_coerce_accepts_string(self):
        assert FailurePolicy.coerce("retry_then_collect") is (
            FailurePolicy.RETRY_THEN_COLLECT
        )

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="failure policy"):
            FailurePolicy.coerce("explode")


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"max_delay": -1.0},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"timeout": 0.0},
            {"timeout": -5.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay("key", 0)


class TestBackoffDeterminism:
    def test_same_seed_same_schedule(self):
        a = RetryPolicy(max_attempts=5, seed=42)
        b = RetryPolicy(max_attempts=5, seed=42)
        assert a.schedule(3) == b.schedule(3)

    def test_different_seeds_differ(self):
        a = RetryPolicy(max_attempts=5, seed=1)
        b = RetryPolicy(max_attempts=5, seed=2)
        assert a.schedule(3) != b.schedule(3)

    def test_different_keys_decorrelate(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.schedule(0) != policy.schedule(1)

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=1.0, multiplier=2.0, jitter=0.0
        )
        assert policy.schedule("any") == [1.0, 2.0, 4.0]

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=10.0,
            max_delay=5.0, jitter=0.0,
        )
        assert policy.schedule("k") == [1.0, 5.0, 5.0, 5.0, 5.0]

    def test_jitter_bounded(self):
        policy = RetryPolicy(
            max_attempts=2, base_delay=1.0, jitter=0.5
        )
        for key in range(50):
            delay = policy.delay(key, 1)
            assert 1.0 <= delay < 1.5

    def test_schedule_length(self):
        assert len(RetryPolicy(max_attempts=1).schedule("k")) == 0
        assert len(RetryPolicy(max_attempts=4).schedule("k")) == 3


class TestPointFailure:
    def make(self, kind="raise"):
        return PointFailure(
            key=2,
            kind=kind,
            error_type="SimulationError",
            message="boom",
            traceback="Traceback ...",
            attempts=3,
            worker_pid=1234,
        )

    def test_kinds_registry(self):
        assert set(FAILURE_KINDS) == {"raise", "timeout", "crash"}

    def test_to_dict_has_summary_line(self):
        data = self.make().to_dict()
        assert data["key"] == 2
        assert data["attempts"] == 3
        assert "SimulationError" in data["error"]
        assert "3 attempt" in data["error"]

    def test_to_exception_carries_failure(self):
        failure = self.make()
        exc = failure.to_exception()
        assert isinstance(exc, SweepPointError)
        assert exc.failure is failure

    def test_timeout_kind_maps_to_timeout_error(self):
        exc = self.make(kind="timeout").to_exception()
        assert isinstance(exc, SweepTimeoutError)

    def test_exception_survives_pickling(self):
        import pickle

        exc = self.make().to_exception()
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, SweepPointError)
        assert clone.failure.error_type == "SimulationError"


class TestSweepOutcome:
    def test_ok_and_completed(self):
        outcome = SweepOutcome(results=["a", None, "c"])
        assert outcome.completed() == 2
        assert outcome.ok  # no failure records yet

    def test_raise_if_failed(self):
        failure = PointFailure(
            key=1, kind="raise", error_type="ValueError", message="x"
        )
        outcome = SweepOutcome(results=[None], failures=[failure])
        assert not outcome.ok
        with pytest.raises(SweepPointError):
            outcome.raise_if_failed()

    def test_raise_if_failed_returns_self_when_ok(self):
        outcome = SweepOutcome(results=["a"])
        assert outcome.raise_if_failed() is outcome
