"""Crash-safe checkpoint store: durability, torn tails, identity checks."""

import json

import pytest

from repro.errors import CheckpointError
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    SweepCheckpoint,
    point_signature,
)
from repro.storage.framing import parse_framed_line


class TestPointSignature:
    def test_deterministic(self):
        point = {"l1": "4K-16", "l2": "64K-32", "associativity": 4}
        assert point_signature(point) == point_signature(dict(point))

    def test_field_order_irrelevant(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert point_signature(a) == point_signature(b)

    def test_distinct_points_distinct_signatures(self):
        assert point_signature({"a": 1}) != point_signature({"a": 2})

    def test_accepts_dataclasses(self):
        from repro.experiments.runner import SweepPoint

        sig = point_signature(SweepPoint("4K-16", "64K-32", 4))
        assert sig == point_signature(SweepPoint("4K-16", "64K-32", 4))
        assert sig != point_signature(SweepPoint("4K-16", "64K-32", 2))


class TestRoundTrip:
    def test_fresh_file_loads_empty(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "s.ckpt", config_hash="h")
        assert checkpoint.load() == {}
        assert not checkpoint.exists()

    def test_record_then_load(self, tmp_path):
        path = tmp_path / "s.ckpt"
        with SweepCheckpoint(path, config_hash="h") as checkpoint:
            checkpoint.record("sig-a", {"misses": 10})
            checkpoint.record("sig-b", {"misses": 20})
        restored = SweepCheckpoint(path, config_hash="h").load()
        assert restored == {"sig-a": {"misses": 10}, "sig-b": {"misses": 20}}

    def test_floats_round_trip_exactly(self, tmp_path):
        path = tmp_path / "s.ckpt"
        value = 0.1 + 0.2  # not representable exactly in decimal
        with SweepCheckpoint(path, config_hash="h") as checkpoint:
            checkpoint.record("sig", {"ratio": value})
        restored = SweepCheckpoint(path, config_hash="h").load()
        assert restored["sig"]["ratio"] == value

    def test_results_property_is_a_copy(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "s.ckpt", config_hash="h")
        checkpoint.record("sig", 1)
        snapshot = checkpoint.results
        snapshot["other"] = 2
        assert "other" not in checkpoint.results
        checkpoint.close()


class TestDurability:
    def seed_file(self, path):
        with SweepCheckpoint(path, config_hash="h") as checkpoint:
            checkpoint.record("sig-a", 1)
            checkpoint.record("sig-b", 2)

    def test_torn_tail_dropped_and_compacted(self, tmp_path):
        path = tmp_path / "s.ckpt"
        self.seed_file(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "result", "signature": "sig-c", "re')
        restored = SweepCheckpoint(path, config_hash="h").load()
        assert restored == {"sig-a": 1, "sig-b": 2}
        # The torn line was compacted away, not left to accumulate,
        # and every surviving line verifies its CRC32 frame.
        lines = path.read_text().splitlines()
        assert all(json.loads(parse_framed_line(line)) for line in lines)

    def test_corrupt_interior_record_is_fatal(self, tmp_path):
        path = tmp_path / "s.ckpt"
        self.seed_file(path)
        lines = path.read_text().splitlines()
        lines[1] = "garbage {"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="line 2"):
            SweepCheckpoint(path, config_hash="h").load()

    def test_append_resumes_after_reload(self, tmp_path):
        path = tmp_path / "s.ckpt"
        self.seed_file(path)
        with SweepCheckpoint(path, config_hash="h") as checkpoint:
            checkpoint.record("sig-c", 3)
        restored = SweepCheckpoint(path, config_hash="h").load()
        assert set(restored) == {"sig-a", "sig-b", "sig-c"}


class TestIdentityChecks:
    def test_config_hash_mismatch_refused(self, tmp_path):
        path = tmp_path / "s.ckpt"
        with SweepCheckpoint(path, config_hash="aaa") as checkpoint:
            checkpoint.record("sig", 1)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            SweepCheckpoint(path, config_hash="bbb").load()

    def test_none_hash_skips_the_check(self, tmp_path):
        path = tmp_path / "s.ckpt"
        with SweepCheckpoint(path, config_hash="aaa") as checkpoint:
            checkpoint.record("sig", 1)
        assert SweepCheckpoint(path).load() == {"sig": 1}

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "s.ckpt"
        path.write_text(
            '{"kind": "result", "signature": "sig", "result": 1}\n'
        )
        with pytest.raises(CheckpointError, match="header"):
            SweepCheckpoint(path, config_hash="h").load()

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "s.ckpt"
        header = {
            "kind": "header",
            "schema": CHECKPOINT_SCHEMA_VERSION + 1,
            "config_hash": "h",
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(CheckpointError, match="schema"):
            SweepCheckpoint(path, config_hash="h").load()

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = tmp_path / "s.ckpt"
        with SweepCheckpoint(path, config_hash="h") as checkpoint:
            checkpoint.record("sig", 1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "mystery"}\n')
        with pytest.raises(CheckpointError, match="record kind"):
            SweepCheckpoint(path, config_hash="h").load()


class TestAdvisoryLock:
    def test_second_writer_fails_fast(self, tmp_path):
        path = tmp_path / "s.ckpt"
        first = SweepCheckpoint(path, config_hash="h")
        first.record("sig-1", 1)
        second = SweepCheckpoint(path, config_hash="h")
        with pytest.raises(CheckpointError, match="locked by another"):
            second.record("sig-2", 2)
        first.close()

    def test_close_releases_the_lock(self, tmp_path):
        path = tmp_path / "s.ckpt"
        first = SweepCheckpoint(path, config_hash="h")
        first.record("sig-1", 1)
        first.close()
        assert not first.lock_path.exists()
        second = SweepCheckpoint(path, config_hash="h")
        second.load()
        second.record("sig-2", 2)
        second.close()
        assert SweepCheckpoint(path).load() == {"sig-1": 1, "sig-2": 2}

    def test_stale_lock_from_dead_pid_is_stolen(self, tmp_path):
        path = tmp_path / "s.ckpt"
        checkpoint = SweepCheckpoint(path, config_hash="h")
        # Forge a lockfile naming a PID that cannot exist anymore.
        checkpoint.lock_path.write_text("999999999\n")
        checkpoint.record("sig", 1)  # steals the stale lock
        checkpoint.close()
        assert SweepCheckpoint(path).load() == {"sig": 1}

    def test_unreadable_lockfile_treated_as_stale(self, tmp_path):
        path = tmp_path / "s.ckpt"
        checkpoint = SweepCheckpoint(path, config_hash="h")
        checkpoint.lock_path.write_text("not-a-pid\n")
        checkpoint.record("sig", 1)
        checkpoint.close()

    def test_live_holder_in_another_process_blocks(self, tmp_path):
        """Two *processes* cannot append to one checkpoint concurrently."""
        import subprocess
        import sys
        from pathlib import Path

        path = tmp_path / "s.ckpt"
        script = (
            "import sys\n"
            "from repro.resilience.checkpoint import SweepCheckpoint\n"
            "checkpoint = SweepCheckpoint(sys.argv[1], config_hash='h')\n"
            "checkpoint.record('sig-child', 1)\n"
            "print('LOCKED', flush=True)\n"
            "sys.stdin.readline()\n"  # hold the lock until told to stop
            "checkpoint.close()\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(path)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "LOCKED"
            mine = SweepCheckpoint(path, config_hash="h")
            mine.load()
            with pytest.raises(CheckpointError, match="locked by another"):
                mine.record("sig-parent", 2)
        finally:
            child.communicate(input="done\n", timeout=30)
        assert child.returncode == 0
        # With the child gone the lock is free again.
        after = SweepCheckpoint(path, config_hash="h")
        after.load()
        after.record("sig-parent", 2)
        after.close()
        assert SweepCheckpoint(path).load() == {
            "sig-child": 1,
            "sig-parent": 2,
        }


class TestLockTakeoverIdentity:
    """The stale-steal check must verify the *process*, not the PID."""

    def test_start_ticks_readable_for_self(self):
        import os

        from repro.resilience.checkpoint import process_start_ticks

        ticks = process_start_ticks(os.getpid())
        assert isinstance(ticks, int) and ticks > 0

    def test_recycled_pid_is_recognized_as_stale(self, tmp_path):
        # A lockfile naming a PID that is alive *now* but whose
        # recorded start time belongs to an earlier incarnation: the
        # original holder is gone, the PID was recycled. Forge it with
        # our own live PID and impossible start ticks.
        import os

        path = tmp_path / "s.ckpt"
        checkpoint = SweepCheckpoint(path, config_hash="h")
        checkpoint.lock_path.write_text(f"{os.getpid()} 1\n")
        checkpoint.record("sig", 1)  # steals: identity refutes liveness
        checkpoint.close()
        assert SweepCheckpoint(path).load() == {"sig": 1}

    def test_legacy_lock_with_live_pid_is_honored(self, tmp_path):
        # A ticks-less (legacy) lockfile naming a live PID carries no
        # identity to refute liveness — never steal blind.
        import os

        path = tmp_path / "s.ckpt"
        checkpoint = SweepCheckpoint(path, config_hash="h")
        checkpoint.lock_path.write_text(f"{os.getpid()}\n")
        with pytest.raises(CheckpointError, match="locked by another"):
            checkpoint.record("sig", 1)

    def test_successor_steals_from_killed_holder(self, tmp_path):
        """Two-process regression for the failover takeover path.

        The child acquires the lock and is SIGKILLed mid-hold (the
        shard-crash case) — the lockfile survives with the dead
        holder's identity. The parent, playing the ring successor,
        must verify the holder is gone and take over the append.
        """
        import signal
        import subprocess
        import sys
        from pathlib import Path

        path = tmp_path / "s.ckpt"
        script = (
            "import sys\n"
            "from repro.resilience.checkpoint import SweepCheckpoint\n"
            "checkpoint = SweepCheckpoint(sys.argv[1], config_hash='h')\n"
            "checkpoint.record('sig-child', 1)\n"
            "print('LOCKED', flush=True)\n"
            "sys.stdin.readline()\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(path)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            text=True,
        )
        assert child.stdout.readline().strip() == "LOCKED"
        lock_body = SweepCheckpoint(path).lock_path.read_text().split()
        assert lock_body[0] == str(child.pid)
        assert len(lock_body) == 2  # pid + start ticks
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
        assert SweepCheckpoint(path).lock_path.exists()  # left behind
        successor = SweepCheckpoint(path, config_hash="h")
        successor.load()
        successor.record("sig-successor", 2)  # steals the dead lock
        successor.close()
        assert SweepCheckpoint(path).load() == {
            "sig-child": 1,
            "sig-successor": 2,
        }


class TestCrashMidAppend:
    """Two-process power-failure regression: the full recovery story.

    A child process appends records under an injected torn write
    (``REPRO_IO_FAULTS``, inherited through the environment) and dies
    mid-append, exactly as a machine losing power. The parent then
    plays the operator: ``repro-fsck --repair`` heals the torn tail
    and removes the dead holder's lock, the surviving prefix loads
    exactly, and a resumed writer completes the sweep — zero silent
    data loss, end to end.
    """

    def test_torn_append_fsck_resume(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        from repro.storage.fsck import scan_directory

        path = tmp_path / "s.ckpt"
        script = (
            "import sys\n"
            "from repro.resilience.checkpoint import SweepCheckpoint\n"
            "checkpoint = SweepCheckpoint(sys.argv[1], config_hash='h')\n"
            "checkpoint.record('sig-a', {'misses': 1})\n"
            "checkpoint.record('sig-b', {'misses': 2})\n"
            "checkpoint.record('sig-c', {'misses': 3})\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        child = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True,
            env={
                "PYTHONPATH": src,
                "PATH": "/usr/bin:/bin",
                # nth=1 is the header's atomic temp write; nth=2 the
                # first append; the crash tears the second append.
                "REPRO_IO_FAULTS": "torn@write:path=.ckpt,nth=3",
            },
            text=True,
            timeout=60,
        )
        assert child.returncode != 0
        assert "InjectedCrashError" in child.stderr
        # Power-failure debris: a torn tail and the dead holder's lock.
        assert path.exists()
        lock = SweepCheckpoint(path).lock_path
        assert lock.exists()

        report = scan_directory(tmp_path, repair=True)
        assert report["ok"] is True
        problems = {f["problem"] for f in report["findings"]}
        assert "torn-tail" in problems
        assert "stale-lock" in problems
        assert not lock.exists()

        # The fsync'd prefix survives exactly; the torn record is
        # honestly gone, never half-merged.
        survivor = SweepCheckpoint(path, config_hash="h")
        assert survivor.load() == {"sig-a": {"misses": 1}}

        # The resumed writer finishes the job.
        survivor.record("sig-b", {"misses": 2})
        survivor.record("sig-c", {"misses": 3})
        survivor.close()
        assert SweepCheckpoint(path).load() == {
            "sig-a": {"misses": 1},
            "sig-b": {"misses": 2},
            "sig-c": {"misses": 3},
        }
