"""Deterministic fault injection: spec matching, parsing, activation."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience import faults
from repro.resilience.faults import (
    CORRUPTED,
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    parse_plan,
    parse_spec,
    transient,
)


@pytest.fixture(autouse=True)
def clean_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.deactivate()
    yield
    faults.deactivate()


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="fault kind"):
            FaultSpec("meltdown")

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("raise", probability=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec("raise", probability=1.5)

    def test_key_selector(self):
        spec = FaultSpec("raise", at=2)
        assert spec.matches(2, 1, 1)
        assert not spec.matches(3, 1, 1)

    def test_attempt_selector(self):
        spec = FaultSpec("raise", attempts=frozenset({1}))
        assert spec.matches(0, 1, 1)
        assert not spec.matches(0, 2, 2)

    def test_nth_selector(self):
        spec = FaultSpec("raise", nth=3)
        assert not spec.matches(0, 1, 2)
        assert spec.matches(0, 1, 3)

    def test_probability_is_deterministic(self):
        spec = FaultSpec("raise", probability=0.5, seed=9)
        draws = [spec.matches(key, 1, 1) for key in range(64)]
        assert draws == [
            FaultSpec("raise", probability=0.5, seed=9).matches(key, 1, 1)
            for key in range(64)
        ]
        assert any(draws) and not all(draws)

    def test_transient_restricts_to_first_attempt(self):
        spec = transient(FaultSpec("raise", at=1))
        assert spec.matches(1, 1, 1)
        assert not spec.matches(1, 2, 2)


class TestFaultPlan:
    def test_raise_fires(self):
        plan = FaultPlan([FaultSpec("raise", at=1)])
        plan.before(0, 1)  # wrong key: no-op
        with pytest.raises(InjectedFaultError, match="point 1"):
            plan.before(1, 1)

    def test_corrupt_substitutes_sentinel(self):
        plan = FaultPlan([FaultSpec("corrupt", at=0)])
        assert plan.transform(0, 1, "real") == CORRUPTED
        assert plan.transform(1, 1, "real") == "real"

    def test_custom_corruptor(self):
        plan = FaultPlan(
            [FaultSpec("corrupt", corruptor=lambda value: value * -1)]
        )
        assert plan.transform(0, 1, 5) == -5

    def test_calls_counter_feeds_nth(self):
        plan = FaultPlan([FaultSpec("raise", nth=2)])
        plan.before(0, 1)
        with pytest.raises(InjectedFaultError):
            plan.before(0, 2)

    def test_extend_chains(self):
        plan = FaultPlan().extend(FaultSpec("raise", at=7))
        assert len(plan.specs) == 1


class TestActivation:
    def test_inert_by_default(self):
        assert faults.active_plan() is None

    def test_activate_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@9")
        plan = faults.activate(FaultPlan([FaultSpec("hang", at=0)]))
        assert faults.active_plan() is plan
        faults.deactivate()
        env_plan = faults.active_plan()
        assert env_plan is not None
        assert env_plan.specs[0].kind == "raise"

    def test_env_parsed_fresh_each_call(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@1")
        first = faults.active_plan()
        second = faults.active_plan()
        assert first is not second  # each worker gets its own counter


class TestSpecLanguage:
    def test_minimal(self):
        spec = parse_spec("raise")
        assert spec.kind == "raise" and spec.at is None

    def test_key(self):
        assert parse_spec("exit@3").at == 3

    def test_options(self):
        spec = parse_spec("hang@4:seconds=60,attempts=1+2,seed=5")
        assert spec.kind == "hang"
        assert spec.at == 4
        assert spec.seconds == 60.0
        assert spec.attempts == frozenset({1, 2})
        assert spec.seed == 5

    def test_exit_code_and_probability(self):
        spec = parse_spec("exit:code=7,p=0.25")
        assert spec.exit_code == 7
        assert spec.probability == 0.25

    def test_nth(self):
        assert parse_spec("raise:nth=2").nth == 2

    def test_plan_is_semicolon_separated(self):
        plan = parse_plan("raise@2:attempts=1; hang@4:seconds=60")
        assert [spec.kind for spec in plan.specs] == ["raise", "hang"]

    @pytest.mark.parametrize(
        "raw",
        [
            "warp@1",            # unknown kind
            "raise@xyz",         # non-integer key
            "raise:bogus=1",     # unknown option
            "hang:seconds=abc",  # bad value
        ],
    )
    def test_bad_specs_rejected(self, raw):
        with pytest.raises(ConfigurationError):
            parse_spec(raw)


class TestSpecEdgeCases:
    def test_empty_plan_string_is_inert(self):
        plan = parse_plan("")
        assert plan.specs == []
        plan.before(0, 1)  # no spec, no fault
        assert plan.transform(0, 1, "x") == "x"

    def test_whitespace_and_empty_segments_skipped(self):
        plan = parse_plan(" ; raise@1 ;; ")
        assert [spec.kind for spec in plan.specs] == ["raise"]

    def test_empty_spec_segment_alone_rejected(self):
        # parse_spec itself (unlike parse_plan, which filters empties)
        # must not silently accept an empty action.
        with pytest.raises(ConfigurationError, match="fault kind"):
            parse_spec("")

    def test_unknown_action_names_the_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_spec("explode@1")
        assert "raise" in str(excinfo.value)

    def test_duplicate_point_attempt_first_spec_wins(self):
        # Two specs matching the same (point, attempt): deterministic
        # resolution is declaration order, so the first firing spec
        # decides the outcome regardless of duplicates after it.
        plan = parse_plan("raise@1;exit@1:code=9")
        with pytest.raises(InjectedFaultError):
            plan.before(1, 1)

    def test_duplicate_corrupt_specs_first_wins(self):
        first = FaultSpec("corrupt", at=1, corruptor=lambda r: "first")
        second = FaultSpec("corrupt", at=1, corruptor=lambda r: "second")
        plan = FaultPlan([first, second])
        assert plan.transform(1, 1, "real") == "first"

    def test_duplicate_attempt_values_in_spec_collapse(self):
        spec = parse_spec("raise@1:attempts=1+1+2")
        assert spec.attempts == frozenset({1, 2})

    def test_spec_round_trips_across_a_spawned_process(self, tmp_path):
        """The env-var plan parses identically in a fresh interpreter."""
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        raw = "raise@2:attempts=1+3,seed=5;hang@4:seconds=60;exit@0:code=7"
        script = (
            "import json\n"
            "from repro.resilience.faults import active_plan\n"
            "plan = active_plan()\n"
            "print(json.dumps([\n"
            "    {'kind': s.kind, 'at': s.at,\n"
            "     'attempts': sorted(s.attempts) if s.attempts else None,\n"
            "     'seed': s.seed, 'seconds': s.seconds,\n"
            "     'exit_code': s.exit_code}\n"
            "    for s in plan.specs\n"
            "]))\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        result = subprocess.run(
            [sys.executable, "-c", script],
            env={ENV_VAR: raw, "PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        specs = json.loads(result.stdout)
        assert specs == [
            {"kind": "raise", "at": 2, "attempts": [1, 3], "seed": 5,
             "seconds": 3600.0, "exit_code": 1},
            {"kind": "hang", "at": 4, "attempts": None, "seed": 0,
             "seconds": 60.0, "exit_code": 1},
            {"kind": "exit", "at": 0, "attempts": None, "seed": 0,
             "seconds": 3600.0, "exit_code": 7},
        ]
