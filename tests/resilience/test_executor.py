"""ResilientPoolExecutor recovery paths, driven on real worker pools."""

import pytest

from repro.errors import SweepPointError, SweepTimeoutError
from repro.obs.context import IdSource, activate, new_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.resilience import faults
from repro.resilience.executor import ResilientPoolExecutor
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.policy import FailurePolicy, RetryPolicy


def double(payload):
    """Trivial picklable worker."""
    return payload * 2


def picky(payload):
    """Worker that rejects one specific payload."""
    if payload == 13:
        raise ValueError("unlucky payload")
    return payload * 2


@pytest.fixture(autouse=True)
def clean_plan():
    faults.deactivate()
    yield
    faults.deactivate()


FAST = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)


def make(worker=double, **kwargs):
    kwargs.setdefault("processes", 2)
    kwargs.setdefault("retry", FAST)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ResilientPoolExecutor(worker, **kwargs)


class TestHappyPath:
    def test_all_results_in_order(self):
        report = make().run([(i, i) for i in range(5)])
        assert report.results == {i: i * 2 for i in range(5)}
        assert not report.failures
        assert report.retries == 0

    def test_empty_task_list(self):
        report = make().run([])
        assert report.results == {} and not report.failures

    def test_callbacks_fire(self):
        events = []
        executor = make(
            on_submit=lambda key, attempt: events.append(
                ("submit", key, attempt)
            ),
            on_result=lambda key, value: events.append(("result", key)),
        )
        executor.run([(0, 1), (1, 2)])
        assert ("submit", 0, 1) in events and ("submit", 1, 1) in events
        assert ("result", 0) in events and ("result", 1) in events


class TestWorkerExceptions:
    def test_collect_records_structured_failure(self):
        executor = make(picky, failure_policy=FailurePolicy.COLLECT)
        report = executor.run([(0, 1), (1, 13), (2, 3)])
        assert report.results == {0: 2, 2: 6}
        (failure,) = report.failures
        assert failure.key == 1
        assert failure.kind == "raise"
        assert failure.error_type == "ValueError"
        assert "unlucky payload" in failure.message
        assert "ValueError" in failure.traceback
        assert failure.worker_pid is not None
        assert failure.attempts == 1  # collect never retries

    def test_fail_fast_raises_with_failure_attached(self):
        executor = make(picky, failure_policy="fail_fast")
        with pytest.raises(SweepPointError) as excinfo:
            executor.run([(0, 13)])
        assert excinfo.value.failure.error_type == "ValueError"

    def test_on_failure_callback(self):
        seen = []
        executor = make(
            picky, failure_policy="collect", on_failure=seen.append
        )
        executor.run([(0, 13)])
        assert seen[0].key == 0

    def test_retry_exhausts_attempt_budget(self):
        executor = make(picky, failure_policy="retry_then_collect")
        report = executor.run([(0, 13)])
        (failure,) = report.failures
        assert failure.attempts == FAST.max_attempts
        assert report.retries == FAST.max_attempts - 1


class TestInjectedFaults:
    def test_transient_raise_retried_to_success(self):
        faults.activate(
            FaultPlan([FaultSpec("raise", at=1, attempts=frozenset({1}))])
        )
        metrics = MetricsRegistry()
        executor = make(
            failure_policy="retry_then_collect", metrics=metrics
        )
        report = executor.run([(i, i) for i in range(3)])
        assert report.results == {0: 0, 1: 2, 2: 4}
        assert not report.failures
        assert report.retries == 1
        assert metrics.snapshot()["counters"]["resilience.retries"] == 1

    def test_worker_death_recovered(self):
        faults.activate(
            FaultPlan([FaultSpec("exit", at=2, attempts=frozenset({1}))])
        )
        executor = make(failure_policy="retry_then_collect")
        report = executor.run([(i, i) for i in range(4)])
        assert report.results == {i: i * 2 for i in range(4)}
        assert report.pool_restarts >= 1

    def test_persistent_worker_death_collected_as_crash(self):
        faults.activate(FaultPlan([FaultSpec("exit", at=0)]))
        executor = make(failure_policy="retry_then_collect", processes=1)
        report = executor.run([(0, 0), (1, 1)])
        assert report.results == {1: 2}
        (failure,) = report.failures
        assert failure.kind == "crash"
        assert failure.error_type == "BrokenProcessPool"

    def test_hang_reaped_by_timeout_then_retried(self):
        faults.activate(
            FaultPlan(
                [FaultSpec("hang", at=0, attempts=frozenset({1}), seconds=60)]
            )
        )
        executor = make(
            failure_policy="retry_then_collect",
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.01, jitter=0.0, timeout=1.0
            ),
        )
        report = executor.run([(0, 5), (1, 6)])
        assert report.results == {0: 10, 1: 12}
        assert report.timeouts == 1
        assert report.pool_restarts >= 1

    def test_persistent_hang_becomes_timeout_failure(self):
        faults.activate(FaultPlan([FaultSpec("hang", at=0, seconds=60)]))
        executor = make(
            failure_policy="collect",
            retry=RetryPolicy(max_attempts=1, timeout=0.5),
            processes=1,
        )
        report = executor.run([(0, 5)])
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert isinstance(failure.to_exception(), SweepTimeoutError)


class TestTracePropagation:
    """Worker spans cross the pool boundary with the submitter's ids."""

    def run_traced(self, tasks, context=None, **kwargs):
        tracer = Tracer()
        kwargs.setdefault("tracer", tracer)
        executor = make(**kwargs)
        if context is not None:
            with activate(context):
                report = executor.run(tasks)
        else:
            report = executor.run(tasks)
        return report, tracer

    def test_pool_task_spans_adopted_with_submitting_trace(self):
        context = new_trace(IdSource("request"))
        report, tracer = self.run_traced(
            [(i, i) for i in range(3)], context=context
        )
        assert report.results == {i: i * 2 for i in range(3)}
        tasks = [r for r in tracer.records if r.name == "pool_task"]
        assert len(tasks) == 3
        for record in tasks:
            assert record.trace_id == context.trace_id
            assert record.parent_span_id == context.span_id
            assert record.attrs["attempt"] == 1
            assert record.attrs["worker_pid"] != 0
        assert sorted(r.attrs["key"] for r in tasks) == [0, 1, 2]

    def test_span_ids_unique_across_tasks(self):
        context = new_trace(IdSource("request"))
        _, tracer = self.run_traced(
            [(i, i) for i in range(4)], context=context
        )
        span_ids = [
            r.span_id for r in tracer.records if r.name == "pool_task"
        ]
        assert len(span_ids) == len(set(span_ids)) == 4

    def test_worker_ids_deterministic_for_fixed_context(self):
        def ids_for_run():
            context = new_trace(IdSource("request"))
            _, tracer = self.run_traced([(0, 1), (1, 2)], context=context)
            return sorted(
                r.span_id for r in tracer.records if r.name == "pool_task"
            )

        assert ids_for_run() == ids_for_run()

    def test_retry_produces_attempt_tagged_child_spans(self):
        faults.activate(
            FaultPlan([FaultSpec("raise", at=0, attempts=frozenset({1}))])
        )
        context = new_trace(IdSource("request"))
        report, tracer = self.run_traced(
            [(0, 5)], context=context, failure_policy="retry_then_collect"
        )
        assert report.results == {0: 10}
        tasks = sorted(
            (r for r in tracer.records if r.name == "pool_task"),
            key=lambda r: r.attrs["attempt"],
        )
        assert [r.attrs["attempt"] for r in tasks] == [1, 2]
        assert tasks[0].attrs["error"] is True
        assert tasks[0].attrs["error_type"] == "InjectedFaultError"
        assert "error" not in tasks[1].attrs
        assert {r.trace_id for r in tasks} == {context.trace_id}
        assert tasks[0].span_id != tasks[1].span_id

    def test_no_ambient_context_ships_no_wire(self):
        report, tracer = self.run_traced([(0, 1)])
        assert report.results == {0: 2}
        (record,) = [r for r in tracer.records if r.name == "pool_task"]
        # The worker self-roots a fresh trace rather than inheriting
        # a stale one.
        assert record.trace_id is not None
        assert record.parent_span_id is None

    def test_worker_inner_spans_nest_under_pool_task(self):
        context = new_trace(IdSource("request"))
        report, tracer = self.run_traced(
            [(0, 2)], context=context, worker=traced_worker
        )
        assert report.results == {0: 4}
        by_name = {r.name: r for r in tracer.records}
        inner, task = by_name["compute"], by_name["pool_task"]
        assert inner.trace_id == context.trace_id
        assert inner.parent_span_id == task.span_id


def traced_worker(payload):
    """Worker that opens its own span inside the guard's pool_task."""
    from repro.obs.spans import span

    with span("compute"):
        return payload * 2


class TestValidator:
    def test_corrupt_result_rejected_not_merged(self):
        faults.activate(FaultPlan([FaultSpec("corrupt", at=0)]))

        def validator(key, value):
            if not isinstance(value, int):
                raise TypeError(f"corrupt payload {value!r}")

        metrics = MetricsRegistry()
        executor = make(
            failure_policy="collect", metrics=metrics, validator=validator
        )
        report = executor.run([(0, 1), (1, 2)])
        assert report.results == {1: 4}
        (failure,) = report.failures
        assert failure.error_type == "TypeError"
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.invalid_results"] == 1

    def test_transient_corruption_retried_clean(self):
        faults.activate(
            FaultPlan([FaultSpec("corrupt", at=0, attempts=frozenset({1}))])
        )

        def validator(key, value):
            if not isinstance(value, int):
                raise TypeError("corrupt")

        executor = make(
            failure_policy="retry_then_collect", validator=validator
        )
        report = executor.run([(0, 1)])
        assert report.results == {0: 2}
        assert report.retries == 1
