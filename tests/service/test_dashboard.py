"""The /dashboard endpoints: content, verdict parity, drain, stability."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.bench import BenchHistory, TimingResult, build_entry
from repro.obs.compare import compare_entries
from repro.obs.metrics import MetricsRegistry
from repro.obs.validate import validate_dashboard
from repro.service import serve_in_thread

from tests.service.test_server import make_service, payload, wait_for_job


def write_history(path, medians=(1.0,)):
    history = BenchHistory()
    for index, median in enumerate(medians):
        history.append(
            build_entry(
                config={"references": 4000},
                config_hash="feed",
                results={
                    "l2_replay_fused_engine": {
                        "timing": TimingResult(
                            [median - 0.01, median, median + 0.01], warmup=1
                        ).to_dict(),
                        "requests": 4000,
                    }
                },
                sha=chr(ord("a") + index) * 40,
            ),
            dedupe=False,
        )
    return history.save(path)


def get(server, path):
    host, port = server.address
    request = urllib.request.Request(f"http://{host}:{port}{path}")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read(), response.headers
    except urllib.error.HTTPError as error:
        return error.code, error.read(), error.headers


@pytest.fixture()
def served(tmp_path):
    service = make_service(tmp_path)
    service.start()
    server, _ = serve_in_thread(service)
    yield service, server
    server.shutdown()
    server.server_close()
    if not service.draining:
        service.drain(grace=5.0)


class TestEmptyHistory:
    def test_text_without_configured_history(self, served):
        service, server = served
        code, body, headers = get(server, "/dashboard.txt")
        assert code == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("ascii")
        assert "repro-serve dashboard" in text
        assert "ready: yes" in text
        assert "no history configured" in text
        assert "jobs: none submitted" in text

    def test_empty_history_file(self, tmp_path):
        service = make_service(
            tmp_path, bench_history_path=tmp_path / "absent.json"
        )
        service.start()
        server, _ = serve_in_thread(service)
        try:
            code, body, _ = get(server, "/dashboard.txt")
            assert code == 200
            assert "no benchmark entries yet" in body.decode("ascii")
        finally:
            server.shutdown()
            server.server_close()
            service.drain(grace=5.0)


class TestPopulatedHistory:
    def test_verdict_matches_bench_compare(self, tmp_path):
        # Acceptance criterion: the dashboard's regression verdict is
        # the same compare_entries result repro-bench-compare computes
        # on the same history file and default pair selection.
        history_path = write_history(
            tmp_path / "BENCH.json", medians=(1.0, 2.0)
        )
        history = BenchHistory.load(history_path)
        expected = compare_entries(
            history.entries[0],
            history.entries[1],
            baseline_index=0,
            candidate_index=1,
        )
        assert expected["verdict"] == "timing-regression"

        service = make_service(tmp_path, bench_history_path=history_path)
        service.start()
        server, _ = serve_in_thread(service)
        try:
            code, body, _ = get(server, "/dashboard.json")
            assert code == 200
            document = json.loads(body)
            verdict = document["trajectory"]["verdict"]
            assert verdict["verdict"] == expected["verdict"]
            assert verdict["timing"] == expected["timing"]
            assert verdict["baseline"]["index"] == 0
            assert verdict["candidate"]["index"] == 1

            code, body, _ = get(server, "/dashboard.txt")
            assert "verdict: timing-regression" in body.decode("ascii")
            code, body, _ = get(server, "/dashboard")
            assert b"timing-regression" in body
        finally:
            server.shutdown()
            server.server_close()
            service.drain(grace=5.0)

    def test_payload_passes_validator_with_jobs(self, tmp_path):
        history_path = write_history(tmp_path / "BENCH.json")
        service = make_service(tmp_path, bench_history_path=history_path)
        service.start()
        server, _ = serve_in_thread(service)
        try:
            record = service.submit(payload())
            wait_for_job(service, record["id"])
            code, body, _ = get(server, "/dashboard.json")
            document = json.loads(body)
            assert validate_dashboard(document) == []
            assert document["jobs"][0]["status"] == "done"
            code, body, _ = get(server, "/dashboard.txt")
            text = body.decode("ascii")
            assert record["id"] in text
            assert "replay:" in text
        finally:
            server.shutdown()
            server.server_close()
            service.drain(grace=5.0)


class TestDraining:
    def test_503_with_full_body_while_draining(self, served):
        service, server = served
        service.drain(grace=5.0)
        for path in ("/dashboard", "/dashboard.txt", "/dashboard.json"):
            code, body, _ = get(server, path)
            assert code == 503, path
            assert body, path
        code, body, _ = get(server, "/dashboard.txt")
        assert "ready: NO (draining)" in body.decode("ascii")


class TestByteStability:
    def test_two_renders_identical(self, tmp_path):
        history_path = write_history(
            tmp_path / "BENCH.json", medians=(1.0, 1.1)
        )
        service = make_service(tmp_path, bench_history_path=history_path)
        service.start()
        server, _ = serve_in_thread(service)
        try:
            record = service.submit(payload())
            wait_for_job(service, record["id"])
            _, first, _ = get(server, "/dashboard.txt")
            _, second, _ = get(server, "/dashboard.txt")
            assert first == second
            first.decode("ascii")  # pure ASCII or this raises
        finally:
            server.shutdown()
            server.server_close()
            service.drain(grace=5.0)


class TestStatusReplayBlock:
    def test_metrics_snapshot_has_replay_counters(self, tmp_path):
        service = make_service(tmp_path)
        status = service.status()
        replay = status["replay"]
        assert replay["counters"]["replay.columnar_replays"] == 0
        assert replay["counters"]["miss_stream.artifact_hits"] == 0
        assert replay["counters"]["miss_stream.artifact_misses"] == 0
        assert replay["batch_size"]["count"] == 0
        # The get-or-create read also materializes them in the
        # registry snapshot, so /metrics always shows the namespace.
        counters = status["metrics"]["counters"]
        assert "replay.columnar_replays" in counters
        assert "miss_stream.artifact_hits" in counters

    def test_counters_flow_through(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.counter("replay.columnar_replays").inc(3)
        metrics.histogram("replay.batch_size").observe(128)
        metrics.counter("miss_stream.artifact_hits").inc()
        service = make_service(tmp_path, metrics=metrics)
        replay = service.status()["replay"]
        assert replay["counters"]["replay.columnar_replays"] == 3
        assert replay["counters"]["miss_stream.artifact_hits"] == 1
        assert replay["batch_size"]["max"] == 128
