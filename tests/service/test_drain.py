"""Drain coordinator (two-phase signals) and worker watchdog."""

import signal
import threading

from repro.obs.metrics import MetricsRegistry
from repro.service.drain import HARD_EXIT_CODE, DrainCoordinator, Watchdog


class TestDrainCoordinator:
    def test_first_signal_sets_draining_and_runs_callbacks(self):
        calls = []
        coordinator = DrainCoordinator(
            on_drain=[lambda: calls.append("a")],
            hard_exit=lambda code: calls.append(("exit", code)),
        )
        coordinator.add_callback(lambda: calls.append("b"))
        assert not coordinator.draining
        coordinator.handle(signal.SIGTERM)
        assert coordinator.draining
        assert calls == ["a", "b"]

    def test_second_signal_hard_exits_130(self):
        exits = []
        coordinator = DrainCoordinator(hard_exit=exits.append)
        coordinator.handle(signal.SIGTERM)
        assert exits == []
        coordinator.handle(signal.SIGINT)
        assert exits == [HARD_EXIT_CODE]
        assert HARD_EXIT_CODE == 130

    def test_callbacks_run_once(self):
        calls = []
        coordinator = DrainCoordinator(
            on_drain=[lambda: calls.append(1)], hard_exit=lambda code: None
        )
        coordinator.handle(signal.SIGTERM)
        coordinator.handle(signal.SIGTERM)
        assert calls == [1]

    def test_request_drain_is_programmatic_first_signal(self):
        coordinator = DrainCoordinator(hard_exit=lambda code: None)
        coordinator.request_drain()
        assert coordinator.draining
        assert coordinator.wait(timeout=0.01)

    def test_wait_blocks_until_drain(self):
        coordinator = DrainCoordinator(hard_exit=lambda code: None)
        assert not coordinator.wait(timeout=0.01)
        timer = threading.Timer(0.05, coordinator.request_drain)
        timer.start()
        assert coordinator.wait(timeout=2.0)
        timer.join()

    def test_install_uninstall_restores_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        coordinator = DrainCoordinator(hard_exit=lambda code: None)
        coordinator.install(signals=(signal.SIGTERM,))
        assert signal.getsignal(signal.SIGTERM) == coordinator.handle
        coordinator.uninstall()
        assert signal.getsignal(signal.SIGTERM) == before


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestWatchdog:
    def make(self, deadline=10.0, **kwargs):
        clock = FakeClock()
        stalls = []
        watchdog = Watchdog(
            deadline,
            on_stall=lambda worker, busy: stalls.append((worker, busy)),
            metrics=kwargs.pop("metrics", MetricsRegistry()),
            clock=clock,
            **kwargs,
        )
        return watchdog, clock, stalls

    def test_busy_within_deadline_not_flagged(self):
        watchdog, clock, stalls = self.make(deadline=10.0)
        watchdog.beat("w0", busy=True)
        clock.advance(9.0)
        assert watchdog.check() == []
        assert stalls == []

    def test_stall_flagged_past_deadline(self):
        watchdog, clock, stalls = self.make(deadline=10.0)
        watchdog.beat("w0", busy=True)
        clock.advance(11.0)
        assert watchdog.check() == ["w0"]
        assert stalls == [("w0", 11.0)]

    def test_stall_flagged_once_per_job(self):
        watchdog, clock, stalls = self.make(deadline=10.0)
        watchdog.beat("w0", busy=True)
        clock.advance(11.0)
        watchdog.check()
        clock.advance(5.0)
        assert watchdog.check() == []
        assert len(stalls) == 1

    def test_finishing_clears_the_flag_for_next_job(self):
        watchdog, clock, stalls = self.make(deadline=10.0)
        watchdog.beat("w0", busy=True)
        clock.advance(11.0)
        watchdog.check()
        watchdog.beat("w0", busy=False)
        watchdog.beat("w0", busy=True)  # a new job restarts the clock
        clock.advance(11.0)
        assert watchdog.check() == ["w0"]
        assert len(stalls) == 2

    def test_metrics(self):
        metrics = MetricsRegistry()
        watchdog, clock, _ = self.make(deadline=1.0, metrics=metrics)
        watchdog.beat("w0", busy=True)
        assert (
            metrics.snapshot()["gauges"]["service.watchdog.busy_workers"] == 1
        )
        clock.advance(2.0)
        watchdog.check()
        assert (
            metrics.snapshot()["counters"]["service.watchdog.stalls"] == 1
        )

    def test_thread_start_stop(self):
        watchdog, _, _ = self.make(deadline=10.0, interval=0.01)
        watchdog.start()
        watchdog.start()  # idempotent
        watchdog.stop()
        assert watchdog._thread is None
