"""repro-loadgen: seeded mix, stats math, end-to-end closed loop."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.validate import validate_history_file
from repro.resilience.policy import SweepOutcome
from repro.service import SimulationService, serve_in_thread
from repro.service.loadgen import (
    LoadStats,
    main,
    parse_target,
    workload_mix,
)


class Workload:
    segments = 2
    references_per_segment = 100
    seed = 7


def ok_runner(job):
    return SweepOutcome(results=[object()] * len(job.points))


@pytest.fixture()
def service(tmp_path):
    svc = SimulationService(
        workload=Workload(),
        spool_dir=tmp_path / "spool",
        job_runner=ok_runner,
        metrics=MetricsRegistry(),
        tracer=Tracer(),
    )
    svc.start()
    server, _ = serve_in_thread(svc)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        svc.drain(grace=5.0)


class TestWorkloadMix:
    def test_same_seed_same_sequence(self):
        assert workload_mix(1989, 25) == workload_mix(1989, 25)

    def test_different_seed_different_sequence(self):
        assert workload_mix(1989, 25) != workload_mix(7, 25)

    def test_prefix_stability(self):
        # Asking for fewer payloads yields a prefix of the longer run:
        # the sequence is positional, not length-dependent.
        assert workload_mix(1989, 30)[:10] == workload_mix(1989, 10)

    def test_payload_shape(self):
        for payload in workload_mix(3, 20):
            (point,) = payload["points"]
            assert point["l2"] == "64K-32"
            assert point["associativity"] in (1, 2, 4)


class TestParseTarget:
    def test_accepts_http_url(self):
        assert parse_target("http://127.0.0.1:8320") == ("127.0.0.1", 8320)

    def test_accepts_bare_host_port(self):
        assert parse_target("localhost:9") == ("localhost", 9)

    def test_rejects_missing_port(self):
        with pytest.raises(ReproError):
            parse_target("http://localhost")


class TestLoadStats:
    def test_outcome_classification(self):
        stats = LoadStats()
        stats.record_submit(0.0, 202, 0.01)
        stats.record_submit(1.0, 429, 0.0)
        stats.record_submit(2.0, 400, 0.0)
        stats.record_submit(3.0, None, 0.0)
        stats.record_submit(4.0, 202, 0.02)
        summary = stats.summary(wall_seconds=10.0)
        assert summary["submitted"] == 5
        assert summary["accepted"] == 2
        assert summary["shed"] == 1
        assert summary["rejected"] == 1
        assert summary["unavailable"] == 1
        assert summary["shed_rate"] == 0.2
        assert summary["throughput_rps"] == 0.2

    def test_recovery_is_longest_acceptance_gap(self):
        stats = LoadStats()
        for at, status in (
            (0.0, 202), (1.0, 202), (2.0, 429), (3.0, 429), (7.5, 202),
        ):
            stats.record_submit(at, status, 0.0)
        # Outage spans 1.0 -> 7.5: the 429s in between made no progress.
        assert stats.recovery_seconds() == 6.5

    def test_recovery_needs_two_acceptances(self):
        stats = LoadStats()
        stats.record_submit(0.0, 202, 0.0)
        assert stats.recovery_seconds() == 0.0

    def test_failed_jobs_counted(self):
        stats = LoadStats()
        stats.record_completion(0.5, "done")
        stats.record_completion(0.6, "failed")
        stats.record_completion(0.7, "lost")
        summary = stats.summary(1.0)
        assert summary["completed"] == 3
        assert summary["failed_jobs"] == 2


class TestClosedLoopEndToEnd:
    def test_run_records_gateable_history(self, service, tmp_path, capsys):
        host, port = service.address
        history_path = tmp_path / "BENCH_loadgen.json"
        code = main(
            [
                "--target", f"http://{host}:{port}",
                "--mode", "closed",
                "--requests", "6",
                "--concurrency", "2",
                "--seed", "11",
                "--history", str(history_path),
                "--json",
            ]
        )
        assert code == 0
        # The service logs onto the same stream; the summary JSON is
        # the last line printed.
        out_lines = capsys.readouterr().out.strip().splitlines()
        summary = json.loads(out_lines[-1])
        assert summary["accepted"] == 6
        assert summary["completed"] == 6
        assert summary["failed_jobs"] == 0
        assert summary["latency_p50_s"] >= 0.0
        assert validate_history_file(history_path) == []
        history = json.loads(history_path.read_text())
        (entry,) = history["entries"]
        assert entry["config"]["tool"] == "repro-loadgen"
        timing = entry["results"]["loadgen_submit"]["timing"]
        assert len(timing["samples"]) == 6

    def test_unreachable_target_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "--target", "http://127.0.0.1:9",
                "--requests", "2",
                "--concurrency", "1",
                "--resubmit-delay", "0",
                "--history", str(tmp_path / "h.json"),
            ]
        )
        assert code == 2
        assert not (tmp_path / "h.json").exists()
        summary = json.loads(capsys.readouterr().out)
        assert summary["unavailable"] == 2
