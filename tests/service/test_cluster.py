"""Cluster front door: routing, lifecycle, failover, aggregation."""

import json
import time
import urllib.request

import pytest

from repro.errors import (
    AdmissionError,
    QueueFullError,
    ShardUnavailableError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.validate import validate_dashboard
from repro.report.dashboard import render_dashboard_text
from repro.resilience.policy import SweepOutcome
from repro.service import SimulationService
from repro.service.cluster import ClusterService, serve_cluster_in_thread
from repro.service.shard import InProcessShard


class Workload:
    segments = 2
    references_per_segment = 100
    seed = 7


def ok_runner(job):
    return SweepOutcome(results=[object()] * len(job.points))


def payload(assoc=2):
    return {
        "points": [{"l1": "4K-16", "l2": "64K-32", "associativity": assoc}]
    }


def make_cluster(tmp_path, shard_count=3, **kwargs):
    spool = tmp_path / "spool"

    def factory():
        return SimulationService(
            workload=Workload(),
            spool_dir=spool,
            job_runner=ok_runner,
            metrics=MetricsRegistry(),
            tracer=Tracer(),
        )

    shards = [
        InProcessShard(f"shard-{index}", factory)
        for index in range(shard_count)
    ]
    kwargs.setdefault("cluster_dir", tmp_path / "cluster")
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("tracer", Tracer())
    # Tests drive the lifecycle via probe_once; a long interval keeps
    # the background prober out of the way.
    kwargs.setdefault("probe_interval", 30.0)
    kwargs.setdefault("restart", False)
    cluster = ClusterService(shards, **kwargs)
    cluster.start()
    return cluster


def wait_done(cluster, cluster_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = cluster.job(cluster_id)
        if record and record["status"] in ("done", "partial", "failed"):
            return record
        time.sleep(0.01)
    pytest.fail(f"job {cluster_id} never finished")


class TestRouting:
    def test_submission_routes_by_config_hash(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            record = cluster.submit(payload())
            key = record["config_hash"]
            assert record["shard"] == cluster.ring.node_for(key)
            assert record["shard_job_id"]
        finally:
            cluster.drain(grace=5.0)

    def test_resubmission_keeps_affinity(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            first = cluster.submit(payload())
            second = cluster.submit(payload())
            assert first["shard"] == second["shard"]
            assert first["id"] != second["id"]
        finally:
            cluster.drain(grace=5.0)

    def test_distinct_configs_spread_over_shards(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            owners = {
                cluster.submit(payload(assoc))["shard"]
                for assoc in (1, 2, 4, 8, 16, 32)
            }
            assert len(owners) > 1
        finally:
            cluster.drain(grace=5.0)

    def test_malformed_payload_rejected_at_the_door(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            with pytest.raises(AdmissionError):
                cluster.submit({"points": []})
            assert cluster.submissions() == []
        finally:
            cluster.drain(grace=5.0)

    def test_dead_owner_routes_to_ring_successor(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            record = cluster.submit(payload())
            wait_done(cluster, record["id"])
            owner, key = record["shard"], record["config_hash"]
            cluster.shards[owner].kill()
            cluster.probe_once()
            rerouted = cluster.submit(payload())
            assert rerouted["shard"] == cluster.ring.successor(
                key, exclude=(owner,)
            )
        finally:
            cluster.drain(grace=5.0)

    def test_no_routable_shard_raises(self, tmp_path):
        cluster = make_cluster(tmp_path, shard_count=2)
        try:
            for shard in cluster.shards.values():
                shard.kill()
            cluster.probe_once()
            with pytest.raises(ShardUnavailableError):
                cluster.submit(payload())
            assert cluster.ready() == (False, "no routable shards")
        finally:
            cluster.drain(grace=5.0)


class TestLifecycle:
    def test_dead_shard_is_ejected(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            victim = sorted(cluster.shards)[0]
            cluster.shards[victim].kill()
            cluster.probe_once()
            states = cluster.shard_states()
            assert states[victim]["state"] == "dead"
            assert cluster.breakers[victim].state == "open"
            assert victim not in cluster.routable_shards()
        finally:
            cluster.drain(grace=5.0)

    def test_dead_shard_restarts_after_backoff(self, tmp_path):
        cluster = make_cluster(
            tmp_path, restart=True, restart_backoff=0.01,
            restart_backoff_cap=0.01,
        )
        try:
            victim = sorted(cluster.shards)[0]
            cluster.shards[victim].kill()
            now = time.monotonic()
            cluster.probe_once(now=now)
            assert not cluster.shards[victim].is_alive()
            cluster.probe_once(now=now + 5.0)
            assert cluster.shards[victim].is_alive()
            assert cluster.shards[victim].restarts == 1
        finally:
            cluster.drain(grace=5.0)

    def test_failover_readmits_onto_successor(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            record = cluster.submit(payload())
            done = wait_done(cluster, record["id"])
            owner, key = done["shard"], done["config_hash"]
            # Rewind the router's view to in-flight, then lose the
            # owner: the next sweep must re-admit onto the successor.
            submission = cluster._submissions[record["id"]]
            submission.status = "running"
            cluster.shards[owner].kill()
            cluster.probe_once()
            moved = cluster.job(record["id"])
            assert moved["readmissions"] == 1
            assert moved["shard"] == cluster.ring.successor(
                key, exclude=(owner,)
            )
            assert moved["shard_history"][0] == owner
            final = wait_done(cluster, record["id"])
            assert final["status"] == "done"
            # The flight record spans the failover on one trace id.
            flight = cluster.job_trace(record["id"])
            names = [span["name"] for span in flight["tree"]]
            assert "route" in names

            def walk(nodes):
                for node in nodes:
                    yield node
                    yield from walk(node["children"])

            all_names = {span["name"] for span in walk(flight["tree"])}
            assert {"route", "shard_failover", "readmit"} <= all_names
        finally:
            cluster.drain(grace=5.0)

    def test_terminal_jobs_are_not_readmitted(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            record = cluster.submit(payload())
            wait_done(cluster, record["id"])
            cluster.probe_once()  # refreshes the terminal status
            owner = cluster.job(record["id"])["shard"]
            cluster.shards[owner].kill()
            cluster.probe_once()
            assert cluster.job(record["id"])["readmissions"] == 0
        finally:
            cluster.drain(grace=5.0)


class TestReads:
    def test_hedged_read_falls_back_to_router_record(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            record = cluster.submit(payload())
            done = wait_done(cluster, record["id"])
            assert done["shard_reachable"] is True
            for shard in cluster.shards.values():
                shard.kill()
            stale = cluster.job(record["id"])
            assert stale["shard_reachable"] is False
            assert stale["status"] == done["status"]
        finally:
            cluster.drain(grace=5.0)

    def test_unknown_job_is_none(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            assert cluster.job("cjob-missing") is None
            assert cluster.job_trace("cjob-missing") is None
        finally:
            cluster.drain(grace=5.0)


class TestAggregation:
    def test_status_merges_shards_and_validates(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            record = cluster.submit(payload())
            wait_done(cluster, record["id"])
            status = cluster.status()
            assert status["ready"] is True
            assert len(status["shards"]) == 3
            assert sum(status["jobs"].values()) == 1
            assert status["queue"]["capacity"] == 3 * 16
            owner_row = status["shards"][record["shard"]]
            assert owner_row["state"] == "healthy"
            assert owner_row["jobs"] == 1
            assert owner_row["execute_breaker"] == "closed"
            payload_doc = cluster.dashboard_payload()
            assert validate_dashboard(payload_doc) == []
        finally:
            cluster.drain(grace=5.0)

    def test_dashboard_text_is_byte_stable(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            record = cluster.submit(payload())
            wait_done(cluster, record["id"])
            cluster.probe_once()
            first = render_dashboard_text(cluster.dashboard_payload())
            second = render_dashboard_text(cluster.dashboard_payload())
            assert first == second
            assert "shards (3)" in first
            assert first.encode("ascii")
        finally:
            cluster.drain(grace=5.0)

    def test_jobs_are_shard_annotated(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            record = cluster.submit(payload())
            wait_done(cluster, record["id"])
            jobs = cluster.jobs()
            assert len(jobs) == 1
            assert jobs[0]["shard"] == record["shard"]
        finally:
            cluster.drain(grace=5.0)

    def test_quantile_merge_is_exact(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            for assoc in (1, 2, 4, 8):
                wait_done(cluster, cluster.submit(payload(assoc))["id"])
            status = cluster.status()
            merged = status["metrics"]["quantile_histograms"][
                "latency.job_seconds"
            ]
            # Counters in merged quantile buckets add exactly across
            # shards: four jobs, four observations.
            assert merged["count"] == 4
            assert status["latency"]["latency.job_seconds"]["count"] == 4
        finally:
            cluster.drain(grace=5.0)


class TestDrain:
    def test_two_phase_drain_is_clean_and_closes_admission(self, tmp_path):
        cluster = make_cluster(tmp_path)
        record = cluster.submit(payload())
        wait_done(cluster, record["id"])
        assert cluster.drain(grace=10.0) is True
        assert all(
            not shard.is_alive() for shard in cluster.shards.values()
        )
        with pytest.raises(QueueFullError):
            cluster.submit(payload())
        assert cluster.ready() == (False, "draining")
        manifest = json.loads(
            (tmp_path / "cluster" / "manifest.json").read_text()
        )
        assert manifest["tool"] == "repro-cluster"


class TestHTTP:
    def test_front_door_http_surface(self, tmp_path):
        cluster = make_cluster(tmp_path)
        server, _ = serve_cluster_in_thread(cluster)
        host, port = server.address
        base = f"http://{host}:{port}"

        def get(path):
            try:
                with urllib.request.urlopen(base + path) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        import urllib.error

        try:
            assert get("/healthz")[0] == 200
            assert get("/readyz")[0] == 200
            request = urllib.request.Request(
                base + "/jobs",
                data=json.dumps(payload()).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 202
                record = json.loads(response.read())
            assert record["shard"] in cluster.shards
            status, body = get(f"/jobs/{record['id']}")
            assert status == 200 and body["id"] == record["id"]
            status, body = get("/shards")
            assert status == 200 and len(body["shards"]) == 3
            status, body = get("/metrics")
            assert status == 200 and "shards" in body
            status, body = get("/jobs")
            assert status == 200 and len(body["submissions"]) == 1
            assert get("/jobs/cjob-missing")[0] == 404
            assert get("/nope")[0] == 404
        finally:
            server.shutdown()
            server.server_close()
            cluster.drain(grace=5.0)
