"""``repro-serve`` end to end: serve, submit, shed, drain on SIGTERM."""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.obs.manifest import RunManifest

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

PAYLOAD = json.dumps(
    {"points": [{"l1": "4K-16", "l2": "64K-32", "associativity": 2}]}
).encode("utf-8")


def start_server(tmp_path, *extra_args):
    """Launch repro-serve on a free port; returns (process, base_url)."""
    env = dict(os.environ, PYTHONPATH=REPO_SRC, REPRO_LOG="info")
    env.pop("REPRO_FAULTS", None)
    process = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.service.servecli",
            "--port", "0",
            "--scale", "0.002",
            "--processes", "2",
            "--spool-dir", str(tmp_path / "spool"),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=tmp_path,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            pytest.fail(f"repro-serve exited early:\n{''.join(lines)}")
        lines.append(line)
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if match:
            return process, match.group(1)
    process.kill()
    pytest.fail(f"repro-serve never reported its port:\n{''.join(lines)}")


def get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post_job(base, body=PAYLOAD):
    request = urllib.request.Request(base + "/jobs", data=body, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def finish(process, timeout=60):
    try:
        output, _ = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        output, _ = process.communicate()
        pytest.fail(f"repro-serve did not exit:\n{output}")
    return process.returncode, output


class TestServeCli:
    def test_serve_submit_drain(self, tmp_path):
        process, base = start_server(tmp_path)
        try:
            status, body = get(base, "/readyz")
            assert (status, body["ready"]) == (200, True)
            assert get(base, "/healthz")[0] == 200

            status, record = post_job(base)
            assert status == 202
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                job = get(base, f"/jobs/{record['id']}")[1]
                if job["status"] in ("done", "partial", "failed"):
                    break
                time.sleep(0.2)
            assert job["status"] == "done"
            assert job["summary"]["completed"] == 1
        finally:
            process.send_signal(signal.SIGTERM)
            code, output = finish(process)
        assert code == 0, output
        manifest = RunManifest.load(tmp_path / "spool" / "manifest.json")
        assert manifest.data["tool"] == "repro-serve"
        assert len(manifest.data["config"]["jobs"]) == 1

    def test_full_queue_sheds_with_429(self, tmp_path):
        process, base = start_server(
            tmp_path, "--queue-size", "1", "--workers", "1"
        )
        try:
            # Burst faster than one worker can drain a queue of one:
            # at least one submission must be shed with 429.
            statuses = [post_job(base)[0] for _ in range(6)]
            assert 429 in statuses, statuses
            assert statuses[0] == 202
        finally:
            process.send_signal(signal.SIGTERM)
            code, output = finish(process)
        assert code == 0, output

    def test_sigterm_while_idle_exits_zero(self, tmp_path):
        process, base = start_server(tmp_path)
        process.send_signal(signal.SIGTERM)
        code, output = finish(process)
        assert code == 0, output
        assert "drain_begin" in output
        assert (tmp_path / "spool" / "manifest.json").exists()
