"""Simulation service core and its HTTP API (stubbed job execution)."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import AdmissionError, CircuitOpenError, QueueFullError
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.resilience.policy import PointFailure, SweepOutcome
from repro.service import OPEN, SimulationService, serve_in_thread


class Workload:
    """Stub workload: enough identity for admission and manifests."""

    segments = 2
    references_per_segment = 100
    seed = 7


def ok_runner(job):
    return SweepOutcome(results=[object()] * len(job.points))


def partial_runner(job):
    failure = PointFailure(
        key=0, kind="crash", error_type="BrokenProcessPool", message="died"
    )
    return SweepOutcome(
        results=[None] + [object()] * (len(job.points) - 1),
        failures=[failure],
    )


def payload(n=1):
    return {
        "points": [
            {"l1": "4K-16", "l2": "64K-32", "associativity": 2 + 2 * i}
            for i in range(n)
        ]
    }


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("workload", Workload())
    kwargs.setdefault("spool_dir", tmp_path / "spool")
    kwargs.setdefault("job_runner", ok_runner)
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("tracer", Tracer())
    return SimulationService(**kwargs)


def wait_for_job(service, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.job(job_id)
        if record["status"] in ("done", "partial", "failed"):
            return record
        time.sleep(0.01)
    pytest.fail(f"job {job_id} did not finish: {service.job(job_id)}")


class TestSubmission:
    def test_submit_executes_and_completes(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        record = service.submit(payload(2))
        assert record["status"] in ("queued", "running", "done")
        final = wait_for_job(service, record["id"])
        assert final["status"] == "done"
        assert final["summary"]["completed"] == 2
        assert service.drain(grace=5.0)

    def test_bad_payload_rejected_and_not_registered(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(AdmissionError):
            service.submit({"points": []})
        assert service.jobs() == []

    def test_queue_full_rejects_and_unregisters(self, tmp_path):
        # No workers started: the queue fills immediately.
        service = make_service(tmp_path, queue_size=1)
        service.submit(payload())
        with pytest.raises(QueueFullError):
            service.submit(payload(2))
        assert len(service.jobs()) == 1

    def test_checkpoint_keyed_by_config_hash(self, tmp_path):
        service = make_service(tmp_path)
        first = service.submit(payload())
        second = service.submit(payload())
        other = service.submit(payload(2))
        assert first["checkpoint"] == second["checkpoint"]
        assert first["checkpoint"] != other["checkpoint"]
        assert first["config_hash"] in first["checkpoint"]


class TestBreaker:
    def test_consecutive_partial_jobs_open_execute_breaker(self, tmp_path):
        service = make_service(
            tmp_path,
            job_runner=partial_runner,
            breaker_threshold=2,
            breaker_reset=30.0,
        )
        service.start()
        first = wait_for_job(service, service.submit(payload())["id"])
        assert first["status"] == "partial"
        second = wait_for_job(service, service.submit(payload())["id"])
        assert second["status"] == "partial"
        assert service.execute_breaker.state == OPEN
        ready, reason = service.ready()
        assert not ready and "breaker" in reason

    def test_crashing_runner_counts_as_failure(self, tmp_path):
        def crashing(job):
            raise RuntimeError("pool exploded")

        service = make_service(
            tmp_path, job_runner=crashing, breaker_threshold=1
        )
        service.start()
        record = wait_for_job(service, service.submit(payload())["id"])
        assert record["status"] == "failed"
        assert "RuntimeError" in record["error"]
        assert service.execute_breaker.state == OPEN

    def test_breaker_open_requeues_rather_than_drops(self, tmp_path):
        service = make_service(
            tmp_path,
            job_runner=partial_runner,
            breaker_threshold=1,
            breaker_reset=0.3,
        )
        service.start()
        wait_for_job(service, service.submit(payload())["id"])
        assert service.execute_breaker.state == OPEN
        # Submitted while open: the worker must hold it (requeue), then
        # run it as the half-open probe after the reset timeout.
        service.job_runner = ok_runner
        record = wait_for_job(
            service, service.submit(payload(2))["id"], timeout=15.0
        )
        assert record["status"] == "done"
        assert service.execute_breaker.state == "closed"
        assert service.ready() == (True, "ok")

    def test_client_errors_do_not_trip_ingest_breaker(self, tmp_path):
        service = make_service(tmp_path, breaker_threshold=2)
        for _ in range(5):
            with pytest.raises(AdmissionError):
                service.submit({"points": []})
        assert service.ingest_breaker.state == "closed"


class TestDrain:
    def test_drain_finishes_backlog_and_writes_manifest(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        ids = [service.submit(payload(i + 1))["id"] for i in range(3)]
        assert service.drain(grace=10.0)
        for job_id in ids:
            assert service.job(job_id)["status"] == "done"
        manifest = RunManifest.load(tmp_path / "spool" / "manifest.json")
        assert manifest.data["tool"] == "repro-serve"
        assert len(manifest.data["config"]["jobs"]) == 3
        assert (tmp_path / "spool" / "trace.jsonl").exists()

    def test_draining_service_rejects_and_flips_readiness(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        assert service.drain(grace=5.0)
        assert service.draining
        ready, reason = service.ready()
        assert not ready and reason == "draining"
        with pytest.raises(QueueFullError):
            service.submit(payload())

    def test_hung_job_abandoned_to_checkpoint(self, tmp_path):
        release = []

        def hanging(job):
            while not release:
                time.sleep(0.02)
            return ok_runner(job)

        service = make_service(tmp_path, job_runner=hanging)
        service.start()
        record = service.submit(payload())
        deadline = time.monotonic() + 5.0
        while service.job(record["id"])["status"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert not service.drain(grace=0.2)  # not a clean drain
        final = service.job(record["id"])
        assert final["status"] == "checkpointed"
        assert final["checkpoint"] is not None
        release.append(True)  # let the worker thread exit


class TestWatchdogIntegration:
    def test_stall_trips_execute_breaker(self, tmp_path):
        service = make_service(tmp_path, job_deadline=60.0)
        # Simulate the watchdog verdict directly: a worker busy past
        # its deadline is reported as an execute failure.
        service.execute_breaker.failure_threshold = 1
        service._on_stall("worker-0", 61.0)
        assert service.execute_breaker.state == OPEN
        snapshot = service.execute_breaker.snapshot()
        assert snapshot["last_failures"][0]["kind"] == "timeout"


class HttpClient:
    """Tiny urllib wrapper returning (status, body_dict, headers)."""

    def __init__(self, base):
        self.base = base

    def get(self, path):
        try:
            with urllib.request.urlopen(self.base + path) as response:
                return response.status, json.loads(response.read()), dict(
                    response.headers
                )
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode("utf-8"),
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read()), dict(
                    response.headers
                )
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture
def http_service(tmp_path):
    service = make_service(tmp_path)
    service.start()
    server, thread = serve_in_thread(service)
    host, port = server.address
    yield service, HttpClient(f"http://{host}:{port}")
    server.shutdown()
    server.server_close()
    service.drain(grace=5.0)


class TestHttpApi:
    def test_healthz(self, http_service):
        _, client = http_service
        assert client.get("/healthz")[:2] == (200, {"ok": True})

    def test_readyz_ok_then_503_when_breaker_open(self, http_service):
        service, client = http_service
        status, body, _ = client.get("/readyz")
        assert (status, body["ready"]) == (200, True)
        service.execute_breaker.failure_threshold = 1
        service.execute_breaker.record_failure()
        status, body, _ = client.get("/readyz")
        assert (status, body["ready"]) == (503, False)

    def test_submit_and_poll_job(self, http_service):
        service, client = http_service
        status, record, _ = client.post("/jobs", payload(2))
        assert status == 202
        wait_for_job(service, record["id"])
        status, final, _ = client.get(f"/jobs/{record['id']}")
        assert status == 200
        assert final["status"] == "done"
        status, listing, _ = client.get("/jobs")
        assert status == 200 and len(listing["jobs"]) == 1

    def test_bad_job_is_400(self, http_service):
        _, client = http_service
        status, body, _ = client.post("/jobs", {"points": []})
        assert status == 400
        assert "non-empty" in body["error"]

    def test_malformed_json_is_400(self, http_service):
        _, client = http_service
        request = urllib.request.Request(
            client.base + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_routes_are_404(self, http_service):
        _, client = http_service
        assert client.get("/nope")[0] == 404
        assert client.get("/jobs/ghost")[0] == 404
        assert client.post("/nope", {})[0] == 404

    def test_429_carries_retry_after_header(self, tmp_path):
        service = make_service(tmp_path, queue_size=1, retry_after=3.0)
        # Workers never started: the queue stays full.
        server, _ = serve_in_thread(service)
        try:
            host, port = server.address
            client = HttpClient(f"http://{host}:{port}")
            assert client.post("/jobs", payload())[0] == 202
            status, body, headers = client.post("/jobs", payload(2))
            assert status == 429
            assert headers["Retry-After"] == "3"
            assert body["retry_after"] == 3.0
        finally:
            server.shutdown()
            server.server_close()

    def test_503_when_ingest_breaker_open(self, http_service):
        service, client = http_service
        service.ingest_breaker.failure_threshold = 1
        service.ingest_breaker.record_failure()
        status, _, headers = client.post("/jobs", payload())
        assert status == 503
        assert "Retry-After" in headers

    def test_metrics_snapshot_shape(self, http_service):
        service, client = http_service
        record = client.post("/jobs", payload())[1]
        wait_for_job(service, record["id"])
        status, body, _ = client.get("/metrics")
        assert status == 200
        assert body["ready"] is True
        assert body["queue"]["capacity"] == 16
        assert body["breakers"]["execute"]["state"] == "closed"
        assert body["jobs"] == {"done": 1}
        counters = body["metrics"]["counters"]
        assert counters["service.jobs.done"] == 1
        assert counters["service.admission.accepted"] == 1


class TestFlightRecorder:
    def test_job_record_carries_trace_id(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        record = service.submit(payload())
        assert isinstance(record["trace_id"], str)
        assert len(record["trace_id"]) == 16
        wait_for_job(service, record["id"])
        assert service.job(record["id"])["trace_id"] == record["trace_id"]
        assert service.drain(grace=5.0)

    def test_job_trace_assembles_span_tree(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        record = service.submit(payload())
        wait_for_job(service, record["id"])
        trace = service.job_trace(record["id"])
        assert trace["job"] == record["id"]
        assert trace["trace_id"] == record["trace_id"]
        (root,) = trace["tree"]
        assert root["name"] == "job"
        assert root["parent_span_id"] is None
        child_names = {child["name"] for child in root["children"]}
        assert {"admission", "queue_wait", "service_job"} <= child_names
        for child in root["children"]:
            assert child["trace_id"] == record["trace_id"]
            assert child["parent_span_id"] == root["span_id"]
        assert trace["spans"] >= 4
        assert service.drain(grace=5.0)

    def test_job_trace_unknown_job_is_none(self, tmp_path):
        assert make_service(tmp_path).job_trace("ghost") is None

    def test_status_latency_block_populates(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        record = service.submit(payload())
        wait_for_job(service, record["id"])
        assert service.drain(grace=5.0)
        latency = service.status()["latency"]
        for name in (
            "latency.admission_seconds",
            "latency.queue_wait_seconds",
            "latency.execute_seconds",
            "latency.job_seconds",
        ):
            summary = latency[name]
            assert summary["count"] == 1
            for quantile in ("p50", "p95", "p99", "p999"):
                assert summary[quantile] >= 0.0
        # e2e covers execute: its quantile cannot be below execute's.
        assert (
            latency["latency.job_seconds"]["p50"]
            >= latency["latency.execute_seconds"]["p50"] * 0.5
        )

    def test_latency_block_visible_before_first_job(self, tmp_path):
        latency = make_service(tmp_path).status()["latency"]
        assert latency["latency.job_seconds"]["count"] == 0

    def test_http_trace_endpoint(self, http_service):
        service, client = http_service
        record = client.post("/jobs", payload())[1]
        wait_for_job(service, record["id"])
        status, trace, _ = client.get(f"/jobs/{record['id']}/trace")
        assert status == 200
        assert trace["trace_id"] == record["trace_id"]
        assert trace["tree"][0]["name"] == "job"
        from repro.obs.validate import validate_job_trace

        assert validate_job_trace(trace) == []

    def test_http_trace_unknown_job_is_404(self, http_service):
        _, client = http_service
        assert client.get("/jobs/ghost/trace")[0] == 404

    def test_failed_job_still_records_latency_and_trace(self, tmp_path):
        def boom(job):
            raise RuntimeError("runner died")

        service = make_service(tmp_path, job_runner=boom)
        service.start()
        record = service.submit(payload())
        final = wait_for_job(service, record["id"])
        assert final["status"] == "failed"
        trace = service.job_trace(record["id"])
        (root,) = trace["tree"]
        assert root["attrs"]["status"] == "failed"
        names = {child["name"] for child in root["children"]}
        assert "service_job" in names
        (execute,) = [
            c for c in root["children"] if c["name"] == "service_job"
        ]
        assert execute["attrs"]["error"] is True
        latency = service.status()["latency"]
        assert latency["latency.job_seconds"]["count"] == 1
        service.drain(grace=5.0)


class TestCircuitOpenErrorShape:
    def test_submit_surfaces_circuit_open(self, tmp_path):
        service = make_service(tmp_path)
        service.ingest_breaker.failure_threshold = 1
        service.ingest_breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            service.submit(payload())


class TestStorageIntegrity:
    """Disk faults degrade gracefully; the scrubber flips readiness."""

    @staticmethod
    def enospc_runner(job):
        import errno
        import os

        raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))

    def test_enospc_fails_job_and_trips_breaker(self, tmp_path):
        service = make_service(
            tmp_path,
            job_runner=self.enospc_runner,
            breaker_threshold=1,
        )
        service.start()
        final = wait_for_job(service, service.submit(payload())["id"])
        assert final["status"] == "failed"
        assert "No space left" in final["error"]
        assert service.execute_breaker.state == OPEN
        assert not service.ready()[0]
        assert service.metrics.snapshot()["counters"]["storage.errors"] == 1

    def test_healthz_carries_storage_detail_until_clean_job(self, tmp_path):
        service = make_service(
            tmp_path,
            job_runner=self.enospc_runner,
            breaker_threshold=10,  # stay closed: isolate the health detail
        )
        service.start()
        wait_for_job(service, service.submit(payload())["id"])
        health = service.health()
        assert health["ok"] is True
        assert "No space left" in health["storage"]["last_error"]
        assert "No space left" in service.status()["storage"]["last_error"]
        # A fully successful job clears the stashed detail.
        service.job_runner = ok_runner
        wait_for_job(service, service.submit(payload(2))["id"])
        assert service.health() == {"ok": True}
        assert service.drain(grace=5.0)

    def test_healthz_http_payload_gains_storage_block(self, tmp_path):
        service = make_service(
            tmp_path, job_runner=self.enospc_runner, breaker_threshold=10
        )
        service.start()
        server, _ = serve_in_thread(service)
        try:
            host, port = server.address
            client = HttpClient(f"http://{host}:{port}")
            assert client.get("/healthz")[:2] == (200, {"ok": True})
            wait_for_job(service, service.submit(payload())["id"])
            status, body, _ = client.get("/healthz")
            assert status == 200
            assert body["ok"] is True
            assert "No space left" in body["storage"]["last_error"]
        finally:
            server.shutdown()
            server.server_close()
            service.drain(grace=5.0)

    def test_scrubber_flips_readiness_on_unrepairable(self, tmp_path):
        service = make_service(tmp_path, scrub_interval=3600.0)
        service.spool_dir.mkdir(parents=True, exist_ok=True)
        corrupt = service.spool_dir / "deadbeefdeadbeef.ckpt"
        corrupt.write_text(
            'F1 00000000 7 {"a": 1}\nF1 00000000 7 {"b": 2}\n',
            encoding="utf-8",
        )
        service.scrubber.scrub_once()
        ready, reason = service.ready()
        assert not ready
        assert "repro-fsck" in reason
        snapshot = service.status()["storage"]
        assert snapshot["scrubber"]["healthy"] is False
        assert snapshot["scrubber"]["passes"] == 1
        # The operator repairs offline; the next pass clears readiness.
        corrupt.unlink()
        service.scrubber.scrub_once()
        assert service.ready()[0]

    def test_scrubber_lifecycle_with_service(self, tmp_path):
        service = make_service(tmp_path, scrub_interval=0.01)
        service.start()
        deadline = time.monotonic() + 5.0
        while service.scrubber.passes == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.scrubber.passes >= 1
        assert (
            service.metrics.snapshot()["counters"]["storage.scrub.scans"]
            >= 1
        )
        assert service.drain(grace=5.0)
        passes = service.scrubber.passes
        time.sleep(0.05)
        assert service.scrubber.passes == passes  # stopped with drain

    def test_status_storage_block_without_scrubber(self, tmp_path):
        service = make_service(tmp_path)
        snapshot = service.status()["storage"]
        assert snapshot["counters"]["storage.errors"] == 0
        assert snapshot["counters"]["storage.scrub.scans"] == 0
        assert snapshot["last_error"] is None
        assert snapshot["scrubber"] is None
