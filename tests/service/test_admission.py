"""Admission control: shape validation, probe budget, config identity."""

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.service.admission import (
    AdmissionController,
    estimate_probe_count,
    parse_points,
)


class Workload:
    """Stub with the two attributes the cost model reads."""

    segments = 2
    references_per_segment = 1_000


def payload(n=1):
    return {
        "points": [
            {"l1": "4K-16", "l2": "64K-32", "associativity": 2 + 2 * i}
            for i in range(n)
        ]
    }


def make_controller(**kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return AdmissionController(Workload(), **kwargs)


class TestParsePoints:
    def test_valid_points(self):
        points = parse_points(payload(2)["points"])
        assert [p.associativity for p in points] == [2, 4]
        assert points[0].l1 == "4K-16"

    def test_empty_list_rejected(self):
        with pytest.raises(AdmissionError, match="non-empty"):
            parse_points([])

    def test_non_list_rejected(self):
        with pytest.raises(AdmissionError):
            parse_points({"l1": "4K-16"})

    def test_missing_field_names_the_index(self):
        with pytest.raises(AdmissionError, match=r"points\[1\]"):
            parse_points(
                [payload()["points"][0], {"l1": "4K-16", "l2": "64K-32"}]
            )

    def test_bad_geometry_rejected_at_admission(self):
        with pytest.raises(AdmissionError, match="geometry"):
            parse_points([{"l1": "huge", "l2": "64K-32", "associativity": 2}])

    def test_bad_associativity_rejected(self):
        with pytest.raises(AdmissionError, match="associativity"):
            parse_points([{"l1": "4K-16", "l2": "64K-32", "associativity": 0}])


class TestEstimate:
    def test_references_times_points(self):
        points = parse_points(payload(3)["points"])
        assert estimate_probe_count(Workload(), points) == 2 * 1_000 * 3


class TestAdmit:
    def test_admitted_config_carries_identity(self):
        points, config = make_controller().admit(payload(2))
        assert len(points) == 2
        assert config["estimated_probes"] == 4_000
        assert len(config["config_hash"]) > 8
        assert len(config["points"]) == 2

    def test_config_hash_is_content_addressed(self):
        controller = make_controller()
        _, first = controller.admit(payload(2))
        _, again = controller.admit(payload(2))
        _, other = controller.admit(payload(1))
        assert first["config_hash"] == again["config_hash"]
        assert first["config_hash"] != other["config_hash"]

    def test_budget_rejects_oversized_jobs(self):
        controller = make_controller(max_probe_budget=3_000)
        controller.admit(payload(1))  # 2000 probes: fits
        with pytest.raises(AdmissionError, match="budget"):
            controller.admit(payload(2))  # 4000 probes: rejected

    def test_non_dict_payload_rejected(self):
        with pytest.raises(AdmissionError):
            make_controller().admit(["not", "a", "dict"])

    def test_budget_validated(self):
        with pytest.raises(ConfigurationError):
            make_controller(max_probe_budget=0)

    def test_metrics_count_verdicts(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(
            Workload(), max_probe_budget=3_000, metrics=metrics
        )
        controller.admit(payload(1))
        with pytest.raises(AdmissionError):
            controller.admit(payload(2))
        with pytest.raises(AdmissionError):
            controller.admit({"points": []})
        counters = metrics.snapshot()["counters"]
        assert counters["service.admission.accepted"] == 1
        assert counters["service.admission.rejected"] == 2
