"""Tests for the resilient simulation service (``repro.service``)."""
