"""Circuit breaker state machine: trip, reject, probe, recover."""

import pytest

from repro.errors import CircuitOpenError, ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.resilience.policy import PointFailure
from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_CODES,
    CircuitBreaker,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(**kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("clock", FakeClock())
    return CircuitBreaker("test", **kwargs)


class TestClosed:
    def test_starts_closed_and_admits(self):
        breaker = make_breaker()
        assert breaker.state == CLOSED
        breaker.allow()  # does not raise

    def test_success_resets_failure_streak(self):
        breaker = make_breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken, never reached 2

    def test_consecutive_failures_trip_it(self):
        breaker = make_breaker(failure_threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN

    def test_thresholds_validated(self):
        with pytest.raises(ConfigurationError):
            make_breaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            make_breaker(reset_timeout=-1)


class TestOpen:
    def test_open_rejects_with_retry_after(self):
        clock = FakeClock()
        breaker = make_breaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(6.0)

    def test_half_opens_after_reset_timeout(self):
        clock = FakeClock()
        breaker = make_breaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN

    def test_retains_last_failures_for_postmortem(self):
        breaker = make_breaker(failure_threshold=2)
        breaker.record_failure(ValueError("first"))
        breaker.record_failure(
            PointFailure(
                key=1, kind="crash", error_type="BrokenProcessPool",
                message="died",
            )
        )
        last = breaker.snapshot()["last_failures"]
        assert len(last) == 2
        assert last[0]["error_type"] == "ValueError"
        assert last[1]["error_type"] == "BrokenProcessPool"


class TestHalfOpen:
    def make_half_open(self, **kwargs):
        clock = FakeClock()
        breaker = make_breaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock, **kwargs
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        return breaker

    def test_probe_success_closes(self):
        breaker = self.make_half_open()
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_probe_failure_reopens(self):
        breaker = self.make_half_open()
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_probe_limit_rejects_extra_calls(self):
        breaker = self.make_half_open(probe_limit=1)
        breaker.allow()  # the one admitted probe
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_success_threshold_requires_multiple_probes(self):
        breaker = self.make_half_open(success_threshold=2, probe_limit=2)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED


class TestCall:
    def test_call_records_success(self):
        breaker = make_breaker(failure_threshold=1)
        assert breaker.call(lambda: 42) == 42
        assert breaker.state == CLOSED

    def test_call_records_failure_and_reraises(self):
        breaker = make_breaker(failure_threshold=1)
        with pytest.raises(ValueError):
            breaker.call(lambda: (_ for _ in ()).throw(ValueError("boom")))
        assert breaker.state == OPEN


class TestMetrics:
    def test_metric_names_and_state_gauge(self):
        metrics = MetricsRegistry()
        clock = FakeClock()
        breaker = CircuitBreaker(
            "execute",
            failure_threshold=1,
            reset_timeout=5.0,
            metrics=metrics,
            clock=clock,
        )
        breaker.allow()
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["resilience.breaker.execute.opened"] == 1
        assert counters["resilience.breaker.execute.failures"] == 1
        assert counters["resilience.breaker.execute.rejected"] == 1
        assert (
            snapshot["gauges"]["resilience.breaker.execute.state"]
            == STATE_CODES[OPEN]
        )
