"""Consistent-hash ring: placement, stability, wrap-around."""

import pytest

from repro.errors import ConfigurationError
from repro.service.ring import DEFAULT_REPLICAS, ConsistentHashRing, ring_hash

NODES = ["shard-0", "shard-1", "shard-2", "shard-3"]


def keys(count):
    return [f"config-{index:04d}" for index in range(count)]


class TestHash:
    def test_deterministic_across_instances(self):
        assert ring_hash("abc") == ring_hash("abc")

    def test_distinct_keys_distinct_hashes(self):
        hashes = {ring_hash(key) for key in keys(500)}
        assert len(hashes) == 500


class TestPlacement:
    def test_placement_is_deterministic(self):
        # Two independently built rings (insertion order shuffled)
        # place every key identically: placement is a pure function of
        # the node set, never of construction history or any ambient
        # seed (REPRO_TRACE_SEED or otherwise).
        first = ConsistentHashRing(NODES)
        second = ConsistentHashRing(list(reversed(NODES)))
        for key in keys(200):
            assert first.node_for(key) == second.node_for(key)
            assert first.preference_order(key) == second.preference_order(
                key
            )

    def test_every_node_gets_keys(self):
        ring = ConsistentHashRing(NODES)
        assignments = ring.assignments(keys(400))
        counts = {node: 0 for node in NODES}
        for owner in assignments.values():
            counts[owner] += 1
        # 64 virtual nodes keep the split within a loose factor of
        # fair share (100 per node here).
        assert all(30 <= count <= 250 for count in counts.values()), counts

    def test_preference_order_covers_all_nodes_once(self):
        ring = ConsistentHashRing(NODES)
        for key in keys(50):
            order = ring.preference_order(key)
            assert sorted(order) == sorted(NODES)
            assert order[0] == ring.node_for(key)

    def test_empty_ring_raises(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing().node_for("k")


class TestMinimalMovement:
    def test_join_moves_at_most_a_fair_share(self):
        # Adding one node to N-1 must move roughly 1/N of the keys —
        # and only *to* the new node, never between old ones.
        population = keys(1000)
        owner_before = ConsistentHashRing(NODES[:-1]).assignments(population)
        ring = ConsistentHashRing(NODES[:-1])
        ring.add(NODES[-1])
        owner_after = ring.assignments(population)
        moved = [
            key
            for key in population
            if owner_before[key] != owner_after[key]
        ]
        assert all(owner_after[key] == NODES[-1] for key in moved)
        # Expected movement is 1/N (=250 here); allow generous slack
        # for hash variance but far below a rehash-everything 750.
        assert len(moved) <= 2 * len(population) // len(NODES)

    def test_leave_moves_only_the_leavers_keys(self):
        population = keys(1000)
        full = ConsistentHashRing(NODES)
        owner_before = {key: full.node_for(key) for key in population}
        ring = ConsistentHashRing(NODES)
        ring.remove(NODES[1])
        for key in population:
            if owner_before[key] != NODES[1]:
                assert ring.node_for(key) == owner_before[key]

    def test_remove_then_add_restores_placement(self):
        population = keys(300)
        ring = ConsistentHashRing(NODES)
        owner_before = {key: ring.node_for(key) for key in population}
        ring.remove(NODES[2])
        ring.add(NODES[2])
        assert {key: ring.node_for(key) for key in population} == (
            owner_before
        )


class TestSuccessor:
    def test_successor_is_next_distinct_node(self):
        ring = ConsistentHashRing(NODES)
        for key in keys(50):
            order = ring.preference_order(key)
            assert ring.successor(key) == order[1]
            assert ring.successor(key, exclude=(order[1],)) == order[2]

    def test_successor_wraps_past_the_highest_point(self):
        ring = ConsistentHashRing(NODES)
        top_hash, top_node = ring._points[-1]
        # A key hashing beyond the ring's highest virtual node wraps
        # to the first point.
        wrap_key = next(
            key
            for key in (f"wrap-{index}" for index in range(100_000))
            if ring_hash(key) > top_hash
        )
        assert ring.node_for(wrap_key) == ring._points[0][1]

    def test_all_excluded_raises(self):
        ring = ConsistentHashRing(NODES[:2])
        with pytest.raises(ConfigurationError):
            ring.successor("k", exclude=tuple(NODES[:2]))


class TestMembership:
    def test_add_is_idempotent(self):
        ring = ConsistentHashRing(NODES)
        ring.add(NODES[0])
        assert len(ring._points) == len(NODES) * DEFAULT_REPLICAS

    def test_contains_and_len(self):
        ring = ConsistentHashRing(NODES)
        assert NODES[0] in ring
        assert "missing" not in ring
        assert len(ring) == len(NODES)
        assert ring.nodes == sorted(NODES)
