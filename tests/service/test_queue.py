"""Bounded job queue: capacity, watermark hysteresis, drain semantics."""

import threading

import pytest

from repro.errors import ConfigurationError, QueueFullError
from repro.obs.metrics import MetricsRegistry
from repro.service.queue import BoundedJobQueue


def make_queue(**kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return BoundedJobQueue(**kwargs)


class TestBasics:
    def test_fifo_order(self):
        queue = make_queue(capacity=4)
        for item in ("a", "b", "c"):
            queue.offer(item)
        assert [queue.take(0.01) for _ in range(3)] == ["a", "b", "c"]

    def test_take_times_out_empty(self):
        assert make_queue(capacity=1).take(timeout=0.01) is None

    def test_depth_tracks_contents(self):
        queue = make_queue(capacity=4)
        assert queue.depth == 0
        queue.offer("a")
        assert queue.depth == 1
        queue.take(0.01)
        assert queue.depth == 0

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            make_queue(capacity=0)

    def test_watermarks_validated(self):
        with pytest.raises(ConfigurationError):
            make_queue(capacity=2, high_watermark=3)
        with pytest.raises(ConfigurationError):
            make_queue(capacity=4, high_watermark=2, low_watermark=3)


class TestBackpressure:
    def test_hard_capacity_rejects(self):
        queue = make_queue(capacity=1, high_watermark=1, low_watermark=0)
        queue.offer("a")
        with pytest.raises(QueueFullError):
            queue.offer("b")

    def test_rejection_carries_retry_after(self):
        queue = make_queue(capacity=1, retry_after=2.5)
        queue.offer("a")
        with pytest.raises(QueueFullError) as excinfo:
            queue.offer("b")
        assert excinfo.value.retry_after == 2.5

    def test_shedding_starts_at_high_watermark(self):
        queue = make_queue(capacity=4, high_watermark=2, low_watermark=1)
        queue.offer("a")
        assert not queue.shedding
        queue.offer("b")
        assert queue.shedding
        # Still below hard capacity, but shedding rejects anyway.
        with pytest.raises(QueueFullError):
            queue.offer("c")

    def test_hysteresis_resumes_below_low_watermark(self):
        queue = make_queue(capacity=4, high_watermark=2, low_watermark=1)
        queue.offer("a")
        queue.offer("b")
        assert queue.shedding
        queue.take(0.01)  # depth 1 == low watermark -> shedding clears
        assert not queue.shedding
        queue.offer("c")  # accepted again
        assert queue.depth == 2

    def test_shed_transition_counted_once(self):
        metrics = MetricsRegistry()
        queue = make_queue(
            capacity=4, high_watermark=2, low_watermark=0, metrics=metrics
        )
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(QueueFullError):
            queue.offer("c")
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["service.queue.shed_transitions"] == 1
        assert snapshot["counters"]["service.queue.rejected"] == 1
        assert snapshot["counters"]["service.queue.accepted"] == 2


class TestDrain:
    def test_closed_queue_rejects_offers(self):
        queue = make_queue(capacity=4)
        queue.close()
        with pytest.raises(QueueFullError):
            queue.offer("a")

    def test_closed_queue_still_drains_backlog(self):
        queue = make_queue(capacity=4)
        queue.offer("a")
        queue.offer("b")
        queue.close()
        assert queue.take(0.01) == "a"
        assert queue.take(0.01) == "b"
        assert queue.take(0.01) is None

    def test_close_wakes_blocked_taker(self):
        queue = make_queue(capacity=4)
        seen = []

        def taker():
            seen.append(queue.take(timeout=5.0))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert seen == [None]


class TestRequeue:
    def test_requeue_goes_to_front(self):
        queue = make_queue(capacity=4)
        queue.offer("a")
        queue.offer("b")
        first = queue.take(0.01)
        queue.requeue(first)
        assert queue.take(0.01) == "a"

    def test_requeue_bypasses_shedding_and_capacity(self):
        queue = make_queue(capacity=1, high_watermark=1, low_watermark=0)
        queue.offer("a")
        item = queue.take(0.01)
        queue.offer("b")  # back at capacity
        queue.requeue(item)  # accepted work is never dropped
        assert queue.depth == 2
        assert queue.take(0.01) == "a"


class TestSnapshot:
    def test_snapshot_fields(self):
        queue = make_queue(capacity=3, high_watermark=2, low_watermark=1)
        queue.offer("a")
        snapshot = queue.snapshot()
        assert snapshot == {
            "depth": 1,
            "capacity": 3,
            "high_watermark": 2,
            "low_watermark": 1,
            "shedding": False,
            "closed": False,
        }


class TestRetryJitter:
    def reject_hint(self, queue):
        with pytest.raises(QueueFullError) as excinfo:
            queue.offer("overflow")
        return excinfo.value.retry_after

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            make_queue(capacity=1, retry_jitter=-0.1)

    def test_zero_jitter_quotes_exact_base(self):
        queue = make_queue(capacity=1, retry_after=2.5)
        queue.offer("a")
        assert [self.reject_hint(queue) for _ in range(5)] == [2.5] * 5

    def test_jitter_sequence_is_seeded_and_byte_stable(self):
        # Two queues with the same seed quote the identical hint
        # sequence — and it matches a hand-rolled PRNG replay, so the
        # quoted floats survive JSON round-trips byte-for-byte.
        import random

        def hints(seed):
            queue = make_queue(
                capacity=1, retry_after=2.0, retry_jitter=0.5,
                jitter_seed=seed,
            )
            queue.offer("a")
            return [self.reject_hint(queue) for _ in range(8)]

        assert hints(123) == hints(123)
        rng = random.Random(123)
        expected = [
            round(2.0 * (1.0 + rng.random() * 0.5), 3) for _ in range(8)
        ]
        assert hints(123) == expected
        assert hints(7) != hints(123)

    def test_jitter_bounds_and_quantization(self):
        queue = make_queue(
            capacity=1, retry_after=1.0, retry_jitter=0.25, jitter_seed=42
        )
        queue.offer("a")
        for _ in range(50):
            hint = self.reject_hint(queue)
            assert 1.0 <= hint <= 1.25
            assert hint == round(hint, 3)

    def test_default_seed_is_fixed(self):
        first = make_queue(capacity=1, retry_after=1.0, retry_jitter=1.0)
        second = make_queue(capacity=1, retry_after=1.0, retry_jitter=1.0)
        first.offer("a")
        second.offer("a")
        assert [self.reject_hint(first) for _ in range(4)] == [
            self.reject_hint(second) for _ in range(4)
        ]

    def test_draining_rejection_is_jittered_too(self):
        queue = make_queue(
            capacity=4, retry_after=2.0, retry_jitter=0.5, jitter_seed=99
        )
        queue.close()
        hint = self.reject_hint(queue)
        assert 2.0 <= hint <= 3.0
