"""Tests for address decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.address import AddressMapper
from repro.errors import ConfigurationError


class TestAddressMapper:
    def test_block_address(self):
        mapper = AddressMapper(block_size=16, num_sets=64)
        assert mapper.block_address(0) == 0
        assert mapper.block_address(15) == 0
        assert mapper.block_address(16) == 1
        assert mapper.block_address(0x100) == 16

    def test_set_index_wraps(self):
        mapper = AddressMapper(block_size=16, num_sets=64)
        assert mapper.set_index(0) == 0
        assert mapper.set_index(16 * 64) == 0
        assert mapper.set_index(16 * 65) == 1

    def test_tag(self):
        mapper = AddressMapper(block_size=16, num_sets=64)
        assert mapper.tag(0) == 0
        assert mapper.tag(16 * 64) == 1
        assert mapper.tag(16 * 64 * 5 + 3) == 5

    def test_split_consistent(self):
        mapper = AddressMapper(block_size=32, num_sets=128)
        addr = 0xDEADBEEF
        assert mapper.split(addr) == (mapper.set_index(addr), mapper.tag(addr))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(block_size=24, num_sets=64)
        with pytest.raises(ConfigurationError):
            AddressMapper(block_size=16, num_sets=100)

    def test_rejects_negative_address(self):
        mapper = AddressMapper(16, 16)
        with pytest.raises(ValueError):
            mapper.block_address(-1)

    def test_rebuild_range_checked(self):
        mapper = AddressMapper(16, 16)
        with pytest.raises(ValueError):
            mapper.rebuild(16, 0)

    @given(
        addr=st.integers(0, 2**40 - 1),
        block_bits=st.integers(2, 7),
        set_bits=st.integers(0, 12),
    )
    @settings(max_examples=200)
    def test_rebuild_roundtrip(self, addr, block_bits, set_bits):
        mapper = AddressMapper(1 << block_bits, 1 << set_bits)
        index, tag = mapper.split(addr)
        rebuilt = mapper.rebuild(index, tag)
        # Rebuild returns the block's first byte: equal up to offset.
        assert rebuilt == (addr >> block_bits) << block_bits
        assert mapper.split(rebuilt) == (index, tag)

    @given(addr=st.integers(0, 2**32 - 1))
    @settings(max_examples=200)
    def test_distinct_blocks_have_distinct_index_tag_pairs(self, addr):
        mapper = AddressMapper(16, 256)
        other = addr + 16  # adjacent block
        assert mapper.split(addr) != mapper.split(other)
