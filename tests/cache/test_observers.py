"""Tests for probe observers and the write-back optimization accounting."""

import pytest

from repro.cache.direct_mapped import RequestKind
from repro.cache.observers import MruDistanceObserver, ProbeObserver
from repro.core.naive import NaiveLookup
from repro.core.probes import SetView


def view(tags, mru=None):
    if mru is None:
        mru = tuple(i for i, t in enumerate(tags) if t is not None)
    return SetView(tags=tuple(tags), mru_order=tuple(mru))


class TestProbeObserver:
    def test_hit_recorded(self):
        observer = ProbeObserver(NaiveLookup(4))
        observer.observe(view([1, 2, 3, 4]), 3, RequestKind.READ_IN)
        acc = observer.accumulator
        assert acc.hit_accesses == 1
        assert acc.hit_probes == 3

    def test_miss_recorded(self):
        observer = ProbeObserver(NaiveLookup(4))
        observer.observe(view([1, 2, 3, 4]), 9, RequestKind.READ_IN)
        acc = observer.accumulator
        assert acc.miss_accesses == 1
        assert acc.miss_probes == 4

    def test_optimized_writeback_costs_zero(self):
        observer = ProbeObserver(NaiveLookup(4), writeback_optimization=True)
        observer.observe(view([1, 2, 3, 4]), 2, RequestKind.WRITE_BACK)
        acc = observer.accumulator
        assert acc.writeback_accesses == 1
        assert acc.writeback_probes == 0

    def test_unoptimized_writeback_pays_lookup_probes(self):
        observer = ProbeObserver(NaiveLookup(4), writeback_optimization=False)
        observer.observe(view([1, 2, 3, 4]), 4, RequestKind.WRITE_BACK)
        acc = observer.accumulator
        assert acc.writeback_probes == 4

    def test_default_label_is_scheme_name(self):
        assert ProbeObserver(NaiveLookup(4)).label == "naive"
        assert ProbeObserver(NaiveLookup(4), label="x").label == "x"


class TestMruDistanceObserver:
    def test_counts_hit_distances(self):
        observer = MruDistanceObserver(4)
        v = view([10, 20, 30, 40], mru=[0, 1, 2, 3])
        observer.observe(v, 10, RequestKind.READ_IN)  # distance 1
        observer.observe(v, 20, RequestKind.READ_IN)  # distance 2
        observer.observe(v, 10, RequestKind.READ_IN)  # distance 1
        assert observer.counts == {1: 2, 2: 1}

    def test_misses_not_counted(self):
        observer = MruDistanceObserver(4)
        observer.observe(view([10, 20, 30, 40]), 99, RequestKind.READ_IN)
        assert observer.hits == 0

    def test_writebacks_not_counted(self):
        observer = MruDistanceObserver(4)
        observer.observe(view([10, 20, 30, 40]), 10, RequestKind.WRITE_BACK)
        assert observer.hits == 0

    def test_distribution_normalized(self):
        observer = MruDistanceObserver(4)
        v = view([10, 20, 30, 40], mru=[0, 1, 2, 3])
        for tag in (10, 10, 10, 20):
            observer.observe(v, tag, RequestKind.READ_IN)
        dist = observer.distribution()
        assert dist == pytest.approx([0.75, 0.25, 0.0, 0.0])
        assert sum(dist) == pytest.approx(1.0)

    def test_empty_distribution(self):
        assert MruDistanceObserver(4).distribution() == [0.0] * 4

    def test_update_fraction(self):
        observer = MruDistanceObserver(4)
        v = view([10, 20, 30, 40], mru=[0, 1, 2, 3])
        observer.observe(v, 10, RequestKind.READ_IN)   # head: no update
        observer.observe(v, 20, RequestKind.READ_IN)   # distance 2: update
        observer.observe(v, 99, RequestKind.READ_IN)   # miss: update
        observer.observe(v, 10, RequestKind.WRITE_BACK)  # head: no update
        assert observer.update_fraction == pytest.approx(0.5)

    def test_update_fraction_empty_set(self):
        observer = MruDistanceObserver(4)
        observer.observe(view([None] * 4, mru=[]), 1, RequestKind.READ_IN)
        assert observer.update_fraction == 1.0

    def test_update_fraction_no_accesses(self):
        assert MruDistanceObserver(4).update_fraction == 0.0
