"""Tests for the single-pass LRU stack simulator, including
cross-validation against the explicit set-associative cache."""

import pytest

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import capture_miss_stream, replay_miss_stream
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.stack import StackSimulator
from repro.errors import ConfigurationError
from repro.trace.synthetic import AtumWorkload


class TestBasics:
    def test_first_touch_is_cold(self):
        sim = StackSimulator(16, 4)
        assert sim.access(0x100) is None
        assert sim.cold_or_deep == 1

    def test_rereference_distance_one(self):
        sim = StackSimulator(16, 4)
        sim.access(0x100)
        assert sim.access(0x104) == 1  # same block

    def test_distance_counts_per_set(self):
        sim = StackSimulator(16, 4)
        # Two blocks in the same set (4 sets of 16B): 0x0 and 0x40.
        sim.access(0x00)
        sim.access(0x40)
        assert sim.access(0x00) == 2
        # A block in another set does not disturb the distance.
        sim.access(0x10)
        assert sim.access(0x40) == 2

    def test_flush_cold_starts(self):
        sim = StackSimulator(16, 4)
        sim.access(0x00)
        sim.flush()
        assert sim.access(0x00) is None

    def test_deep_rereference_lumped_with_cold(self):
        sim = StackSimulator(16, 1, max_depth=2)
        sim.access(0x00)
        sim.access(0x10)
        sim.access(0x20)  # pushes 0x00 beyond depth 2
        assert sim.access(0x00) is None
        assert sim.cold_or_deep == 4

    def test_miss_ratio_monotone_in_associativity(self):
        sim = StackSimulator(16, 4, max_depth=8)
        for addr in (0, 0x40, 0x80, 0, 0x40, 0xC0, 0, 0x80):
            sim.access(addr)
        ratios = [sim.miss_ratio(a) for a in (1, 2, 4, 8)]
        assert ratios == sorted(ratios, reverse=True)

    def test_associativity_bounds_checked(self):
        sim = StackSimulator(16, 4, max_depth=8)
        with pytest.raises(ConfigurationError):
            sim.miss_ratio(0)
        with pytest.raises(ConfigurationError):
            sim.miss_ratio(9)

    def test_distribution_sums_to_one_given_hits(self):
        sim = StackSimulator(16, 2, max_depth=4)
        for addr in (0, 0, 0x20, 0, 0x20, 0x20):
            sim.access(addr)
        dist = sim.hit_distance_distribution(4)
        assert sum(dist) == pytest.approx(1.0)

    def test_expected_mru_probes_formula(self):
        sim = StackSimulator(16, 1, max_depth=4)
        # Sequence: 0x00 cold, 0x00 at distance 1, 0x10 cold, 0x00 at
        # distance 2 -> hits at distances 1 and 2, once each.
        for addr in (0x00, 0x00, 0x10, 0x00):
            sim.access(addr)
        # f1 = f2 = 1/2 at a=2: 1 + (1*1/2 + 2*1/2) = 2.5.
        assert sim.expected_mru_hit_probes(2) == pytest.approx(2.5)


class TestCrossValidation:
    """The stack profile must agree exactly with explicit simulation.

    LRU caches with a common set count are inclusive, and both models
    implement demand allocation on read-ins and write-backs, so the
    miss counts and MRU hit distances must coincide access for access.
    """

    @pytest.fixture(scope="class")
    def stream(self):
        workload = AtumWorkload(segments=2, references_per_segment=15_000, seed=13)
        l1 = DirectMappedCache(4096, 16)
        return capture_miss_stream(iter(workload), l1)

    @pytest.mark.parametrize("associativity", [1, 2, 4, 8])
    def test_miss_counts_match_explicit_cache(self, stream, associativity):
        block, capacity_per_way = 32, 8 * 1024
        num_sets = capacity_per_way // block

        stack = StackSimulator(block, num_sets, max_depth=16).run(stream)

        explicit = SetAssociativeCache(
            capacity_per_way * associativity, block, associativity
        )
        replay_miss_stream(stream, explicit)
        explicit_misses = (
            explicit.stats.readin_misses + explicit.stats.writeback_misses
        )
        assert stack.misses(associativity) == explicit_misses

    def test_distribution_matches_observer(self, stream):
        from repro.cache.observers import MruDistanceObserver

        block, num_sets, a = 32, 256, 4
        stack = StackSimulator(block, num_sets, max_depth=16).run(stream)

        explicit = SetAssociativeCache(num_sets * block * a, block, a)
        observer = MruDistanceObserver(a)
        explicit.attach(observer)
        replay_miss_stream(stream, explicit)

        # The observer sees read-in hits only; the stack profile covers
        # read-ins and write-backs, so compare shapes loosely: same
        # dominant distance and monotone-ish decay.
        stack_dist = stack.hit_distance_distribution(a)
        observed = observer.distribution()
        assert stack_dist.index(max(stack_dist)) == observed.index(max(observed))

    def test_one_pass_beats_n_passes_in_work(self, stream):
        # Structural check of the tool's point: one profile answers
        # every associativity.
        stack = StackSimulator(32, 256, max_depth=16).run(stream)
        curve = stack.miss_ratio_curve([1, 2, 4, 8, 16])
        assert list(curve) == [1, 2, 4, 8, 16]
        values = list(curve.values())
        assert values == sorted(values, reverse=True)
