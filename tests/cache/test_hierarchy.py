"""Tests for the two-level hierarchy and miss-stream capture/replay."""

import pytest

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import (
    TwoLevelHierarchy,
    capture_miss_stream,
    replay_miss_stream,
)
from repro.cache.set_associative import SetAssociativeCache
from repro.trace.reference import FLUSH, AccessKind, Reference


def load(addr):
    return Reference(AccessKind.LOAD, addr)


def store(addr):
    return Reference(AccessKind.STORE, addr)


def small_hierarchy():
    l1 = DirectMappedCache(256, 16)
    l2 = SetAssociativeCache(1024, 32, 4)
    return TwoLevelHierarchy(l1, l2)


class TestProtocol:
    def test_l1_hit_never_reaches_l2(self):
        h = small_hierarchy()
        h.access(load(0))
        l2_accesses = h.l2.stats.accesses
        h.access(load(4))
        assert h.l2.stats.accesses == l2_accesses

    def test_l1_miss_reads_into_l2(self):
        h = small_hierarchy()
        h.access(load(0))
        assert h.l2.stats.readins == 1
        assert h.l2.contains(0)

    def test_dirty_eviction_writes_back_to_l2(self):
        h = small_hierarchy()
        h.access(store(0))
        h.access(load(256))  # conflicts in the 16-line L1
        assert h.l2.stats.writebacks == 1

    def test_l2_block_smaller_than_l1_rejected(self):
        l1 = DirectMappedCache(256, 32)
        l2 = SetAssociativeCache(1024, 16, 4)
        with pytest.raises(ValueError):
            TwoLevelHierarchy(l1, l2)

    def test_flush_reference_cold_starts_both(self):
        h = small_hierarchy()
        h.access(load(0))
        h.access(FLUSH)
        assert not h.l1.contains(0)
        assert not h.l2.contains(0)
        # Flush is not a processor reference.
        assert h.stats.processor_references == 1

    def test_run_returns_stats(self):
        h = small_hierarchy()
        stats = h.run([load(0), load(0), load(16)])
        assert stats.processor_references == 3
        assert stats.l1.readin_hits == 1

    def test_global_miss_ratio(self):
        h = small_hierarchy()
        # Two L1 misses; the second L1 miss to the same L2 block hits L2.
        h.run([load(0), load(256), load(0), load(256)])
        # L1: 16B blocks, conflict between 0 and 256 -> 4 misses.
        assert h.stats.l1.readin_misses == 4
        # L2: 32B blocks: 0 and 256 are distinct L2 blocks -> 2 cold
        # misses then 2 hits.
        assert h.stats.l2.readin_misses == 2
        assert h.stats.global_miss_ratio == pytest.approx(0.5)

    def test_inclusion_check(self):
        h = small_hierarchy()
        h.run([load(k * 16) for k in range(8)])
        assert h.inclusion_holds()


class TestMissStream:
    def trace(self):
        refs = [load(k * 16) for k in range(20)]
        refs += [store(k * 16) for k in range(5)]
        refs += [FLUSH]
        refs += [load(k * 16 + 256) for k in range(10)]
        return refs

    def test_capture_counts_processor_references(self):
        stream = capture_miss_stream(self.trace(), DirectMappedCache(256, 16))
        assert stream.processor_references == 35

    def test_capture_records_flush_markers(self):
        stream = capture_miss_stream(self.trace(), DirectMappedCache(256, 16))
        assert (-1, -1) in stream.events

    def test_replay_equals_direct_simulation(self):
        # The L2 must end in exactly the same state and stats whether
        # driven through the hierarchy or by replaying a captured
        # stream.
        trace = self.trace()

        h = small_hierarchy()
        h.run(trace)

        l1 = DirectMappedCache(256, 16)
        stream = capture_miss_stream(trace, l1)
        l2 = SetAssociativeCache(1024, 32, 4)
        replay_miss_stream(stream, l2)

        assert l2.stats.readin_hits == h.l2.stats.readin_hits
        assert l2.stats.readin_misses == h.l2.stats.readin_misses
        assert l2.stats.writeback_hits == h.l2.stats.writeback_hits
        assert l2.stats.writeback_misses == h.l2.stats.writeback_misses
        for set_a, set_b in zip(l2.sets, h.l2.sets):
            assert set_a.view() == set_b.view()

    def test_stream_counts(self):
        stream = capture_miss_stream(self.trace(), DirectMappedCache(256, 16))
        assert stream.readins + stream.writebacks == len(stream) - 1  # flush
        assert len(stream) >= 1

    def test_replay_into_multiple_geometries(self):
        trace = self.trace()
        stream = capture_miss_stream(trace, DirectMappedCache(256, 16))
        for assoc in (1, 2, 4):
            l2 = SetAssociativeCache(1024, 32, assoc)
            replay_miss_stream(stream, l2)
            assert l2.stats.accesses == stream.readins + stream.writebacks
