"""Tests for the direct-mapped write-back L1 (paper Table 3)."""

import pytest

from repro.cache.direct_mapped import DirectMappedCache, MemoryRequest, RequestKind
from repro.errors import ConfigurationError
from repro.trace.reference import AccessKind, Reference


def load(addr):
    return Reference(AccessKind.LOAD, addr)


def store(addr):
    return Reference(AccessKind.STORE, addr)


def ifetch(addr):
    return Reference(AccessKind.INSTRUCTION, addr)


class TestBasicBehaviour:
    def test_cold_miss_issues_read_in(self):
        cache = DirectMappedCache(256, 16)
        requests = cache.access(load(0x40))
        assert requests == [MemoryRequest(RequestKind.READ_IN, 0x40)]
        assert cache.stats.readin_misses == 1

    def test_read_in_address_is_block_aligned(self):
        cache = DirectMappedCache(256, 16)
        requests = cache.access(load(0x47))
        assert requests[0].address == 0x40

    def test_hit_issues_nothing(self):
        cache = DirectMappedCache(256, 16)
        cache.access(load(0x40))
        assert cache.access(load(0x48)) == []
        assert cache.stats.readin_hits == 1

    def test_conflicting_blocks_evict(self):
        cache = DirectMappedCache(256, 16)  # 16 lines
        cache.access(load(0x00))
        cache.access(load(0x100))  # same line (0x100 = 16 lines * 16B)
        assert cache.stats.evictions == 1
        assert not cache.contains(0x00)
        assert cache.contains(0x100)

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            DirectMappedCache(1000, 16)


class TestWriteBackProtocol:
    def test_store_hit_dirties_block(self):
        cache = DirectMappedCache(256, 16)
        cache.access(load(0x00))
        cache.access(store(0x04))
        requests = cache.access(load(0x100))
        # Dirty victim: read-in first, then write-back (Table 3 order).
        assert [r.kind for r in requests] == [
            RequestKind.READ_IN,
            RequestKind.WRITE_BACK,
        ]
        assert requests[1].address == 0x00
        assert cache.stats.dirty_evictions == 1

    def test_store_miss_write_allocates_dirty(self):
        cache = DirectMappedCache(256, 16)
        requests = cache.access(store(0x00))
        assert [r.kind for r in requests] == [RequestKind.READ_IN]
        # The block is now dirty: evicting it writes it back.
        requests = cache.access(load(0x100))
        assert [r.kind for r in requests] == [
            RequestKind.READ_IN,
            RequestKind.WRITE_BACK,
        ]

    def test_clean_eviction_issues_no_write_back(self):
        cache = DirectMappedCache(256, 16)
        cache.access(load(0x00))
        requests = cache.access(load(0x100))
        assert [r.kind for r in requests] == [RequestKind.READ_IN]

    def test_instruction_fetches_never_dirty(self):
        cache = DirectMappedCache(256, 16)
        cache.access(ifetch(0x00))
        requests = cache.access(ifetch(0x100))
        assert [r.kind for r in requests] == [RequestKind.READ_IN]


class TestFlush:
    def test_invalidate_all_discards(self):
        cache = DirectMappedCache(256, 16)
        cache.access(store(0x00))
        cache.invalidate_all()
        assert not cache.contains(0x00)
        # Re-access misses cleanly with no write-back of stale data.
        requests = cache.access(load(0x00))
        assert [r.kind for r in requests] == [RequestKind.READ_IN]

    def test_flush_dirty_writes_back_dirty_blocks_only(self):
        cache = DirectMappedCache(256, 16)
        cache.access(store(0x00))
        cache.access(load(0x20))
        requests = cache.flush_dirty()
        assert [r.kind for r in requests] == [RequestKind.WRITE_BACK]
        assert requests[0].address == 0x00
        assert not cache.contains(0x20)


class TestGeometry:
    def test_num_lines(self):
        assert DirectMappedCache(4096, 16).num_lines == 256
        assert DirectMappedCache(16384, 32).num_lines == 512

    def test_victim_address_reconstruction(self):
        # A dirty block evicted from a high line must write back its
        # original address, not the incoming one.
        cache = DirectMappedCache(256, 16)
        victim_addr = 0xF0 + 7 * 256
        cache.access(store(victim_addr))
        requests = cache.access(load(0xF0))
        assert requests[1].address == (victim_addr >> 4) << 4
