"""Tests for the packed (columnar) miss stream and its RPM2 artifact."""

import gzip
import pickle

import pytest

from repro.cache.artifacts import (
    StreamArtifactStore,
    get_artifact_store,
    set_artifact_store,
)
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import (
    FLUSH_MARKER,
    MissStream,
    cached_packed_miss_stream,
    capture_miss_stream,
    clear_miss_stream_cache,
    replay_miss_stream,
    split_stream_at_flushes,
)
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.stream import PackedMissStream
from repro.errors import TraceFormatError
from repro.obs.metrics import get_metrics
from repro.trace.synthetic import AtumWorkload


@pytest.fixture(scope="module")
def legacy_stream():
    workload = AtumWorkload(segments=3, references_per_segment=4_000, seed=7)
    return capture_miss_stream(iter(workload), DirectMappedCache(2048, 16))


@pytest.fixture(scope="module")
def packed(legacy_stream):
    return PackedMissStream.from_miss_stream(legacy_stream)


class TestConversion:
    def test_roundtrip_through_packed(self, legacy_stream, packed):
        back = packed.to_miss_stream()
        assert back.events == legacy_stream.events
        assert back.processor_references == legacy_stream.processor_references

    def test_iter_events_matches_legacy_inline_flushes(
        self, legacy_stream, packed
    ):
        assert list(packed.iter_events()) == legacy_stream.events

    def test_len_counts_flush_markers_like_legacy(self, legacy_stream, packed):
        assert len(packed) == len(legacy_stream)
        assert packed.n_flushes == legacy_stream.events.count(FLUSH_MARKER)

    def test_readin_writeback_counts_match_legacy(self, legacy_stream, packed):
        assert packed.readins == legacy_stream.readins
        assert packed.writebacks == legacy_stream.writebacks

    def test_counts_invalidate_on_append(self):
        stream = PackedMissStream()
        stream.append(0, 64)
        assert (stream.readins, stream.writebacks) == (1, 0)
        stream.append(1, 128)
        assert (stream.readins, stream.writebacks) == (1, 1)

    def test_from_events_flushes(self):
        stream = PackedMissStream.from_events(
            [(0, 32), FLUSH_MARKER, (1, 64)], processor_references=9
        )
        assert stream.n_events == 2
        assert list(stream.flush_offsets) == [1]
        assert list(stream.iter_events()) == [(0, 32), FLUSH_MARKER, (1, 64)]


class TestSplit:
    def test_split_matches_legacy_split(self, legacy_stream, packed):
        legacy_segments = split_stream_at_flushes(legacy_stream)
        packed_segments = packed.split_at_flushes()
        assert len(packed_segments) == len(legacy_segments)
        for legacy_seg, packed_seg in zip(legacy_segments, packed_segments):
            assert list(packed_seg.iter_events()) == legacy_seg.events
            assert (
                packed_seg.processor_references
                == legacy_seg.processor_references
            )

    def test_segments_are_zero_copy_views(self, packed):
        segments = packed.split_at_flushes()
        assert sum(seg.n_events for seg in segments) == packed.n_events
        for seg in segments:
            assert seg.n_flushes == 0


class TestReplayDispatch:
    def test_packed_replay_matches_legacy_replay(self, legacy_stream, packed):
        a = SetAssociativeCache(16 * 1024, 32, 4)
        b = SetAssociativeCache(16 * 1024, 32, 4)
        replay_miss_stream(legacy_stream, a)
        replay_miss_stream(packed, b)
        assert a.stats.__dict__ == b.stats.__dict__
        for set_a, set_b in zip(a.sets, b.sets):
            assert set_a.view() == set_b.view()


class TestRpm2SaveLoad:
    def test_roundtrip(self, packed, tmp_path):
        path = tmp_path / "stream.rpm2"
        packed.save(path)
        loaded = PackedMissStream.load(path)
        assert list(loaded.iter_events()) == list(packed.iter_events())
        assert loaded.processor_references == packed.processor_references

    def test_mmap_load_is_lazy_and_equal(self, packed, tmp_path):
        path = tmp_path / "stream.rpm2"
        packed.save(path)
        mapped = PackedMissStream.load(path, mmap=True)
        eager = PackedMissStream.load(path, mmap=False)
        assert list(mapped.codes) == list(eager.codes)
        assert list(mapped.addresses) == list(eager.addresses)
        assert list(mapped.flush_offsets) == list(eager.flush_offsets)

    def test_gzip_roundtrip(self, packed, tmp_path):
        path = tmp_path / "stream.rpm2.gz"
        packed.save(path)
        with gzip.open(path, "rb") as handle:
            assert handle.read(4) == b"RPM2"
        loaded = PackedMissStream.load(path)
        assert list(loaded.iter_events()) == list(packed.iter_events())

    def test_content_hash_stable_across_roundtrip(self, packed, tmp_path):
        path = tmp_path / "stream.rpm2"
        packed.save(path)
        assert PackedMissStream.load(path).content_hash() == packed.content_hash()

    def test_legacy_rpms_loads_through_packed(self, legacy_stream, tmp_path):
        path = tmp_path / "stream.rpms"
        legacy_stream.save(path)
        loaded = PackedMissStream.load(path)
        assert list(loaded.iter_events()) == legacy_stream.events

    def test_rpm2_loads_through_legacy_missstream(self, packed, tmp_path):
        path = tmp_path / "stream.rpm2"
        packed.save(path)
        loaded = MissStream.load(path)
        assert loaded.events == list(packed.iter_events())

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.rpm2"
        PackedMissStream().save(path)
        loaded = PackedMissStream.load(path)
        assert loaded.n_events == 0
        assert loaded.n_flushes == 0

    def test_pickle_roundtrip_of_mapped_stream(self, packed, tmp_path):
        path = tmp_path / "stream.rpm2"
        packed.save(path)
        mapped = PackedMissStream.load(path, mmap=True)
        clone = pickle.loads(pickle.dumps(mapped))
        assert list(clone.iter_events()) == list(packed.iter_events())
        assert clone.processor_references == packed.processor_references


class TestRpm2Errors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rpm2"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(TraceFormatError, match="not a saved miss stream"):
            PackedMissStream.load(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.rpm2"
        path.write_bytes(b"RPM2" + b"\x00" * 4)
        with pytest.raises(TraceFormatError, match="header"):
            PackedMissStream.load(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rpm2"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="not a saved miss stream"):
            PackedMissStream.load(path)

    def test_truncated_columns(self, packed, tmp_path):
        path = tmp_path / "cut.rpm2"
        packed.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 16])
        with pytest.raises(TraceFormatError, match="column"):
            PackedMissStream.load(path, mmap=False)

    def test_unsupported_version(self, packed, tmp_path):
        path = tmp_path / "vers.rpm2"
        packed.save(path)
        data = bytearray(path.read_bytes())
        data[4] = 99
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="version"):
            PackedMissStream.load(path, mmap=False)


class TestArtifactStore:
    @pytest.fixture(autouse=True)
    def _isolate(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM_ARTIFACTS", raising=False)
        clear_miss_stream_cache()
        yield
        set_artifact_store(None)
        clear_miss_stream_cache()

    def test_env_var_configures_store(self, monkeypatch, tmp_path):
        assert get_artifact_store() is None
        monkeypatch.setenv("REPRO_STREAM_ARTIFACTS", str(tmp_path))
        store = get_artifact_store()
        assert isinstance(store, StreamArtifactStore)
        assert store.root == tmp_path

    def test_save_then_load_roundtrip(self, tmp_path):
        workload = AtumWorkload(
            segments=1, references_per_segment=1_000, seed=5
        )
        store = StreamArtifactStore(tmp_path)
        assert store.load(workload, 2048, 16) is None
        set_artifact_store(store)
        packed, ratio = cached_packed_miss_stream(workload, 2048, 16)
        entry = store.load(workload, 2048, 16)
        assert entry is not None
        loaded, loaded_ratio = entry
        assert loaded_ratio == ratio
        assert list(loaded.iter_events()) == list(packed.iter_events())

    def test_artifact_hit_skips_recapture(self, tmp_path):
        workload = AtumWorkload(
            segments=1, references_per_segment=1_000, seed=6
        )
        set_artifact_store(tmp_path)
        first, ratio = cached_packed_miss_stream(workload, 2048, 16)
        clear_miss_stream_cache()
        metrics = get_metrics()
        hits_before = metrics.counter("miss_stream.artifact_hits").value
        second, ratio_again = cached_packed_miss_stream(workload, 2048, 16)
        assert metrics.counter("miss_stream.artifact_hits").value == (
            hits_before + 1
        )
        assert ratio_again == ratio
        assert list(second.iter_events()) == list(first.iter_events())

    def test_corrupt_artifact_treated_as_miss(self, tmp_path):
        workload = AtumWorkload(
            segments=1, references_per_segment=1_000, seed=8
        )
        store = StreamArtifactStore(tmp_path)
        set_artifact_store(store)
        cached_packed_miss_stream(workload, 2048, 16)
        stream_path = next(tmp_path.glob("*.rpm2"))
        stream_path.write_bytes(b"RPM2" + b"\x00" * 3)
        assert store.load(workload, 2048, 16) is None
        clear_miss_stream_cache()
        packed, _ = cached_packed_miss_stream(workload, 2048, 16)
        assert packed.n_events > 0
        assert store.load(workload, 2048, 16) is not None
