"""Tests for the set-associative L2 cache."""

import pytest

from repro.cache.replacement import LruReplacement
from repro.cache.set_associative import SetAssociativeCache
from repro.errors import ConfigurationError


def make_cache(capacity=1024, block=32, assoc=4, **kw):
    return SetAssociativeCache(capacity, block, assoc, **kw)


class TestConstruction:
    def test_geometry(self):
        cache = make_cache(1024, 32, 4)
        assert cache.num_sets == 8

    def test_rejects_bad_associativity(self):
        with pytest.raises(ConfigurationError):
            make_cache(assoc=3)

    def test_rejects_capacity_not_multiple_of_block(self):
        with pytest.raises(ConfigurationError):
            make_cache(capacity=1000)

    def test_rejects_blocks_not_divisible_into_sets(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(64, 32, 4)  # 2 blocks, 4-way

    def test_replacement_by_name(self):
        cache = make_cache(replacement="fifo")
        assert cache.replacement.name == "fifo"


class TestReadIns:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.read_in(0x40) is False
        assert cache.read_in(0x40) is True
        assert cache.stats.readin_misses == 1
        assert cache.stats.readin_hits == 1

    def test_set_holds_associativity_blocks(self):
        cache = make_cache(1024, 32, 4)  # 8 sets
        # Four blocks mapping to set 0: addresses k * 8 * 32.
        for k in range(4):
            cache.read_in(k * 256)
        for k in range(4):
            assert cache.contains(k * 256)
        assert cache.stats.evictions == 0

    def test_lru_eviction_on_overflow(self):
        cache = make_cache(1024, 32, 4)
        for k in range(4):
            cache.read_in(k * 256)
        cache.read_in(0 * 256)  # touch block 0: now LRU is block 1
        cache.read_in(4 * 256)
        assert cache.stats.evictions == 1
        assert not cache.contains(1 * 256)
        assert cache.contains(0 * 256)

    def test_different_sets_do_not_interfere(self):
        cache = make_cache(1024, 32, 4)
        for k in range(16):
            cache.read_in(k * 32)
        assert cache.stats.evictions == 0


class TestWriteBacks:
    def test_write_back_hit_dirties_and_touches(self):
        cache = make_cache(1024, 32, 4)
        for k in range(4):
            cache.read_in(k * 256)
        cache.write_back(0)  # block 0 now MRU and dirty
        cache.read_in(4 * 256)  # evicts LRU = block 1
        assert cache.contains(0)
        assert not cache.contains(256)
        assert cache.stats.writeback_hits == 1

    def test_write_back_miss_allocates_dirty(self):
        cache = make_cache(1024, 32, 4)
        assert cache.write_back(0x40) is False
        assert cache.stats.writeback_misses == 1
        assert cache.contains(0x40)
        # Evicting it counts a dirty eviction.
        index = cache.mapper.set_index(0x40)
        for k in range(1, 5):
            cache.read_in((index + 8 * k) * 32)
        assert cache.stats.dirty_evictions == 1

    def test_dirty_eviction_counted(self):
        cache = make_cache(1024, 32, 4)
        cache.read_in(0)
        cache.write_back(0)
        for k in range(1, 5):
            cache.read_in(k * 256)
        assert cache.stats.dirty_evictions == 1


class TestStats:
    def test_local_miss_ratio_counts_both_kinds(self):
        cache = make_cache()
        cache.read_in(0)      # miss
        cache.read_in(0)      # hit
        cache.write_back(0)   # hit
        cache.write_back(512)  # miss
        assert cache.stats.local_miss_ratio == pytest.approx(0.5)
        assert cache.stats.fraction_writebacks == pytest.approx(0.5)

    def test_invalidate_all(self):
        cache = make_cache()
        cache.read_in(0)
        cache.invalidate_all()
        assert not cache.contains(0)


class TestObserverProtocol:
    def test_observers_see_pre_update_state(self):
        seen = []

        class Spy:
            def observe(self, view, tag, kind):
                seen.append((view.tags, tag))

        cache = make_cache(1024, 32, 4)
        cache.attach(Spy())
        cache.read_in(0)
        cache.read_in(0)
        # First access saw an empty set; second saw the installed tag.
        assert seen[0][0] == (None, None, None, None)
        assert seen[1][0].count(None) == 3

    def test_multiple_observers_all_notified(self):
        calls = []

        class Spy:
            def __init__(self, name):
                self.name = name

            def observe(self, view, tag, kind):
                calls.append(self.name)

        cache = make_cache()
        cache.attach_all([Spy("a"), Spy("b")])
        cache.read_in(0)
        assert calls == ["a", "b"]


class TestReplacementIntegration:
    def test_first_fill_uses_frame_order(self):
        cache = make_cache(1024, 32, 4, replacement=LruReplacement(fill="first"))
        for k in range(3):
            cache.read_in(k * 256)
        view = cache.sets[0].view()
        assert view.tags[0] is not None
        assert view.tags[1] is not None
        assert view.tags[2] is not None
        assert view.tags[3] is None

    def test_random_fill_spreads_blocks(self):
        cache = make_cache(8192, 32, 8, replacement=LruReplacement(fill="random"))
        # One block per set; over 32 sets the filled frame positions
        # should not all be frame 0.
        for index in range(32):
            cache.read_in(index * 32)
        frames = set()
        for s in cache.sets:
            for frame, tag in enumerate(s.view().tags):
                if tag is not None:
                    frames.add(frame)
        assert len(frames) > 1
