"""Tests for replacement policies and fill order."""

import pytest

from repro.cache.replacement import (
    FifoReplacement,
    LruReplacement,
    RandomReplacement,
    make_replacement,
)
from repro.cache.set_state import CacheSet
from repro.errors import ConfigurationError


def full_set(tags):
    s = CacheSet(len(tags))
    for frame, tag in enumerate(tags):
        s.install(frame, tag)
    return s


class TestLru:
    def test_prefers_invalid_frames(self):
        policy = LruReplacement(fill="first")
        s = CacheSet(4)
        s.install(0, 100)
        assert policy.victim(s) == 1

    def test_evicts_least_recently_used(self):
        policy = LruReplacement()
        s = full_set([100, 200, 300])
        # Install order 0,1,2 -> LRU is frame 0.
        assert policy.victim(s) == 0
        s.touch(0)
        assert policy.victim(s) == 1

    def test_random_fill_covers_all_invalid_frames(self):
        policy = LruReplacement(fill="random", seed=3)
        s = CacheSet(8)
        s.install(0, 1)
        chosen = {policy.victim(s) for _ in range(200)}
        assert chosen == set(range(1, 8))

    def test_random_fill_deterministic_by_seed(self):
        def sequence(seed):
            policy = LruReplacement(fill="random", seed=seed)
            s = CacheSet(8)
            return [policy.victim(s) for _ in range(20)]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)


class TestFifo:
    def test_evicts_longest_resident(self):
        policy = FifoReplacement()
        s = full_set([100, 200, 300])
        s.touch(0)  # FIFO ignores recency
        assert policy.victim(s) == 0

    def test_reinstalled_frame_is_young(self):
        policy = FifoReplacement()
        s = full_set([100, 200])
        s.install(0, 300)
        assert policy.victim(s) == 1


class TestRandom:
    def test_victim_among_valid_frames(self):
        policy = RandomReplacement(seed=1)
        s = full_set([100, 200, 300, 400])
        for _ in range(50):
            assert 0 <= policy.evict_from(s) < 4

    def test_eventually_covers_all_frames(self):
        policy = RandomReplacement(seed=1)
        s = full_set([100, 200, 300, 400])
        assert {policy.evict_from(s) for _ in range(200)} == {0, 1, 2, 3}


class TestFactory:
    def test_make_by_name(self):
        assert isinstance(make_replacement("lru"), LruReplacement)
        assert isinstance(make_replacement("fifo"), FifoReplacement)
        assert isinstance(make_replacement("random"), RandomReplacement)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_replacement("plru")

    def test_bad_fill_mode(self):
        with pytest.raises(ConfigurationError):
            LruReplacement(fill="sideways")

    def test_fill_passed_through(self):
        policy = make_replacement("lru", fill="first")
        assert policy.fill == "first"
