"""Tests for miss-stream persistence."""

import pytest

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import (
    FLUSH_MARKER,
    MissStream,
    capture_miss_stream,
    replay_miss_stream,
)
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.stream import PackedMissStream
from repro.errors import TraceFormatError
from repro.trace.synthetic import AtumWorkload


@pytest.fixture(scope="module")
def stream():
    workload = AtumWorkload(segments=2, references_per_segment=5_000, seed=3)
    return capture_miss_stream(iter(workload), DirectMappedCache(2048, 16))


class TestSaveLoad:
    def test_roundtrip(self, stream, tmp_path):
        path = tmp_path / "stream.rpms"
        stream.save(path)
        loaded = MissStream.load(path)
        assert loaded.events == stream.events
        assert loaded.processor_references == stream.processor_references

    def test_gzip_roundtrip(self, stream, tmp_path):
        path = tmp_path / "stream.rpms.gz"
        stream.save(path)
        loaded = MissStream.load(path)
        assert loaded.events == stream.events

    def test_flush_markers_survive(self, stream, tmp_path):
        assert FLUSH_MARKER in stream.events
        path = tmp_path / "s.rpms"
        stream.save(path)
        assert FLUSH_MARKER in MissStream.load(path).events

    def test_replay_of_loaded_stream_matches(self, stream, tmp_path):
        path = tmp_path / "s.rpms"
        stream.save(path)
        loaded = MissStream.load(path)

        a = SetAssociativeCache(16 * 1024, 32, 4)
        b = SetAssociativeCache(16 * 1024, 32, 4)
        replay_miss_stream(stream, a)
        replay_miss_stream(loaded, b)
        assert a.stats.readin_misses == b.stats.readin_misses
        for set_a, set_b in zip(a.sets, b.sets):
            assert set_a.view() == set_b.view()

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.rpms"
        MissStream().save(path)
        loaded = MissStream.load(path)
        assert loaded.events == []
        assert loaded.processor_references == 0


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rpms"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(TraceFormatError, match="not a saved miss stream"):
            MissStream.load(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.rpms"
        path.write_bytes(b"RPMS" + b"\x00" * 4)
        with pytest.raises(TraceFormatError, match="header"):
            MissStream.load(path)

    def test_truncated_records(self, stream, tmp_path):
        path = tmp_path / "cut.rpms"
        stream.save(path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(TraceFormatError, match="record"):
            MissStream.load(path)


class TestColumnarInterop:
    """The legacy loader reads the columnar ``RPM2`` format and back."""

    def test_legacy_load_of_rpm2_file(self, stream, tmp_path):
        packed = PackedMissStream.from_miss_stream(stream)
        path = tmp_path / "columnar.rpm2"
        packed.save(path)
        loaded = MissStream.load(path)
        assert loaded.events == stream.events
        assert loaded.processor_references == stream.processor_references

    def test_packed_load_of_rpms_file(self, stream, tmp_path):
        path = tmp_path / "legacy.rpms"
        stream.save(path)
        loaded = PackedMissStream.load(path)
        assert list(loaded.iter_events()) == stream.events
        assert loaded.processor_references == stream.processor_references

    def test_rpm2_replay_matches_legacy_replay(self, stream, tmp_path):
        path = tmp_path / "columnar.rpm2"
        PackedMissStream.from_miss_stream(stream).save(path)
        mapped = PackedMissStream.load(path, mmap=True)
        a = SetAssociativeCache(16 * 1024, 32, 4)
        b = SetAssociativeCache(16 * 1024, 32, 4)
        replay_miss_stream(stream, a)
        replay_miss_stream(mapped, b)
        assert a.stats.__dict__ == b.stats.__dict__

    def test_corrupt_rpm2_header(self, tmp_path):
        path = tmp_path / "trunc.rpm2"
        path.write_bytes(b"RPM2" + b"\x00" * 4)
        with pytest.raises(TraceFormatError, match="header"):
            PackedMissStream.load(path)
