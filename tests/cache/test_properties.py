"""Property-based system tests: random request streams through the L2
must preserve accounting identities, and the stack-simulator oracle
must agree with the explicit cache on every stream."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import MissStream, replay_miss_stream
from repro.cache.observers import ProbeObserver
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.stack import StackSimulator
from repro.core.naive import NaiveLookup
from repro.core.partial import PartialCompareLookup


@st.composite
def request_streams(draw):
    """Short streams of read-ins/write-backs over a small block pool,
    with occasional flush markers."""
    events = []
    block_pool = draw(st.integers(4, 40))
    for _ in range(draw(st.integers(1, 120))):
        roll = draw(st.integers(0, 19))
        if roll == 0:
            events.append((-1, -1))
        else:
            code = 1 if roll <= 4 else 0
            block = draw(st.integers(0, block_pool - 1))
            events.append((code, block * 32))
    stream = MissStream(events=events)
    stream.processor_references = len(events) * 5
    return stream


@given(stream=request_streams())
@settings(max_examples=100, deadline=None)
def test_accounting_identities(stream):
    l2 = SetAssociativeCache(512, 32, 4)  # 4 sets: heavy conflicts
    naive = ProbeObserver(NaiveLookup(4))
    partial = ProbeObserver(PartialCompareLookup(4, tag_bits=16))
    l2.attach_all([naive, partial])
    replay_miss_stream(stream, l2)

    requests = sum(1 for e in stream.events if e != (-1, -1))
    assert l2.stats.accesses == requests
    for observer in (naive, partial):
        acc = observer.accumulator
        assert acc.total_accesses == requests
        assert acc.hit_accesses == l2.stats.readin_hits
        assert acc.miss_accesses == l2.stats.readin_misses
        assert acc.writeback_accesses == l2.stats.writebacks
    # Naive miss probes exactly a per miss.
    assert naive.accumulator.miss_probes == 4 * l2.stats.readin_misses
    # Per-set invariants survived the stream.
    for cache_set in l2.sets:
        cache_set.check_invariants()


@given(stream=request_streams(), assoc=st.sampled_from([1, 2, 4]))
@settings(max_examples=100, deadline=None)
def test_stack_oracle_agrees_on_any_stream(stream, assoc):
    num_sets = 4
    explicit = SetAssociativeCache(num_sets * 32 * assoc, 32, assoc)
    replay_miss_stream(stream, explicit)
    explicit_misses = (
        explicit.stats.readin_misses + explicit.stats.writeback_misses
    )

    stack = StackSimulator(32, num_sets, max_depth=8).run(stream)
    assert stack.misses(assoc) == explicit_misses


@given(stream=request_streams())
@settings(max_examples=60, deadline=None)
def test_miss_monotonicity_in_associativity(stream):
    # LRU inclusion: for a fixed set count, wider associativity never
    # misses more. (A theorem for stack algorithms; checked through
    # the explicit simulator.)
    misses = []
    for assoc in (1, 2, 4, 8):
        l2 = SetAssociativeCache(4 * 32 * assoc, 32, assoc)
        replay_miss_stream(stream, l2)
        misses.append(l2.stats.readin_misses + l2.stats.writeback_misses)
    assert misses == sorted(misses, reverse=True)
