"""Property tests for miss-stream persistence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import FLUSH_MARKER, MissStream


@st.composite
def streams(draw):
    events = []
    for _ in range(draw(st.integers(0, 60))):
        if draw(st.integers(0, 9)) == 0:
            events.append(FLUSH_MARKER)
        else:
            code = draw(st.integers(0, 1))
            address = draw(st.integers(0, 2**40 - 1))
            events.append((code, address))
    return MissStream(
        events=events,
        processor_references=draw(st.integers(0, 2**32)),
    )


@given(stream=streams())
@settings(max_examples=100, deadline=None)
def test_save_load_roundtrip(stream, tmp_path_factory):
    path = tmp_path_factory.mktemp("streams") / "s.rpms"
    stream.save(path)
    loaded = MissStream.load(path)
    assert loaded.events == stream.events
    assert loaded.processor_references == stream.processor_references
    assert loaded.readins == stream.readins
    assert loaded.writebacks == stream.writebacks
