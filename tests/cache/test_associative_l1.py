"""Tests for the set-associative processor-facing L1."""

import pytest

from repro.cache.associative_l1 import AssociativeL1Cache
from repro.cache.direct_mapped import DirectMappedCache, RequestKind
from repro.errors import ConfigurationError
from repro.trace.reference import AccessKind, Reference
from repro.trace.synthetic import AtumWorkload


def load(addr):
    return Reference(AccessKind.LOAD, addr)


def store(addr):
    return Reference(AccessKind.STORE, addr)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AssociativeL1Cache(1024, 16, associativity=3)
        with pytest.raises(ConfigurationError):
            AssociativeL1Cache(1000, 16)

    def test_num_lines(self):
        cache = AssociativeL1Cache(4096, 16, associativity=4)
        assert cache.num_lines == 256


class TestProtocol:
    def test_miss_then_hit(self):
        cache = AssociativeL1Cache(1024, 16, associativity=2)
        requests = cache.access(load(0x40))
        assert [r.kind for r in requests] == [RequestKind.READ_IN]
        assert cache.access(load(0x40)) == []

    def test_dirty_victim_ordering(self):
        cache = AssociativeL1Cache(512, 16, associativity=2)  # 16 sets
        cache.access(store(0x000))
        cache.access(load(0x100))   # same set, second way
        requests = cache.access(load(0x200))  # evicts LRU = dirty 0x000
        assert [r.kind for r in requests] == [
            RequestKind.READ_IN,
            RequestKind.WRITE_BACK,
        ]
        assert requests[1].address == 0x000

    def test_lru_within_set(self):
        cache = AssociativeL1Cache(512, 16, associativity=2)
        cache.access(load(0x000))
        cache.access(load(0x100))
        cache.access(load(0x000))   # refresh
        cache.access(load(0x200))   # evicts 0x100
        assert cache.contains(0x000)
        assert not cache.contains(0x100)

    def test_invalidate(self):
        cache = AssociativeL1Cache(512, 16, associativity=2)
        cache.access(store(0x40))
        assert cache.invalidate(0x40) is True  # was dirty
        assert cache.invalidate(0x40) is None
        assert not cache.contains(0x40)

    def test_invalidate_all(self):
        cache = AssociativeL1Cache(512, 16, associativity=2)
        cache.access(load(0x40))
        cache.invalidate_all()
        assert not cache.contains(0x40)


class TestDirectMappedEquivalence:
    def test_one_way_matches_direct_mapped(self):
        """At associativity 1 the request streams must be identical."""
        workload = AtumWorkload(segments=1, references_per_segment=8_000, seed=9)
        direct = DirectMappedCache(4096, 16)
        one_way = AssociativeL1Cache(4096, 16, associativity=1)
        for ref in workload:
            if ref.is_flush:
                direct.invalidate_all()
                one_way.invalidate_all()
                continue
            assert direct.access(ref) == one_way.access(ref)
        assert direct.stats.readin_misses == one_way.stats.readin_misses
        assert direct.stats.dirty_evictions == one_way.stats.dirty_evictions


class TestAssociativityEffect:
    def test_wider_l1_misses_less(self):
        workload = list(
            AtumWorkload(segments=1, references_per_segment=15_000, seed=9)
        )
        ratios = []
        for assoc in (1, 2, 4):
            cache = AssociativeL1Cache(4096, 16, associativity=assoc)
            for ref in workload:
                if not ref.is_flush:
                    cache.access(ref)
            ratios.append(cache.stats.readin_miss_ratio)
        assert ratios[0] > ratios[1] >= ratios[2]

    def test_works_in_hierarchy(self):
        from repro.cache.hierarchy import TwoLevelHierarchy
        from repro.cache.set_associative import SetAssociativeCache

        workload = AtumWorkload(segments=1, references_per_segment=5_000, seed=9)
        l1 = AssociativeL1Cache(4096, 16, associativity=2)
        l2 = SetAssociativeCache(64 * 1024, 32, 4)
        hierarchy = TwoLevelHierarchy(l1, l2)
        stats = hierarchy.run(iter(workload))
        assert stats.l2.readins == l1.stats.readin_misses
