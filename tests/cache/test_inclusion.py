"""Tests for multi-level inclusion enforcement and write-back hints."""

import pytest

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import TwoLevelHierarchy
from repro.cache.set_associative import SetAssociativeCache
from repro.trace.reference import AccessKind, Reference
from repro.trace.synthetic import AtumWorkload


def load(addr):
    return Reference(AccessKind.LOAD, addr)


def store(addr):
    return Reference(AccessKind.STORE, addr)


def build(enforce=False, hints=False, l1_cap=2048, l2_cap=1024):
    # The L1 is deliberately *larger* than the toy L2 here so that
    # addresses conflicting in one L2 set occupy distinct L1 lines —
    # letting the tests observe back-invalidation directly.
    l1 = DirectMappedCache(l1_cap, 16)
    l2 = SetAssociativeCache(l2_cap, 32, 4)
    return TwoLevelHierarchy(
        l1, l2, enforce_inclusion=enforce, track_writeback_hints=hints
    )


class TestInclusionEnforcement:
    def test_back_invalidation_drops_l1_copy(self):
        h = build(enforce=True)
        # Fill one L2 set (4 frames) then overflow it; the evicted L2
        # block's L1 copy must disappear. Addresses k*256 share L2 set
        # 0 (8 sets of 32B) but land in distinct L1 lines (128 lines).
        h.access(load(0))
        for k in range(1, 5):
            h.access(load(k * 256))
        assert not h.l2.contains(0)
        assert not h.l1.contains(0)
        assert h.inclusion.back_invalidations >= 1

    def test_dirty_back_invalidation_counted(self):
        h = build(enforce=True)
        h.access(store(0))
        for k in range(1, 5):
            h.access(load(k * 256))
        assert h.inclusion.dirty_back_invalidations >= 1

    def test_inclusion_invariant_holds_under_enforcement(self):
        workload = AtumWorkload(segments=1, references_per_segment=15_000, seed=3)
        l1 = DirectMappedCache(4096, 16)
        l2 = SetAssociativeCache(64 * 1024, 32, 4)
        h = TwoLevelHierarchy(l1, l2, enforce_inclusion=True)
        h.run(iter(workload))
        assert h.inclusion_holds()
        # Write-backs can only miss in the rare corner where the
        # read-in issued just before them evicted the victim's own L2
        # block (the L1 has already dropped its copy at that point, so
        # back-invalidation cannot intercept it).
        assert l2.stats.writeback_misses <= l2.stats.writebacks * 0.02

    def test_without_enforcement_inclusion_can_break(self):
        workload = AtumWorkload(segments=1, references_per_segment=15_000, seed=3)
        l1 = DirectMappedCache(4096, 16)
        l2 = SetAssociativeCache(8 * 1024, 32, 2)
        h = TwoLevelHierarchy(l1, l2)
        h.run(iter(workload))
        assert not h.inclusion_holds()


class TestWritebackHints:
    def test_hint_correct_when_block_stays(self):
        h = build(hints=True)
        h.access(store(0))         # read in + dirty
        # 2048 conflicts with 0 in the 128-line L1 -> dirty write-back.
        h.access(load(2048))
        assert h.inclusion.hints_consulted == 1
        assert h.inclusion.hints_correct == 1

    def test_hint_wrong_when_l2_evicted_block(self):
        h = build(hints=True)
        h.access(store(0))
        # Evict block 0 from L2 (fill its 4-way set) without touching
        # L1 line 0: k*256+16 shares L2 set 0 but lands in L1 line
        # 16k+1.
        for k in range(1, 5):
            h.access(load(k * 256 + 16))
        assert not h.l2.contains(0)
        # Now force the dirty L1 copy of 0 out -> write-back misses.
        h.access(load(2048))
        assert h.inclusion.hints_consulted == 1
        assert h.inclusion.hints_wrong == 1

    def test_hints_nearly_always_correct_with_inclusion(self):
        workload = AtumWorkload(segments=1, references_per_segment=15_000, seed=5)
        l1 = DirectMappedCache(4096, 16)
        l2 = SetAssociativeCache(16 * 1024, 32, 4)
        h = TwoLevelHierarchy(
            l1, l2, enforce_inclusion=True, track_writeback_hints=True
        )
        h.run(iter(workload))
        assert h.inclusion.hints_consulted > 100
        # Only the read-in-evicts-own-victim corner can invalidate a
        # hint under enforced inclusion (see the invariant test).
        assert h.inclusion.hint_accuracy > 0.99

    def test_hints_mostly_correct_without_inclusion(self):
        # The paper: indicators can be used as hints, "not always
        # correct", even without inclusion. Accuracy should be high
        # because write-back misses are rare.
        workload = AtumWorkload(segments=1, references_per_segment=15_000, seed=5)
        l1 = DirectMappedCache(4096, 16)
        l2 = SetAssociativeCache(64 * 1024, 32, 4)
        h = TwoLevelHierarchy(l1, l2, track_writeback_hints=True)
        h.run(iter(workload))
        assert h.inclusion.hints_consulted > 100
        assert h.inclusion.hint_accuracy > 0.9

    def test_hint_accuracy_empty(self):
        h = build(hints=True)
        assert h.inclusion.hint_accuracy == 0.0

    def test_flush_clears_hints(self):
        h = build(hints=True)
        h.access(store(0))
        h.flush()
        h.access(load(0))     # re-read after flush
        h.access(load(256))   # evicts; victim clean now, no wb
        # The pre-flush hint must not have survived to mislead.
        assert h.inclusion.hints_wrong == 0
