"""Tests for the coherency-invalidation model (paper footnote 1)."""

import pytest

from repro.cache.coherence import InvalidationInjector, run_with_invalidations
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import capture_miss_stream
from repro.cache.set_associative import SetAssociativeCache
from repro.errors import ConfigurationError
from repro.trace.synthetic import AtumWorkload


def small_l2(assoc=4, capacity=4096):
    return SetAssociativeCache(capacity, 32, assoc)


class TestInjector:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            InvalidationInjector(small_l2(), rate=1.5)

    def test_invalidate_resident_block(self):
        l2 = small_l2()
        l2.read_in(0x100)
        injector = InvalidationInjector(l2, seed=1)
        assert injector.invalidate_random_block()
        assert not l2.contains(0x100)
        assert injector.stats.invalidations == 1

    def test_empty_cache_yields_no_invalidation(self):
        injector = InvalidationInjector(small_l2(), seed=1)
        assert not injector.invalidate_random_block()
        assert injector.stats.invalidations == 0
        assert injector.stats.attempts == 1

    def test_l1_copy_dropped_too(self):
        l1 = DirectMappedCache(1024, 16)
        l2 = small_l2()
        from repro.trace.reference import AccessKind, Reference

        l1.access(Reference(AccessKind.LOAD, 0x100))
        l2.read_in(0x100)
        injector = InvalidationInjector(l2, l1=l1, seed=1)
        injector.invalidate_random_block()
        assert not l1.contains(0x100)
        assert injector.stats.l1_invalidations >= 1

    def test_zero_rate_never_fires(self):
        l2 = small_l2()
        l2.read_in(0)
        injector = InvalidationInjector(l2, rate=0.0, seed=1)
        for _ in range(1000):
            injector.tick()
        assert injector.stats.invalidations == 0

    def test_deterministic_by_seed(self):
        def run(seed):
            l2 = small_l2()
            for k in range(16):
                l2.read_in(k * 32)
            injector = InvalidationInjector(l2, rate=0.5, seed=seed)
            for _ in range(100):
                injector.tick()
            return injector.stats.invalidations

        assert run(3) == run(3)

    def test_utilization_sampling(self):
        l2 = small_l2(assoc=4, capacity=4096)  # 128 frames
        for k in range(64):
            l2.read_in(k * 32)
        injector = InvalidationInjector(l2, seed=1)
        utilization = injector.sample_utilization()
        assert utilization == pytest.approx(0.5)
        assert injector.stats.utilization_samples == [utilization]


class TestFootnoteOne:
    """Wider associativity reuses invalidated frames faster."""

    @pytest.fixture(scope="class")
    def stream(self):
        workload = AtumWorkload(segments=1, references_per_segment=25_000, seed=17)
        l1 = DirectMappedCache(2048, 16)  # small L1: dense miss stream
        return capture_miss_stream(iter(workload), l1)

    def test_utilization_rises_with_associativity(self, stream):
        utilizations = {}
        for assoc in (1, 4):
            l2 = SetAssociativeCache(16 * 1024, 32, assoc)
            injector = InvalidationInjector(l2, rate=0.2, seed=23)
            stats = run_with_invalidations(stream, l2, injector, sample_every=500)
            assert stats.utilization_samples
            utilizations[assoc] = stats.mean_utilization
        assert utilizations[4] > utilizations[1]

    def test_sample_every_validation(self, stream):
        from repro.errors import ConfigurationError

        l2 = SetAssociativeCache(16 * 1024, 32, 4)
        with pytest.raises(ConfigurationError):
            run_with_invalidations(
                stream, l2, InvalidationInjector(l2), sample_every=0
            )

    def test_invalidations_create_misses(self, stream):
        quiet = SetAssociativeCache(16 * 1024, 32, 4)
        noisy = SetAssociativeCache(16 * 1024, 32, 4)
        run_with_invalidations(
            stream, quiet, InvalidationInjector(quiet, rate=0.0, seed=1)
        )
        run_with_invalidations(
            stream, noisy, InvalidationInjector(noisy, rate=0.2, seed=1)
        )
        assert noisy.stats.readin_misses > quiet.stats.readin_misses
