"""Tests for the multi-node write-invalidate system."""

import pytest

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import TwoLevelHierarchy
from repro.cache.multiprocessor import MultiprocessorSystem, node_workloads
from repro.cache.set_associative import SetAssociativeCache
from repro.errors import ConfigurationError
from repro.trace.process_model import SHARED_BASE, shared_block_set
from repro.trace.reference import AccessKind, Reference


def make_node(l2_assoc=4):
    l1 = DirectMappedCache(2048, 16)
    l2 = SetAssociativeCache(16 * 1024, 32, l2_assoc)
    return TwoLevelHierarchy(l1, l2)


def load(addr):
    return Reference(AccessKind.LOAD, addr)


def store(addr):
    return Reference(AccessKind.STORE, addr)


SHARED_ADDR = SHARED_BASE + 0x400
PRIVATE_ADDR = (1 << 26) + 0x400  # pid-1 slice


class TestCoherence:
    def test_remote_store_invalidates_shared_copy(self):
        system = MultiprocessorSystem([make_node(), make_node()])
        system.access(0, load(SHARED_ADDR))
        assert system.nodes[0].l2.contains(SHARED_ADDR)
        system.access(1, store(SHARED_ADDR))
        assert not system.nodes[0].l2.contains(SHARED_ADDR)
        assert not system.nodes[0].l1.contains(SHARED_ADDR)
        assert system.stats.nodes[1].broadcasts == 1
        assert system.stats.nodes[0].l2_invalidations == 1

    def test_writer_keeps_its_own_copy(self):
        system = MultiprocessorSystem([make_node(), make_node()])
        system.access(0, store(SHARED_ADDR))
        assert system.nodes[0].l2.contains(SHARED_ADDR)

    def test_private_stores_do_not_broadcast(self):
        system = MultiprocessorSystem([make_node(), make_node()])
        system.access(0, load(PRIVATE_ADDR))
        system.access(1, store(PRIVATE_ADDR))
        # Same address, but private range: no coherence action (each
        # node's caches are private; this models unshared data).
        assert system.stats.total_broadcasts == 0

    def test_loads_never_invalidate(self):
        system = MultiprocessorSystem([make_node(), make_node()])
        system.access(0, load(SHARED_ADDR))
        system.access(1, load(SHARED_ADDR))
        assert system.nodes[0].l2.contains(SHARED_ADDR)
        assert system.stats.total_broadcasts == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiprocessorSystem([])
        with pytest.raises(ConfigurationError):
            MultiprocessorSystem([make_node()], shared_range=(10, 5))


class TestOwnershipTracking:
    def make(self):
        return MultiprocessorSystem(
            [make_node(), make_node()], track_ownership=True
        )

    def test_repeat_stores_by_owner_are_silent(self):
        system = self.make()
        system.access(0, store(SHARED_ADDR))
        system.access(0, store(SHARED_ADDR))
        system.access(0, store(SHARED_ADDR))
        assert system.stats.nodes[0].broadcasts == 1

    def test_remote_load_demotes_owner(self):
        system = self.make()
        system.access(0, store(SHARED_ADDR))
        system.access(1, load(SHARED_ADDR))
        system.access(0, store(SHARED_ADDR))
        assert system.stats.nodes[0].broadcasts == 2
        # And the remote copy is gone again.
        assert not system.nodes[1].l2.contains(SHARED_ADDR)

    def test_ownership_transfers_between_writers(self):
        system = self.make()
        system.access(0, store(SHARED_ADDR))
        system.access(1, store(SHARED_ADDR))   # takes ownership
        system.access(1, store(SHARED_ADDR))   # silent
        assert system.stats.nodes[0].broadcasts == 1
        assert system.stats.nodes[1].broadcasts == 1

    def test_ownership_reduces_traffic_on_workloads(self):
        workloads = node_workloads(
            2, segments=1, references_per_segment=6_000, shared_fraction=0.1
        )
        pessimistic = MultiprocessorSystem([make_node(), make_node()])
        pessimistic.run([iter(w) for w in workloads], quantum=32)

        workloads = node_workloads(
            2, segments=1, references_per_segment=6_000, shared_fraction=0.1
        )
        tracked = MultiprocessorSystem(
            [make_node(), make_node()], track_ownership=True
        )
        tracked.run([iter(w) for w in workloads], quantum=32)

        assert tracked.stats.total_broadcasts < (
            pessimistic.stats.total_broadcasts
        )


class TestRun:
    def test_round_robin_interleaving(self):
        system = MultiprocessorSystem([make_node(), make_node()])
        traces = [
            [load(SHARED_ADDR), store(SHARED_ADDR)],
            [load(SHARED_ADDR + 64)],
        ]
        system.run(traces, quantum=1)
        assert system.stats.references == 3
        assert system.stats.nodes[0].broadcasts == 1

    def test_trace_count_checked(self):
        system = MultiprocessorSystem([make_node()])
        with pytest.raises(ConfigurationError):
            system.run([[], []])

    def test_utilization(self):
        system = MultiprocessorSystem([make_node(), make_node()])
        assert system.l2_utilization() == 0.0
        system.access(0, load(SHARED_ADDR))
        assert system.l2_utilization() > 0.0


class TestSharedWorkload:
    def test_shared_set_is_identical_everywhere(self):
        assert shared_block_set(64) == shared_block_set(64)
        assert shared_block_set(64) != shared_block_set(65)

    def test_node_workloads_touch_shared_segment(self):
        workloads = node_workloads(
            2, segments=1, references_per_segment=8_000,
            shared_fraction=0.1,
        )
        shared = []
        for workload in workloads:
            touched = {
                r.address
                for r in workload
                if not r.is_flush and r.address < (1 << 26)
            }
            assert touched, "no shared references generated"
            shared.append(touched)
        # The two nodes reference overlapping shared blocks.
        assert shared[0] & shared[1]

    def test_zero_shared_fraction_stays_private(self):
        workloads = node_workloads(
            1, segments=1, references_per_segment=3_000, shared_fraction=0.0
        )
        for r in workloads[0]:
            if not r.is_flush:
                assert r.address >= (1 << 26)

    def test_endogenous_invalidations_flow(self):
        workloads = node_workloads(
            2, segments=1, references_per_segment=6_000, shared_fraction=0.1
        )
        system = MultiprocessorSystem([make_node(), make_node()])
        system.run([iter(w) for w in workloads], quantum=32)
        assert system.stats.total_broadcasts > 0
        assert system.stats.total_l2_invalidations > 0
