"""Tests for per-set state: frames, recency, dirty bits, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_state import CacheSet
from repro.errors import SimulationError


class TestBasics:
    def test_new_set_is_empty(self):
        s = CacheSet(4)
        assert s.valid_frames() == []
        assert s.first_invalid_frame() == 0
        assert s.view().mru_order == ()

    def test_install_and_find(self):
        s = CacheSet(4)
        assert s.install(0, 100) is None
        assert s.find(100) == 0
        assert s.find(200) is None

    def test_install_returns_evicted_tag(self):
        s = CacheSet(2)
        s.install(0, 100)
        assert s.install(0, 200) == 100
        assert s.find(100) is None

    def test_install_makes_frame_mru(self):
        s = CacheSet(4)
        s.install(0, 100)
        s.install(1, 200)
        assert s.view().mru_order == (1, 0)

    def test_touch_moves_to_front(self):
        s = CacheSet(4)
        s.install(0, 100)
        s.install(1, 200)
        s.touch(0)
        assert s.view().mru_order == (0, 1)
        assert s.lru_frame() == 1

    def test_touch_invalid_frame_raises(self):
        s = CacheSet(4)
        with pytest.raises(SimulationError):
            s.touch(2)

    def test_lru_of_empty_set_raises(self):
        with pytest.raises(SimulationError):
            CacheSet(2).lru_frame()

    def test_mru_distance(self):
        s = CacheSet(4)
        s.install(0, 100)
        s.install(1, 200)
        s.install(2, 300)
        assert s.mru_distance(300) == 1
        assert s.mru_distance(200) == 2
        assert s.mru_distance(100) == 3
        assert s.mru_distance(999) is None


class TestDirtyBits:
    def test_clean_by_default(self):
        s = CacheSet(2)
        s.install(0, 100)
        assert not s.is_dirty(0)

    def test_install_dirty(self):
        s = CacheSet(2)
        s.install(0, 100, dirty=True)
        assert s.is_dirty(0)

    def test_set_dirty(self):
        s = CacheSet(2)
        s.install(0, 100)
        s.set_dirty(0)
        assert s.is_dirty(0)

    def test_dirty_cleared_on_reinstall(self):
        s = CacheSet(2)
        s.install(0, 100, dirty=True)
        s.install(0, 200)
        assert not s.is_dirty(0)

    def test_dirty_on_invalid_frame_raises(self):
        s = CacheSet(2)
        with pytest.raises(SimulationError):
            s.set_dirty(0)


class TestInvalidation:
    def test_invalidate_single_frame(self):
        s = CacheSet(2)
        s.install(0, 100)
        s.install(1, 200)
        s.invalidate(0)
        assert s.find(100) is None
        assert s.view().mru_order == (1,)

    def test_invalidate_idempotent(self):
        s = CacheSet(2)
        s.invalidate(0)
        s.invalidate(0)

    def test_invalidate_all(self):
        s = CacheSet(4)
        for frame in range(4):
            s.install(frame, frame + 100, dirty=True)
        s.invalidate_all()
        assert s.valid_frames() == []
        assert s.view().mru_order == ()
        s.check_invariants()


class TestFifoOrder:
    def test_oldest_frame_tracks_residence(self):
        s = CacheSet(3)
        s.install(1, 100)
        s.install(0, 200)
        s.install(2, 300)
        s.touch(1)  # recency must not affect FIFO order
        assert s.oldest_frame() == 1

    def test_reinstall_refreshes_age(self):
        s = CacheSet(2)
        s.install(0, 100)
        s.install(1, 200)
        s.install(0, 300)
        assert s.oldest_frame() == 1


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["install", "touch", "invalidate", "dirty"]))
        frame = draw(st.integers(0, 3))
        tag = draw(st.integers(0, 50))
        ops.append((kind, frame, tag))
    return ops


@given(ops=operations())
@settings(max_examples=200)
def test_invariants_hold_under_random_operations(ops):
    s = CacheSet(4)
    for kind, frame, tag in ops:
        if kind == "install":
            # Maintain within-set uniqueness, as the cache does.
            if s.find(tag) is None:
                s.install(frame, tag)
        elif kind == "touch":
            if s.tag_at(frame) is not None:
                s.touch(frame)
        elif kind == "invalidate":
            s.invalidate(frame)
        elif kind == "dirty":
            if s.tag_at(frame) is not None:
                s.set_dirty(frame)
        s.check_invariants()
        view = s.view()
        assert set(view.mru_order) == {
            f for f, t in enumerate(view.tags) if t is not None
        }
