"""Tests for the hash-rehash cache (paper footnote 2)."""

import pytest

from repro.cache.hash_rehash import HashRehashCache
from repro.errors import ConfigurationError


def cache(capacity=256, block=16):
    return HashRehashCache(capacity, block)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HashRehashCache(250, 16)
        with pytest.raises(ConfigurationError):
            HashRehashCache(16, 16)  # one line cannot rehash


class TestLookup:
    def test_primary_hit_costs_one_probe(self):
        c = cache()
        c.read_in(0x40)
        assert c.read_in(0x40)
        assert c.probes.hit_probes == 1
        assert c.probes.hit_accesses == 1

    def test_miss_costs_two_probes(self):
        c = cache()
        c.read_in(0x40)
        assert c.probes.miss_probes == 2

    def test_rehash_hit_costs_two_probes_and_swaps(self):
        c = cache(256, 16)  # 16 lines, rehash flips bit 3
        c.read_in(0x00)        # home line 0
        c.read_in(0x100)       # also home line 0 -> displaces 0x00 to line 8
        assert c.contains(0x00)
        assert c.contains(0x100)
        # 0x00 now sits at its rehash slot: next access pays 2 probes
        # and swaps it back.
        before = c.probes.hit_probes
        assert c.read_in(0x00)
        assert c.probes.hit_probes - before == 2
        # Swapped to primary: another access is 1 probe.
        before = c.probes.hit_probes
        assert c.read_in(0x00)
        assert c.probes.hit_probes - before == 1

    def test_pair_holds_two_conflicting_blocks(self):
        c = cache(256, 16)
        c.read_in(0x00)
        c.read_in(0x100)
        c.read_in(0x00)
        c.read_in(0x100)
        # Both resident: a plain direct-mapped cache would thrash.
        assert c.stats.readin_misses == 2
        assert c.stats.readin_hits == 2

    def test_third_conflicting_block_evicts(self):
        c = cache(256, 16)
        c.read_in(0x00)
        c.read_in(0x100)
        c.read_in(0x200)   # third block, same pair -> eviction
        assert c.stats.evictions == 1
        resident = [c.contains(a) for a in (0x00, 0x100, 0x200)]
        assert sum(resident) == 2
        assert c.contains(0x200)

    def test_swap_preserves_dirty_bits(self):
        c = cache(256, 16)
        c.read_in(0x00)
        c.write_back(0x00)      # dirty, at primary
        c.read_in(0x100)        # displaces dirty 0x00 to rehash slot
        c.read_in(0x00)         # swap back
        # Evict everything through the pair and count dirty evictions.
        c.read_in(0x200)
        c.read_in(0x300)
        assert c.stats.dirty_evictions == 1

    def test_writebacks_cost_zero_probes(self):
        c = cache()
        c.read_in(0x40)
        c.write_back(0x40)
        assert c.probes.writeback_probes == 0
        assert c.stats.writeback_hits == 1

    def test_writeback_miss_allocates(self):
        c = cache()
        c.write_back(0x40)
        assert c.stats.writeback_misses == 1
        assert c.contains(0x40)

    def test_invalidate_all(self):
        c = cache()
        c.read_in(0x40)
        c.invalidate_all()
        assert not c.contains(0x40)


class TestVersusTwoWay:
    def test_miss_ratio_close_to_two_way_lru(self):
        # Hash-rehash pairs lines into pseudo-2-way sets; on a
        # conflict-heavy stream its miss ratio should land far below
        # direct-mapped and near true 2-way LRU.
        from repro.cache.set_associative import SetAssociativeCache
        import random

        rng = random.Random(3)
        addresses = [rng.randrange(64) * 16 for _ in range(4000)]

        hr = cache(256, 16)
        two_way = SetAssociativeCache(256, 16, 2)
        for addr in addresses:
            hr.read_in(addr)
            two_way.read_in(addr)
        hr_ratio = hr.stats.readin_miss_ratio
        lru_ratio = two_way.stats.readin_miss_ratio
        assert abs(hr_ratio - lru_ratio) < 0.12
