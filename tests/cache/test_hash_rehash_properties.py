"""Property tests for the hash-rehash cache invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hash_rehash import HashRehashCache

LINES = 16
BLOCK = 16


@st.composite
def request_sequences(draw):
    ops = []
    for _ in range(draw(st.integers(1, 80))):
        kind = draw(st.sampled_from(["read", "write", "flush"]))
        block = draw(st.integers(0, 63))
        ops.append((kind, block * BLOCK))
    return ops


def check_invariants(cache: HashRehashCache) -> None:
    mask = cache.num_lines >> 1
    seen = set()
    for line, block in enumerate(cache._blocks):
        if block is None:
            continue
        # No duplicates anywhere.
        assert block not in seen
        seen.add(block)
        # Every block sits at its home line or its rehash partner.
        home = block & (cache.num_lines - 1)
        assert line in (home, home ^ mask)
        # And is therefore findable.
        assert cache.contains(block * BLOCK)


@given(ops=request_sequences())
@settings(max_examples=200, deadline=None)
def test_invariants_under_random_requests(ops):
    cache = HashRehashCache(LINES * BLOCK, BLOCK)
    for kind, addr in ops:
        if kind == "read":
            cache.read_in(addr)
        elif kind == "write":
            cache.write_back(addr)
        else:
            cache.invalidate_all()
        check_invariants(cache)
        # A block just accessed must be resident at its primary line.
        if kind != "flush":
            block = addr // BLOCK
            home = block & (cache.num_lines - 1)
            assert cache._blocks[home] == block


@given(ops=request_sequences())
@settings(max_examples=100, deadline=None)
def test_probe_accounting_consistent(ops):
    cache = HashRehashCache(LINES * BLOCK, BLOCK)
    for kind, addr in ops:
        if kind == "read":
            cache.read_in(addr)
        elif kind == "write":
            cache.write_back(addr)
        else:
            cache.invalidate_all()
    acc = cache.probes
    assert acc.hit_accesses == cache.stats.readin_hits
    assert acc.miss_accesses == cache.stats.readin_misses
    assert acc.writeback_accesses == cache.stats.writebacks
    # Hits cost 1 or 2 probes; misses exactly 2.
    if acc.hit_accesses:
        assert acc.hit_accesses <= acc.hit_probes <= 2 * acc.hit_accesses
    assert acc.miss_probes == 2 * acc.miss_accesses
