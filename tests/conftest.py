"""Shared fixtures: small deterministic workloads and cache builders.

Simulation tests use deliberately tiny workloads — they assert
mechanics and invariants, not calibration. Calibration against the
paper's published numbers lives in ``tests/integration`` on a
moderately sized workload.
"""

from __future__ import annotations

import pytest

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.set_associative import SetAssociativeCache
from repro.trace.synthetic import AtumWorkload


@pytest.fixture(scope="session")
def tiny_workload() -> AtumWorkload:
    """Two segments of 8k references: fast, still multiprogrammed."""
    return AtumWorkload(segments=2, references_per_segment=8_000, seed=42)


@pytest.fixture(scope="session")
def tiny_trace(tiny_workload) -> list:
    """The tiny workload materialized once per session."""
    return list(tiny_workload)


@pytest.fixture
def small_l1() -> DirectMappedCache:
    return DirectMappedCache(capacity_bytes=1024, block_size=16)


@pytest.fixture
def small_l2() -> SetAssociativeCache:
    return SetAssociativeCache(
        capacity_bytes=4096, block_size=32, associativity=4
    )
