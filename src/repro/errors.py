"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A cache, scheme, or workload was configured with invalid parameters.

    Examples: a non-power-of-two associativity, a partial-compare subset
    count that does not divide the associativity, or a tag width too
    narrow for the requested partial-compare width.
    """


class TraceFormatError(ReproError):
    """A trace file or stream could not be parsed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This indicates a bug in the library rather than a user error; it is
    raised by internal invariant checks.
    """


class SweepPointError(ReproError):
    """A sweep point failed inside a worker process.

    Raised by the parallel runners in place of the bare worker
    traceback: the message names the failing
    :class:`~repro.experiments.runner.SweepPoint` configuration and the
    original error, and the failure is recorded in the run manifest
    (when one is being emitted). The original exception is chained as
    ``__cause__`` where the process boundary allows it.
    """
