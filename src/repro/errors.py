"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A cache, scheme, or workload was configured with invalid parameters.

    Examples: a non-power-of-two associativity, a partial-compare subset
    count that does not divide the associativity, or a tag width too
    narrow for the requested partial-compare width.
    """


class TraceFormatError(ReproError):
    """A trace file or stream could not be parsed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This indicates a bug in the library rather than a user error; it is
    raised by internal invariant checks.
    """


class SweepPointError(ReproError):
    """A sweep point failed inside a worker process.

    Raised by the parallel runners in place of the bare worker
    traceback: the message names the failing
    :class:`~repro.experiments.runner.SweepPoint` configuration and the
    original error, and the failure is recorded in the run manifest
    (when one is being emitted). The original exception is chained as
    ``__cause__`` where the process boundary allows it.

    ``failure`` carries the structured
    :class:`~repro.resilience.policy.PointFailure` payload — point
    signature, exception class, traceback text, attempt count, worker
    pid — when the raising layer has one (``None`` otherwise).
    """

    def __init__(self, message: str, failure=None) -> None:
        super().__init__(message)
        self.failure = failure

    def __reduce__(self):
        """Preserve the ``failure`` payload across process boundaries."""
        return (type(self), (self.args[0] if self.args else "", self.failure))


class SweepTimeoutError(SweepPointError):
    """A sweep point exceeded its per-point wall-clock timeout.

    Raised (or recorded as a :class:`~repro.resilience.policy.PointFailure`
    with ``kind="timeout"``) by the resilient sweep executor when a
    worker does not finish a point within
    :attr:`~repro.resilience.policy.RetryPolicy.timeout` seconds; the
    hung worker pool is killed and re-created.
    """


class StorageError(ReproError):
    """A durable-storage operation failed at the disk level.

    Raised by the :mod:`repro.storage` I/O layer (and the writers
    threaded through it — checkpoints, artifact stores, spool writers,
    bench histories) when the operating system refuses a write:
    ``ENOSPC``, ``EIO``, a failed ``fsync``. Unlike a transient worker
    fault, retrying without operator action will not help, so the
    service maps it onto the execute breaker and a ``/healthz``
    storage detail instead of letting a bare ``OSError`` escape a
    worker thread.
    """


class IntegrityError(StorageError):
    """Stored data failed an end-to-end integrity check on read.

    Raised when a CRC32 record frame, an RPM2 column checksum, or a
    bench-history envelope checksum does not match the bytes on disk —
    bitrot, a torn write that survived undetected, or manual tampering.
    The contract is *detected, never silently wrong*: a reader that
    cannot verify raises this instead of returning plausible garbage,
    and ``repro-fsck`` repairs or quarantines the file.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint could not be created, read, or matched.

    Examples: a corrupt header line, a schema version from a newer
    writer, a ``config_hash`` recorded for a different workload than
    the one being resumed, or a second writer holding the checkpoint's
    advisory lock.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the ``repro.service`` daemon.

    Every service-side rejection derives from this, so the HTTP layer
    can map the library failure modes onto status codes in one place.
    """


class AdmissionError(ServiceError):
    """A job was rejected before it reached the queue.

    Raised by :class:`~repro.service.admission.AdmissionController`
    when a submitted job is malformed (unparseable geometry, empty
    point list) or when its estimated probe count exceeds the
    configured budget. Maps to HTTP 400/413 in ``repro-serve``.
    """


class QueueFullError(ServiceError):
    """The bounded job queue refused a submission (backpressure).

    Raised when the queue is at capacity or still shedding load above
    its low watermark. ``retry_after`` is the server's hint, in
    seconds, for when to retry — surfaced as the HTTP 429
    ``Retry-After`` header by ``repro-serve``.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ShardUnavailableError(ServiceError):
    """No cluster shard could accept or answer a routed request.

    Raised by the cluster front door when the owning shard *and* every
    ring successor are dead, ejected, or unreachable. ``retry_after``
    hints when a shard restart or half-open rejoin is expected. Maps
    to HTTP 503 in ``repro-cluster``.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpenError(ServiceError):
    """A circuit breaker is open: the protected call was not attempted.

    Raised by :class:`~repro.service.breaker.CircuitBreaker` while it
    is in the ``open`` state (and for non-probe calls in
    ``half_open``). ``retry_after`` estimates when the breaker will
    admit a half-open probe. Maps to HTTP 503 in ``repro-serve``.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after
