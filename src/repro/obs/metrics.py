"""Metrics registry: counters, gauges, and histograms, mergeable.

The publishing discipline mirrors the fused engine's accounting: hot
loops touch nothing here; components accumulate privately and publish
*once per phase* (the engine at finalize, a worker at shard end). A
registry snapshot is a plain nested dict — picklable, JSON-able — so
worker processes return snapshots alongside their
:class:`~repro.core.probes.ProbeAccumulator`\\ s and the parent merges
them with :meth:`MetricsRegistry.merge_snapshot`:

- counters add,
- gauges keep the last written value,
- histograms combine count/total/min/max,
- quantile histograms add their integer bucket counts.

Deterministic counters (e.g. ``engine.accesses``) therefore merge to
*bit-identical* totals regardless of sharding — the same discipline the
probe differential tests enforce — while timing histograms (e.g.
``runner.shard_seconds``) merge to a faithful distribution.

Metric namespaces, by producing layer:

- ``engine.*`` / ``runner.*`` — simulation and sweep execution;
- ``resilience.*`` — the fault-tolerant executor (retries, pool
  restarts, timeouts) and the service's circuit breakers
  (``resilience.breaker.<name>.{state,opened,failures,successes,
  rejected}``, where the ``state`` gauge encodes closed=0,
  half_open=1, open=2);
- ``service.*`` — the ``repro-serve`` daemon: ``service.queue.{depth,
  accepted,rejected,shed_transitions}``, ``service.admission.
  {accepted,rejected}``, ``service.jobs.{done,partial,failed}``, and
  ``service.watchdog.{busy_workers,stalls}``;
- ``latency.*`` — the daemon's per-job latency quantile histograms:
  ``latency.{admission,queue_wait,execute,job}_seconds``, each a
  :class:`QuantileHistogram` surfaced as p50/p95/p99/p999 in
  ``/metrics`` and the dashboards.

The daemon also traces one ``service_job`` span per executed job, so
its drain manifest carries a per-job phase breakdown exactly like a
batch run's.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (merges by addition)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (default 1); negative amounts are rejected."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter(value={self.value})"


class Gauge:
    """A point-in-time value (merges by last-write-wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Record the current value."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge(value={self.value})"


class Histogram:
    """A streaming summary of observed values: count/total/min/max.

    Deliberately bucket-free: the consumers here need totals and
    extremes (mean is ``total / count``), and four scalars merge
    exactly across any sharding.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average of the observations so far (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used in snapshots."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a snapshot dict of another histogram into this one.

        Tolerates sparse/legacy dicts: missing ``count``/``total``
        merge as zero and missing or ``None`` ``min``/``max`` leave
        this side's extremes alone, so a snapshot from an older worker
        (or an empty one) merges as a no-op rather than a ``KeyError``.
        """
        self.count += data.get("count", 0)
        self.total += data.get("total", 0.0)
        for key, better in (("min", min), ("max", max)):
            other = data.get(key)
            if other is None:
                continue
            mine = getattr(self, key)
            setattr(self, key, other if mine is None else better(mine, other))

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, total={self.total})"


#: Quantiles the service and dashboards report, in render order.
SUMMARY_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999),
)


class QuantileHistogram:
    """A mergeable quantile sketch over fixed log-spaced buckets.

    Values land in bucket ``floor(log2(value) * RESOLUTION)`` — with
    ``RESOLUTION`` buckets per power of two, bucket boundaries grow by
    ``2 ** (1/RESOLUTION)`` (~19%), so any quantile estimate is off by
    at most one bucket's relative width. Bucket *counts* are exact
    integers, so merging worker snapshots is bit-identical addition in
    any order — the same discipline as the rest of the registry —
    unlike sampling sketches whose merges depend on ordering.

    :meth:`quantile` returns the **upper bound** of the bucket holding
    the requested rank (a conservative, tail-honest estimate), clipped
    to the exact observed ``[min, max]``. Non-positive observations
    (no log bucket) are counted separately and sort below every
    bucket.
    """

    #: Buckets per power of two; boundaries grow by ``2 ** (1/4)``.
    RESOLUTION = 4

    __slots__ = ("count", "total", "min", "max", "zero_count", "buckets")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zero_count: int = 0
        self.buckets: Dict[int, int] = {}

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            self.zero_count += 1
            return
        index = math.floor(math.log2(value) * self.RESOLUTION)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Average of the observations so far (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @staticmethod
    def bucket_upper_bound(index: int) -> float:
        """The exclusive upper value boundary of bucket ``index``."""
        return 2.0 ** ((index + 1) / QuantileHistogram.RESOLUTION)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) of the stream.

        Walks the buckets to the observation of rank ``ceil(q*count)``
        and returns that bucket's upper bound, clipped to the observed
        ``[min, max]`` — exact at the extremes, within one bucket's
        relative width everywhere else. Returns 0.0 when empty.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = self.zero_count
        if rank <= cumulative:
            # Non-positive observations sort first; min covers them.
            return self.min if self.min is not None else 0.0
        estimate = None
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                estimate = self.bucket_upper_bound(index)
                break
        if estimate is None:  # rank beyond recorded counts (merge skew)
            estimate = self.max if self.max is not None else 0.0
        if self.min is not None:
            estimate = max(estimate, self.min)
        if self.max is not None:
            estimate = min(estimate, self.max)
        return estimate

    def summary(self) -> Dict[str, Any]:
        """``{"count", "mean", "p50", "p95", "p99", "p999"}`` for display."""
        result: Dict[str, Any] = {"count": self.count, "mean": self.mean}
        for label, q in SUMMARY_QUANTILES:
            result[label] = self.quantile(q) if self.count else 0.0
        return result

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used in snapshots.

        Bucket keys are stringified indices so the dict survives JSON
        round-trips unchanged.
        """
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "zero_count": self.zero_count,
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a snapshot dict of another quantile histogram in.

        Integer bucket counts add, so merging N worker snapshots in
        any order yields bit-identical buckets (and therefore
        identical quantile estimates) to one unsharded stream.
        Tolerates sparse dicts the same way :class:`Histogram` does.
        """
        self.count += data.get("count", 0)
        self.total += data.get("total", 0.0)
        for key, better in (("min", min), ("max", max)):
            other = data.get(key)
            if other is None:
                continue
            mine = getattr(self, key)
            setattr(self, key, other if mine is None else better(mine, other))
        self.zero_count += data.get("zero_count", 0)
        for raw_index, bucket_count in (data.get("buckets") or {}).items():
            index = int(raw_index)
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count

    def __repr__(self) -> str:
        return (
            f"QuantileHistogram(count={self.count}, "
            f"buckets={len(self.buckets)})"
        )


class MetricsRegistry:
    """Named counters, gauges, and histograms for one process/phase.

    Instruments are created on first use (``registry.counter("x")``),
    so publishers never pre-register. Names are conventionally
    dotted component paths: ``engine.accesses``,
    ``miss_stream.cache_hits``, ``runner.shard_seconds``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._quantile_histograms: Dict[str, QuantileHistogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def quantile_histogram(self, name: str) -> QuantileHistogram:
        """The quantile histogram under ``name`` (created on first use)."""
        instrument = self._quantile_histograms.get(name)
        if instrument is None:
            instrument = self._quantile_histograms[name] = QuantileHistogram()
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict copy of every instrument — picklable and JSON-able.

        Shape::

            {"counters":   {name: value},
             "gauges":     {name: value},
             "histograms": {name: {"count", "total", "min", "max"}},
             "quantile_histograms":
                 {name: {"count", "total", "min", "max",
                         "zero_count", "buckets"}}}
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
            "quantile_histograms": {
                n: h.to_dict()
                for n, h in sorted(self._quantile_histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters add, gauges take the snapshot's value, histograms
        combine — so merging N shard snapshots in any order yields the
        same counters as one unsharded run.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_dict(data)
        for name, data in snapshot.get("quantile_histograms", {}).items():
            self.quantile_histogram(name).merge_dict(data)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (via its snapshot)."""
        self.merge_snapshot(other.snapshot())

    def clear(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._quantile_histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)}, "
            f"quantile_histograms={len(self._quantile_histograms)})"
        )


#: The process-global registry default publishers write into.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one.

    Intended for tests and embedders that need isolated metrics.
    """
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous
