"""Metrics registry: counters, gauges, and histograms, mergeable.

The publishing discipline mirrors the fused engine's accounting: hot
loops touch nothing here; components accumulate privately and publish
*once per phase* (the engine at finalize, a worker at shard end). A
registry snapshot is a plain nested dict — picklable, JSON-able — so
worker processes return snapshots alongside their
:class:`~repro.core.probes.ProbeAccumulator`\\ s and the parent merges
them with :meth:`MetricsRegistry.merge_snapshot`:

- counters add,
- gauges keep the last written value,
- histograms combine count/total/min/max.

Deterministic counters (e.g. ``engine.accesses``) therefore merge to
*bit-identical* totals regardless of sharding — the same discipline the
probe differential tests enforce — while timing histograms (e.g.
``runner.shard_seconds``) merge to a faithful distribution.

Metric namespaces, by producing layer:

- ``engine.*`` / ``runner.*`` — simulation and sweep execution;
- ``resilience.*`` — the fault-tolerant executor (retries, pool
  restarts, timeouts) and the service's circuit breakers
  (``resilience.breaker.<name>.{state,opened,failures,successes,
  rejected}``, where the ``state`` gauge encodes closed=0,
  half_open=1, open=2);
- ``service.*`` — the ``repro-serve`` daemon: ``service.queue.{depth,
  accepted,rejected,shed_transitions}``, ``service.admission.
  {accepted,rejected}``, ``service.jobs.{done,partial,failed}``, and
  ``service.watchdog.{busy_workers,stalls}``.

The daemon also traces one ``service_job`` span per executed job, so
its drain manifest carries a per-job phase breakdown exactly like a
batch run's.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (merges by addition)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (default 1); negative amounts are rejected."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter(value={self.value})"


class Gauge:
    """A point-in-time value (merges by last-write-wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Record the current value."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge(value={self.value})"


class Histogram:
    """A streaming summary of observed values: count/total/min/max.

    Deliberately bucket-free: the consumers here need totals and
    extremes (mean is ``total / count``), and four scalars merge
    exactly across any sharding.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average of the observations so far (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used in snapshots."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a snapshot dict of another histogram into this one."""
        self.count += data["count"]
        self.total += data["total"]
        for key, better in (("min", min), ("max", max)):
            other = data.get(key)
            if other is None:
                continue
            mine = getattr(self, key)
            setattr(self, key, other if mine is None else better(mine, other))

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, total={self.total})"


class MetricsRegistry:
    """Named counters, gauges, and histograms for one process/phase.

    Instruments are created on first use (``registry.counter("x")``),
    so publishers never pre-register. Names are conventionally
    dotted component paths: ``engine.accesses``,
    ``miss_stream.cache_hits``, ``runner.shard_seconds``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict copy of every instrument — picklable and JSON-able.

        Shape::

            {"counters":   {name: value},
             "gauges":     {name: value},
             "histograms": {name: {"count", "total", "min", "max"}}}
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters add, gauges take the snapshot's value, histograms
        combine — so merging N shard snapshots in any order yields the
        same counters as one unsharded run.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_dict(data)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (via its snapshot)."""
        self.merge_snapshot(other.snapshot())

    def clear(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


#: The process-global registry default publishers write into.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one.

    Intended for tests and embedders that need isolated metrics.
    """
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous
