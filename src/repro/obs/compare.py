"""``repro-bench-compare``: the statistical benchmark regression gate.

Diffs the newest entry of a :class:`~repro.obs.bench.BenchHistory`
against a baseline (by default the newest earlier entry with the same
``config_hash``) and renders a machine-readable verdict. Two kinds of
checks, with deliberately different strictness:

- **Timing** is noisy, so a regression is flagged only when the
  evidence is statistical: the bootstrap confidence intervals of the
  two medians must be *disjoint* (candidate strictly slower) **and**
  the median slowdown must exceed a relative threshold. A bare
  percentage test would page on scheduler jitter; CI overlap will not.
  Cross-machine comparisons (different environment fingerprints) are
  reported but never hard-fail — they are noise by construction.
- **Probe counts** are deterministic functions of the replayed stream,
  so for entries with equal ``config_hash`` they must be
  **bit-identical**. Any drift is a correctness failure (the fused
  engine or a scheme model changed behavior), never noise, and fails
  even in ``--report-only`` mode.

Exit codes: 0 OK (or timing regression under ``--report-only``),
1 usage/input error, 2 timing regression, 3 probe-count drift.

Usage::

    repro-bench-compare BENCH_simulator.json
    repro-bench-compare BENCH_simulator.json --baseline 0 --json verdict.json
    repro-bench-compare BENCH_simulator.json --report-only   # CI mode
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.bench import BenchHistory

#: Minimum relative median slowdown that can count as a regression,
#: even with disjoint confidence intervals.
DEFAULT_THRESHOLD = 0.05

#: Exit code for a statistically significant timing regression.
EXIT_TIMING_REGRESSION = 2

#: Exit code for probe-count drift (bit-identical invariant broken).
EXIT_PROBE_DRIFT = 3


def _timing_block(result: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The ``timing`` stats dict of one per-configuration result."""
    timing = result.get("timing")
    if isinstance(timing, dict) and "median_seconds" in timing:
        return timing
    return None


def compare_timing(
    name: str,
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    threshold: float,
) -> Dict[str, Any]:
    """CI-overlap comparison of one configuration's timing stats.

    Returns a check row with ``status`` one of:

    - ``"regression"`` — candidate CI entirely above baseline CI *and*
      median slowdown beyond ``threshold``;
    - ``"improved"`` — the mirror image;
    - ``"ok"`` — overlapping intervals or sub-threshold median shift
      (statistically indistinguishable);
    - ``"incomparable"`` — a side lacks timing stats.
    """
    base = _timing_block(baseline)
    cand = _timing_block(candidate)
    row: Dict[str, Any] = {"name": name, "metric": "wall_seconds"}
    if base is None or cand is None:
        row["status"] = "incomparable"
        return row
    base_median = base["median_seconds"]
    cand_median = cand["median_seconds"]
    ratio = (cand_median / base_median) if base_median > 0 else float("inf")
    disjoint_slower = cand["ci_low_seconds"] > base["ci_high_seconds"]
    disjoint_faster = cand["ci_high_seconds"] < base["ci_low_seconds"]
    row.update(
        {
            "baseline_median_seconds": base_median,
            "candidate_median_seconds": cand_median,
            "baseline_ci_seconds": [
                base["ci_low_seconds"], base["ci_high_seconds"],
            ],
            "candidate_ci_seconds": [
                cand["ci_low_seconds"], cand["ci_high_seconds"],
            ],
            "ratio": ratio,
            "ci_overlap": not (disjoint_slower or disjoint_faster),
        }
    )
    if disjoint_slower and ratio > 1.0 + threshold:
        row["status"] = "regression"
    elif disjoint_faster and ratio < 1.0 - threshold:
        row["status"] = "improved"
    else:
        row["status"] = "ok"
    return row


def compare_probe_counts(
    baseline: Dict[str, Any], candidate: Dict[str, Any]
) -> List[str]:
    """Bit-identical diff of two entries' deterministic probe totals.

    Only meaningful when both entries share a ``config_hash`` (the
    caller checks); returns one human-readable drift message per
    mismatch, empty when identical. Schemes present on only one side
    count as drift — a silently dropped channel is as suspect as a
    changed total.
    """
    base = baseline.get("probe_counts") or {}
    cand = candidate.get("probe_counts") or {}
    drift = []
    for scheme in sorted(set(base) | set(cand)):
        if scheme not in base:
            drift.append(f"probe_counts[{scheme!r}]: only in candidate")
            continue
        if scheme not in cand:
            drift.append(f"probe_counts[{scheme!r}]: only in baseline")
            continue
        fields = sorted(set(base[scheme]) | set(cand[scheme]))
        for field in fields:
            left = base[scheme].get(field)
            right = cand[scheme].get(field)
            if left != right:
                drift.append(
                    f"probe_counts[{scheme!r}].{field}: "
                    f"baseline {left!r} != candidate {right!r}"
                )
    return drift


def _identity(index: Optional[int], entry: Dict[str, Any]) -> Dict[str, Any]:
    """Compact identity block of one entry for the verdict document."""
    return {
        "index": index,
        "git_sha": entry.get("git_sha"),
        "config_hash": entry.get("config_hash"),
        "created_unix": entry.get("created_unix"),
    }


def compare_entries(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    baseline_index: Optional[int] = None,
    candidate_index: Optional[int] = None,
) -> Dict[str, Any]:
    """Full comparison of two history entries: the verdict document.

    The document is self-contained and machine-readable — CI archives
    it, humans read the ``verdict`` field first::

        {"verdict": "ok" | "timing-regression" | "probe-drift",
         "baseline": {...}, "candidate": {...},
         "environment_match": bool, "config_hash_match": bool,
         "timing": [check rows], "probe_drift": [messages],
         "notes": [strings]}

    Probe drift dominates the verdict (it is a correctness failure);
    timing regressions are only flagged between same-config entries
    measured on the same environment fingerprint.
    """
    config_match = (
        baseline.get("config_hash") == candidate.get("config_hash")
    )
    env_match = (
        baseline.get("environment") == candidate.get("environment")
    )
    self_compare = baseline is candidate or (
        baseline_index is not None and baseline_index == candidate_index
    )
    notes: List[str] = []
    if self_compare:
        notes.append(
            "baseline and candidate are the same entry (self-comparison)"
        )
    if not config_match:
        notes.append(
            "config_hash differs: timing compared informationally, "
            "probe counts not comparable"
        )
    if not env_match and not self_compare:
        notes.append(
            "environment fingerprints differ: timing differences are "
            "cross-machine noise, not regressions"
        )

    base_results = baseline.get("results") or {}
    cand_results = candidate.get("results") or {}
    timing_rows = [
        compare_timing(name, base_results[name], cand_results[name], threshold)
        for name in sorted(set(base_results) & set(cand_results))
    ]
    for name in sorted(set(base_results) ^ set(cand_results)):
        side = "baseline" if name in base_results else "candidate"
        notes.append(f"result {name!r} present only in {side}")

    probe_drift = (
        compare_probe_counts(baseline, candidate) if config_match else []
    )
    timing_regressed = env_match and config_match and any(
        row["status"] == "regression" for row in timing_rows
    )
    if probe_drift:
        verdict = "probe-drift"
    elif timing_regressed:
        verdict = "timing-regression"
    else:
        verdict = "ok"
    return {
        "verdict": verdict,
        "threshold": threshold,
        "config_hash_match": config_match,
        "environment_match": env_match,
        "baseline": _identity(baseline_index, baseline),
        "candidate": _identity(candidate_index, candidate),
        "timing": timing_rows,
        "probe_drift": probe_drift,
        "notes": notes,
    }


def render_verdict(report: Dict[str, Any]) -> str:
    """Terminal-friendly summary of a :func:`compare_entries` report."""
    lines = []
    base = report["baseline"]
    cand = report["candidate"]
    lines.append(
        "baseline : entry {index} sha={sha} config={config}".format(
            index=base["index"],
            sha=(base["git_sha"] or "?")[:12],
            config=base["config_hash"],
        )
    )
    lines.append(
        "candidate: entry {index} sha={sha} config={config}".format(
            index=cand["index"],
            sha=(cand["git_sha"] or "?")[:12],
            config=cand["config_hash"],
        )
    )
    for row in report["timing"]:
        if row["status"] == "incomparable":
            lines.append(f"  {row['name']:32s} (no timing stats)")
            continue
        lines.append(
            "  {name:32s} {base:9.4f}s -> {cand:9.4f}s  x{ratio:5.3f}  {status}".format(
                name=row["name"],
                base=row["baseline_median_seconds"],
                cand=row["candidate_median_seconds"],
                ratio=row["ratio"],
                status=row["status"].upper()
                if row["status"] != "ok"
                else "ok",
            )
        )
    for message in report["probe_drift"]:
        lines.append(f"  PROBE DRIFT: {message}")
    for note in report["notes"]:
        lines.append(f"  note: {note}")
    lines.append(f"verdict: {report['verdict']}")
    return "\n".join(lines)


def _resolve_pair(
    history: BenchHistory,
    baseline_selector: Optional[str],
    candidate_selector: Optional[str],
) -> Tuple[Tuple[int, Dict[str, Any]], Tuple[int, Dict[str, Any]], List[str]]:
    """Pick (baseline, candidate) entries; returns extra notes too.

    Candidate defaults to the newest entry. Baseline defaults to the
    newest earlier same-config entry, degrading to a self-comparison
    (with a note) when the trajectory has no earlier lineage — so the
    gate is usable from the very first committed entry.
    """
    notes: List[str] = []
    if candidate_selector is None:
        candidate_index = len(history.entries) - 1
        candidate = history.entries[candidate_index]
    else:
        found = history.find(candidate_selector)
        if found is None:
            raise SystemExit(
                f"error: candidate selector {candidate_selector!r} matches "
                f"no history entry"
            )
        candidate_index, candidate = found
    if baseline_selector is None or baseline_selector == "previous":
        located = history.baseline_for(candidate_index)
        if located is None:
            notes.append(
                "no earlier entry with the candidate's config_hash; "
                "falling back to self-comparison"
            )
            located = (candidate_index, candidate)
        baseline_index, baseline = located
    elif baseline_selector == "self":
        baseline_index, baseline = candidate_index, candidate
    else:
        found = history.find(baseline_selector)
        if found is None:
            raise SystemExit(
                f"error: baseline selector {baseline_selector!r} matches "
                f"no history entry"
            )
        baseline_index, baseline = found
    return (baseline_index, baseline), (candidate_index, candidate), notes


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: gate the newest benchmark entry against a baseline."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-compare",
        description="Statistical benchmark regression gate over a "
        "BENCH history file.",
    )
    parser.add_argument(
        "history", help="path to a benchmark history JSON (BENCH_*.json)"
    )
    parser.add_argument(
        "--baseline", default=None, metavar="SELECTOR",
        help="baseline entry: 'previous' (default: newest earlier entry "
        "with the candidate's config_hash, self if none), 'self', an "
        "integer index, a git SHA prefix, or a config_hash prefix",
    )
    parser.add_argument(
        "--candidate", default=None, metavar="SELECTOR",
        help="candidate entry (default: newest); same selector forms "
        "as --baseline",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="minimum relative median slowdown to flag, on top of the "
        "CI-disjointness requirement (default: %(default)s)",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="report timing regressions without failing (exit 0); "
        "probe-count drift still exits nonzero",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable verdict JSON to PATH "
        "('-' for stdout)",
    )
    args = parser.parse_args(argv)

    try:
        history = BenchHistory.load(args.history)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not history.entries:
        print(
            f"error: {args.history} has no history entries", file=sys.stderr
        )
        return 1

    (baseline_index, baseline), (candidate_index, candidate), notes = (
        _resolve_pair(history, args.baseline, args.candidate)
    )
    report = compare_entries(
        baseline,
        candidate,
        threshold=args.threshold,
        baseline_index=baseline_index,
        candidate_index=candidate_index,
    )
    report["notes"] = notes + report["notes"]
    report["report_only"] = args.report_only

    if report["verdict"] == "probe-drift":
        exit_code = EXIT_PROBE_DRIFT
    elif report["verdict"] == "timing-regression" and not args.report_only:
        exit_code = EXIT_TIMING_REGRESSION
    else:
        exit_code = 0
    report["exit_code"] = exit_code

    rendered = render_verdict(report)
    verdict_json = json.dumps(report, indent=2, sort_keys=True)
    if args.json == "-":
        print(verdict_json)
    else:
        print(rendered)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(verdict_json + "\n")
    if exit_code != 0:
        print(f"FAIL: {report['verdict']}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
