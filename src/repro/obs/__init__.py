"""repro.obs — zero-dependency observability for the simulation stack.

The package answers three questions about every run:

- **Where did the time go?** — :mod:`repro.obs.spans`: nestable
  wall+CPU tracing spans with a JSONL trace writer and an ASCII flame
  summary.
- **What did the components do?** — :mod:`repro.obs.metrics`:
  a registry of counters, gauges, and histograms whose snapshots are
  plain dicts, mergeable across ``multiprocessing`` workers with the
  same bit-identical discipline as the probe accumulators.
- **What produced this artifact?** — :mod:`repro.obs.manifest`: run
  provenance manifests (config hash, workload seed, code identity,
  per-phase timings, metric snapshot) validated by
  :mod:`repro.obs.validate`.

- **Did it get slower?** — :mod:`repro.obs.bench`: a statistical
  timing harness (warmup, repeats, median/MAD, bootstrap CIs) plus the
  append-only benchmark-trajectory store, gated by
  :mod:`repro.obs.compare` (``repro-bench-compare``) and attributed by
  :mod:`repro.obs.trace_report` (``repro-trace-report``).

Plus the shared plumbing: :mod:`repro.obs.jsonl` (the line-delimited
sink/reader), :mod:`repro.obs.log` (the structured, env-controlled
logger behind the CLIs), and :mod:`repro.obs.progress` (live per-shard
progress with ETA for parallel sweeps).

Design rule, enforced across the codebase: **instrumentation stays off
the hot path**. Nothing here is called per cache access; components
accumulate privately and publish once per phase (the fused engine at
finalize, workers at shard end). ``repro.obs`` imports nothing from
the rest of the package, so any module can depend on it.
"""

from repro.obs.bench import (
    BENCH_HISTORY_SCHEMA_VERSION,
    BenchHistory,
    TimingResult,
    bootstrap_ci,
    environment_fingerprint,
    measure,
)
from repro.obs.compare import compare_entries
from repro.obs.context import (
    IdSource,
    TraceContext,
    activate,
    current_context,
    get_id_source,
    new_id,
    new_trace,
    reset_id_source,
    set_id_source,
)
from repro.obs.jsonl import JsonlWriter, read_jsonl, write_jsonl
from repro.obs.log import StructuredLogger, log
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    describe_workload,
    git_sha,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileHistogram,
    get_metrics,
    set_metrics,
)
from repro.obs.progress import ProgressReporter, progress_enabled
from repro.obs.spans import (
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    span,
)
from repro.obs.trace_report import (
    aggregate_trace,
    build_job_report,
    build_report,
    build_span_tree,
    merge_aggregates,
)
from repro.obs.validate import (
    validate_history,
    validate_history_file,
    validate_manifest,
    validate_manifest_file,
    validate_span,
    validate_trace_file,
)

__all__ = [
    "BENCH_HISTORY_SCHEMA_VERSION",
    "BenchHistory",
    "Counter",
    "Gauge",
    "Histogram",
    "IdSource",
    "JsonlWriter",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "ProgressReporter",
    "QuantileHistogram",
    "RunManifest",
    "SpanRecord",
    "StructuredLogger",
    "TimingResult",
    "TraceContext",
    "Tracer",
    "activate",
    "aggregate_trace",
    "bootstrap_ci",
    "build_job_report",
    "build_report",
    "build_span_tree",
    "compare_entries",
    "config_hash",
    "current_context",
    "describe_workload",
    "environment_fingerprint",
    "get_id_source",
    "get_metrics",
    "get_tracer",
    "git_sha",
    "log",
    "measure",
    "merge_aggregates",
    "new_id",
    "new_trace",
    "progress_enabled",
    "read_jsonl",
    "reset_id_source",
    "set_id_source",
    "set_metrics",
    "set_tracer",
    "span",
    "validate_history",
    "validate_history_file",
    "validate_manifest",
    "validate_manifest_file",
    "validate_span",
    "validate_trace_file",
    "write_jsonl",
]
