"""Statistical timing harness and the benchmark-trajectory store.

Two halves, one discipline — benchmark numbers must be *statistically
honest* and *attributable*:

- :func:`measure` replaces best-of-N wall clock with a proper timing
  protocol: warmup rounds (JIT-free Python still warms allocator and
  branch caches), N timed repeats, then robust statistics — median,
  MAD (median absolute deviation), and a bootstrap confidence interval
  of the median. The result carries the raw samples, so downstream
  comparisons can re-derive anything.
- :class:`BenchHistory` turns ``BENCH_simulator.json`` from a
  write-once snapshot into an append-only *trajectory*: a
  schema-versioned history of entries keyed by ``config_hash`` + git
  SHA, deduplicated on re-runs, each entry self-describing (config,
  environment fingerprint, workload identity, timing stats, and the
  deterministic probe-count totals the regression gate checks
  bit-identically).

The consumers live next door: :mod:`repro.obs.compare` gates
regressions against the history, :mod:`repro.obs.validate` checks the
schema, and ``scripts/run_benchmarks.py`` produces the entries.
Everything here depends only on the standard library plus the
stdlib-only durability primitives in :mod:`repro.storage.io` /
:mod:`repro.storage.framing`, per the ``repro.obs`` import rule.
"""

from __future__ import annotations

import json
import logging
import math
import os
import platform
import random
import statistics
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.manifest import git_sha

_LOG = logging.getLogger("repro.obs.bench")

#: Version of the ``BENCH_*.json`` history layout (bump on breaking
#: changes; :mod:`repro.obs.validate` rejects newer-than-supported).
BENCH_HISTORY_SCHEMA_VERSION = 1

#: Default bootstrap resample count for confidence intervals.
DEFAULT_RESAMPLES = 500

#: Default two-sided confidence level for the bootstrap interval.
DEFAULT_CONFIDENCE = 0.95


def environment_fingerprint() -> Dict[str, Any]:
    """Identity of the measuring machine, for apples-to-apples checks.

    Timing comparisons across different hosts are noise by
    construction; the fingerprint lets :mod:`repro.obs.compare` tell
    a same-machine regression from a cross-machine artifact.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count(),
    }


def median_abs_deviation(samples: List[float]) -> float:
    """Median absolute deviation from the median — a robust spread.

    Unlike standard deviation, a single outlier repeat (GC pause,
    scheduler hiccup) barely moves it.
    """
    if not samples:
        return 0.0
    center = statistics.median(samples)
    return statistics.median([abs(x - center) for x in samples])


def bootstrap_ci(
    samples: List[float],
    resamples: int = DEFAULT_RESAMPLES,
    confidence: float = DEFAULT_CONFIDENCE,
    seed: int = 0,
) -> Tuple[float, float]:
    """Bootstrap confidence interval of the *median* of ``samples``.

    Resamples with replacement ``resamples`` times (seeded, so the
    interval is reproducible from the same samples), takes each
    resample's median, and returns the symmetric
    ``(1 - confidence) / 2`` percentiles of that distribution.

    With a single sample the interval collapses to ``(x, x)`` — a
    degenerate but honest statement that no spread was observed.
    """
    if not samples:
        raise ValueError("bootstrap_ci needs at least one sample")
    if len(samples) == 1:
        return (samples[0], samples[0])
    rng = random.Random(seed)
    n = len(samples)
    medians = sorted(
        statistics.median(rng.choices(samples, k=n)) for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = min(len(medians) - 1, max(0, math.floor(alpha * len(medians))))
    hi_index = min(
        len(medians) - 1, max(0, math.ceil((1.0 - alpha) * len(medians)) - 1)
    )
    return (medians[lo_index], medians[hi_index])


class TimingResult:
    """Statistics of one :func:`measure` call, samples included.

    Attributes:
        samples: Per-repeat wall-clock seconds, in run order.
        repeats: Number of timed repeats (``len(samples)``).
        warmup: Untimed warmup rounds that preceded the samples.
        median: Median of the samples (the headline number).
        mad: Median absolute deviation (robust spread).
        mean: Arithmetic mean (for comparison with older best-of-N).
        best: Fastest repeat (what best-of-N used to report).
        ci_low: Lower bound of the bootstrap CI of the median.
        ci_high: Upper bound of the bootstrap CI of the median.
        last_result: Whatever the timed callable returned on its final
            repeat — lets callers pull deterministic by-products (e.g.
            probe accumulators) out of the measured run for free.
    """

    __slots__ = (
        "samples", "repeats", "warmup", "median", "mad", "mean",
        "best", "ci_low", "ci_high", "last_result",
    )

    def __init__(
        self,
        samples: List[float],
        warmup: int,
        resamples: int = DEFAULT_RESAMPLES,
        confidence: float = DEFAULT_CONFIDENCE,
        last_result: Any = None,
    ) -> None:
        if not samples:
            raise ValueError("TimingResult needs at least one sample")
        self.samples = list(samples)
        self.repeats = len(samples)
        self.warmup = warmup
        self.median = statistics.median(samples)
        self.mad = median_abs_deviation(samples)
        self.mean = statistics.fmean(samples)
        self.best = min(samples)
        self.ci_low, self.ci_high = bootstrap_ci(
            samples, resamples=resamples, confidence=confidence
        )
        self.last_result = last_result

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form stored in history entries (JSON-able)."""
        return {
            "samples": self.samples,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "median_seconds": self.median,
            "mad_seconds": self.mad,
            "mean_seconds": self.mean,
            "best_seconds": self.best,
            "ci_low_seconds": self.ci_low,
            "ci_high_seconds": self.ci_high,
        }

    def __repr__(self) -> str:
        return (
            f"TimingResult(median={self.median:.6f}, mad={self.mad:.6f}, "
            f"ci=[{self.ci_low:.6f}, {self.ci_high:.6f}], "
            f"repeats={self.repeats})"
        )


def measure(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
    resamples: int = DEFAULT_RESAMPLES,
    confidence: float = DEFAULT_CONFIDENCE,
) -> TimingResult:
    """Time ``fn`` statistically: warmup, N repeats, robust stats.

    Every round calls ``fn()`` afresh (setup belongs inside the
    callable so each repeat measures identical work from cold state).
    Warmup rounds run and are discarded; the ``repeats`` timed rounds
    become :class:`TimingResult` samples with median/MAD and a
    bootstrap CI of the median.

    Args:
        fn: Zero-argument callable doing the work to time.
        repeats: Timed rounds (>= 1).
        warmup: Untimed rounds before measuring (>= 0).
        resamples: Bootstrap resample count for the CI.
        confidence: Two-sided CI level (e.g. ``0.95``).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = []
    outcome = None
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(
        samples,
        warmup=warmup,
        resamples=resamples,
        confidence=confidence,
        last_result=outcome,
    )


def build_entry(
    config: Dict[str, Any],
    config_hash: str,
    results: Dict[str, Dict[str, Any]],
    probe_counts: Optional[Dict[str, Dict[str, int]]] = None,
    workload: Optional[Dict[str, Any]] = None,
    summary: Optional[Dict[str, Any]] = None,
    sha: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one self-describing history entry.

    Args:
        config: The canonical run configuration (what was hashed).
        config_hash: Its content address
            (:func:`repro.obs.manifest.config_hash`).
        results: Per-configuration results; each value should carry a
            ``"timing"`` block (:meth:`TimingResult.to_dict`).
        probe_counts: Deterministic per-scheme probe totals — the
            bit-identical invariant :mod:`repro.obs.compare` enforces.
        workload: Workload identity
            (:func:`repro.obs.manifest.describe_workload`).
        summary: Free-form derived numbers (speedups, etc.).
        sha: Git SHA override; defaults to the current checkout's.
    """
    return {
        "created_unix": time.time(),
        "git_sha": sha if sha is not None else git_sha(),
        "config_hash": config_hash,
        "config": config,
        "environment": environment_fingerprint(),
        "workload": workload,
        "results": results,
        "probe_counts": probe_counts or {},
        "summary": summary or {},
    }


def _migrate_legacy_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a pre-history single-run payload into one entry.

    The PR-1 format was ``{"workload", "config_hash", "phases",
    "results": {name: {"best_seconds", ...}}, "summary"}`` — one run,
    clobbered on every rewrite. Its single best-of-N number becomes a
    one-sample timing block so the trajectory keeps the data point.
    """
    results = {}
    for name, legacy in payload.get("results", {}).items():
        best = legacy.get("best_seconds")
        timing = (
            TimingResult([best], warmup=0).to_dict()
            if isinstance(best, (int, float))
            else None
        )
        entry = {k: v for k, v in legacy.items() if k != "config_hash"}
        entry["timing"] = timing
        results[name] = entry
    return {
        "created_unix": 0.0,
        "git_sha": None,
        "config_hash": payload.get("config_hash", ""),
        "config": payload.get("config", {}),
        "environment": {},
        "workload": payload.get("workload"),
        "results": results,
        "probe_counts": {},
        "summary": payload.get("summary", {}),
        "migrated_from": "legacy-single-run",
    }


class BenchHistory:
    """Append-only benchmark trajectory backed by one JSON file.

    The on-disk shape is self-describing::

        {"schema_version": 1,
         "benchmark": "simulator_throughput",
         "entries": [ {...}, {...} ]}

    Entries are ordered oldest-first. :meth:`append` deduplicates
    re-runs of an identical configuration at an identical commit
    (same ``config_hash`` *and* ``git_sha``) by replacing the stale
    entry in place, so repeated local runs refine rather than pad the
    trajectory. Loading a legacy single-run payload transparently
    migrates it into the first entry — fixing the old behavior where
    ``run_benchmarks.py -o`` clobbered all prior results.

    Durability: :meth:`save` writes via write-temp + fsync + atomic
    rename and stamps an ``integrity`` CRC32 over the entries, so a
    crash mid-save leaves the previous file intact and bitrot is
    detected (:class:`~repro.errors.IntegrityError`) instead of
    silently skewing a regression baseline. A file torn by a legacy
    non-atomic writer loads with the torn tail *skipped and
    reported* (:attr:`torn_tail_dropped`, plus a logged warning) —
    the intact prefix of the trajectory survives.
    """

    def __init__(self, data: Optional[Dict[str, Any]] = None) -> None:
        if data is None:
            data = {
                "schema_version": BENCH_HISTORY_SCHEMA_VERSION,
                "benchmark": "simulator_throughput",
                "entries": [],
            }
        self.data = data
        #: Whether :meth:`load` had to drop a torn trailing entry.
        self.torn_tail_dropped = False

    @classmethod
    def load(cls, path) -> "BenchHistory":
        """Read a history file; legacy single-run payloads migrate.

        A file carrying an ``integrity`` checksum is verified against
        its entries — :class:`~repro.errors.IntegrityError` on
        mismatch. A file with a torn tail (truncated mid-write by a
        legacy writer or a crash) is recovered entry by entry: the
        complete prefix loads, the torn entry is dropped, and the loss
        is reported via :attr:`torn_tail_dropped` and a warning.
        """
        from repro.storage.framing import verify_document_checksum

        path = Path(path)
        text = path.read_text(encoding="utf-8")
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return cls._recover_torn(text, path)
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: benchmark history is not a JSON object")
        if "integrity" in payload:
            verify_document_checksum(
                payload.get("entries", []),
                payload["integrity"],
                context=f"benchmark history {path}",
            )
        if "entries" not in payload:
            history = cls()
            history.data["entries"].append(_migrate_legacy_payload(payload))
            return history
        return cls(payload)

    @classmethod
    def _recover_torn(cls, text: str, path) -> "BenchHistory":
        """Salvage the intact entry prefix of a torn history file."""
        marker = text.find('"entries"')
        start = text.find("[", marker) if marker >= 0 else -1
        if start < 0:
            raise ValueError(
                f"{path}: benchmark history is torn beyond recovery "
                "(no entries array found)"
            )
        decoder = json.JSONDecoder()
        entries: List[Dict[str, Any]] = []
        position = start + 1
        while True:
            while position < len(text) and text[position] in " \t\r\n,":
                position += 1
            if position >= len(text) or text[position] == "]":
                break
            try:
                entry, position = decoder.raw_decode(text, position)
            except json.JSONDecodeError:
                break  # the torn tail: drop it, keep the prefix
            entries.append(entry)
        history = cls()
        history.data["entries"] = entries
        history.torn_tail_dropped = True
        _LOG.warning(
            "benchmark history %s is torn: recovered %d intact "
            "entries, dropped the truncated tail",
            path,
            len(entries),
        )
        return history

    @classmethod
    def load_or_create(cls, path) -> "BenchHistory":
        """Load ``path`` if it exists, else start an empty history."""
        path = Path(path)
        if path.exists():
            return cls.load(path)
        return cls()

    @property
    def entries(self) -> List[Dict[str, Any]]:
        """The history entries, oldest first."""
        return self.data["entries"]

    @property
    def schema_version(self) -> int:
        """The loaded file's schema version."""
        return self.data.get("schema_version", BENCH_HISTORY_SCHEMA_VERSION)

    def append(self, entry: Dict[str, Any], dedupe: bool = True) -> bool:
        """Add ``entry``; returns ``True`` if it replaced a duplicate.

        A duplicate is an existing entry with the same ``config_hash``
        and the same non-``None`` ``git_sha`` — i.e. a re-run of the
        identical experiment at the identical commit. The newest data
        wins in place (trajectory order preserved).
        """
        if dedupe and entry.get("git_sha") is not None:
            key = (entry.get("config_hash"), entry.get("git_sha"))
            for index, existing in enumerate(self.entries):
                if (existing.get("config_hash"), existing.get("git_sha")) == key:
                    self.entries[index] = entry
                    return True
        self.entries.append(entry)
        return False

    def latest(self) -> Optional[Dict[str, Any]]:
        """The newest entry, or ``None`` if the trajectory is empty."""
        return self.entries[-1] if self.entries else None

    def baseline_for(self, index: int = -1) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The newest *earlier* entry sharing ``entries[index]``'s config.

        Returns ``(absolute_index, entry)`` or ``None`` when no earlier
        same-``config_hash`` entry exists (first run of a config).
        Timing comparisons across different configs are meaningless, so
        the regression gate only ever baselines within a config lineage.
        """
        if not self.entries:
            return None
        candidate_index = index % len(self.entries)
        target = self.entries[candidate_index].get("config_hash")
        for earlier in range(candidate_index - 1, -1, -1):
            if self.entries[earlier].get("config_hash") == target:
                return (earlier, self.entries[earlier])
        return None

    def find(self, selector: str) -> Optional[Tuple[int, Dict[str, Any]]]:
        """Locate an entry by index string, git SHA prefix, or config hash.

        Tries, in order: integer index (negative allowed), ``git_sha``
        prefix match (newest first), ``config_hash`` prefix match
        (newest first). An all-digit selector out of index range falls
        through to prefix matching (it may be a numeric SHA prefix).
        Returns ``(absolute_index, entry)`` or ``None``.
        """
        try:
            index = int(selector)
        except ValueError:
            pass
        else:
            if -len(self.entries) <= index < len(self.entries):
                return (index % len(self.entries), self.entries[index])
        for position in range(len(self.entries) - 1, -1, -1):
            sha = self.entries[position].get("git_sha") or ""
            if sha.startswith(selector):
                return (position, self.entries[position])
        for position in range(len(self.entries) - 1, -1, -1):
            if (self.entries[position].get("config_hash") or "").startswith(
                selector
            ):
                return (position, self.entries[position])
        return None

    def to_json(self) -> str:
        """The history as pretty-printed JSON (entry order preserved)."""
        return json.dumps(self.data, indent=2, sort_keys=False, default=repr)

    def save(self, path) -> Path:
        """Durably write the history to ``path``; returns it.

        The write is temp + fsync + atomic rename + directory fsync
        (:func:`repro.storage.io.atomic_write_text`), and the
        ``integrity`` CRC32 over the entries is refreshed first —
        a crash mid-save can cost at most the *new* entry, never the
        trajectory.
        """
        from repro.storage.framing import document_checksum
        from repro.storage.io import atomic_write_text

        self.data["integrity"] = document_checksum(self.entries)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, self.to_json() + "\n")
        return path

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"BenchHistory(entries={len(self.entries)}, "
            f"schema_version={self.schema_version})"
        )
