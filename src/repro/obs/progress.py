"""Live progress for parallel sweeps: shard events with ETA on stderr.

:class:`ProgressReporter` turns per-shard *started*/*finished* events
into human lines on stderr::

    [sweep] shard 2/8 started   (l1=4K-16, 6 points)
    [sweep] shard 2/8 finished  3/8 done, elapsed 4.1s, ETA 6.9s

Workers report through a ``multiprocessing`` queue they inherit on
fork (see :class:`~repro.experiments.runner.ParallelSweepRunner`); a
daemon thread in the parent drains it into a reporter. The reporter
itself is transport-agnostic — call :meth:`~ProgressReporter.started`
and :meth:`~ProgressReporter.finished` from anywhere.

Progress is **off by default** (tests and pipelines stay quiet):
enabled when the ``REPRO_PROGRESS`` environment variable is truthy or
the target stream is a TTY, overridable per reporter.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Optional, TextIO

#: Environment variable forcing progress on ("1") or off ("0").
ENV_VAR = "REPRO_PROGRESS"


def progress_enabled(stream: Optional[TextIO] = None) -> bool:
    """Default enablement: ``REPRO_PROGRESS`` wins, else TTY detection."""
    raw = os.environ.get(ENV_VAR)
    if raw is not None:
        return raw.strip().lower() not in ("", "0", "false", "no")
    stream = stream if stream is not None else sys.stderr
    isatty = getattr(stream, "isatty", None)
    try:
        return bool(isatty()) if callable(isatty) else False
    except (OSError, ValueError):  # pragma: no cover - closed stream
        return False


class ProgressReporter:
    """Formats shard lifecycle events, with a completion-rate ETA.

    Thread-safe: the queue-draining thread and the parent may both
    report. All output goes to one stream (stderr by default), never
    stdout, so machine-readable CLI output stays clean.

    Args:
        total: Number of shards expected.
        label: Tag prefixed to every line (default ``"sweep"``).
        stream: Target stream; default ``sys.stderr``.
        enabled: Force on/off; default per :func:`progress_enabled`.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream: Optional[TextIO] = None,
        enabled: Optional[bool] = None,
    ) -> None:
        self.total = total
        self.label = label
        self._stream = stream
        self.enabled = (
            progress_enabled(stream) if enabled is None else enabled
        )
        self.finished_count = 0
        self.started_count = 0
        self._t0 = time.monotonic()
        self._lock = threading.Lock()

    def _write(self, line: str) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        stream.write(line + "\n")
        flush = getattr(stream, "flush", None)
        if callable(flush):
            flush()

    def started(self, shard: int, detail: str = "") -> None:
        """Report shard ``shard`` (0-based) as started."""
        if not self.enabled:
            return
        with self._lock:
            self.started_count += 1
            suffix = f"   ({detail})" if detail else ""
            self._write(
                f"[{self.label}] shard {shard + 1}/{self.total} "
                f"started{suffix}"
            )

    def finished(self, shard: int, detail: str = "") -> None:
        """Report shard ``shard`` as finished, with progress and ETA.

        The ETA extrapolates from the mean completion rate so far —
        exact for uniform shards, a fair estimate otherwise.
        """
        if not self.enabled:
            return
        with self._lock:
            self.finished_count += 1
            done = self.finished_count
            elapsed = time.monotonic() - self._t0
            if done < self.total and done > 0:
                eta = elapsed * (self.total - done) / done
                tail = f", ETA {eta:.1f}s"
            else:
                tail = ", done"
            suffix = f"   ({detail})" if detail else ""
            self._write(
                f"[{self.label}] shard {shard + 1}/{self.total} finished"
                f"{suffix}  {done}/{self.total} complete, "
                f"elapsed {elapsed:.1f}s{tail}"
            )

    def handle(self, event: Any) -> None:
        """Dispatch one queue event: ``(kind, shard, detail)`` tuples.

        Unknown kinds are ignored (forward compatibility with newer
        workers reporting through an older parent).
        """
        try:
            kind, shard, detail = event
        except (TypeError, ValueError):
            return
        if kind == "started":
            self.started(shard, detail)
        elif kind == "finished":
            self.finished(shard, detail)

    def drain(self, queue: Any) -> threading.Thread:
        """Start a daemon thread draining ``queue`` into :meth:`handle`.

        The thread exits when it reads ``None`` (the sentinel the
        owner must enqueue after the workers are done). Returns the
        thread so the owner can ``join`` it.
        """

        def _loop() -> None:
            while True:
                event = queue.get()
                if event is None:
                    return
                self.handle(event)

        thread = threading.Thread(
            target=_loop, name="repro-progress", daemon=True
        )
        thread.start()
        return thread

    def __repr__(self) -> str:
        return (
            f"ProgressReporter(total={self.total}, "
            f"finished={self.finished_count}, enabled={self.enabled})"
        )
