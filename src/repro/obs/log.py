"""Structured logging for the CLIs and runners, env-controlled.

One logger (:data:`log`) replaces the scattered ``print`` and silent
paths. Levels, lowest to highest: ``debug``, ``info``, ``warning``,
``error``; ``silent`` disables everything. The threshold comes from
the ``REPRO_LOG`` environment variable (default ``info``), re-read on
every emission so tests and long-lived sessions can flip it without
re-importing. Appending ``+json`` (e.g. ``REPRO_LOG=debug+json``)
switches to one-JSON-object-per-line output.

Output contract, chosen to keep existing CLI output *byte-stable*:

- ``info`` messages go to **stdout** and, in the default text format,
  print exactly the message — a drop-in for ``print``; structured
  fields appear only in JSON mode.
- ``debug``/``warning``/``error`` go to **stderr** (debug is hidden at
  the default threshold), as ``level event key=value ...`` text or as
  JSON.
- In JSON mode each record also carries the ambient causal identity
  (``trace_id``/``span_id`` from :mod:`repro.obs.context`) when one is
  active, so log lines join the same flight record as the spans. The
  text formats are untouched — byte-stability holds.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Optional, TextIO

from repro.obs.context import current_context

#: Recognized levels and their severities.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "silent": 100}

#: Environment variable holding ``<level>`` or ``<level>+json``.
ENV_VAR = "REPRO_LOG"


def _settings() -> "tuple[int, bool]":
    """(threshold severity, json mode) from the environment, right now."""
    raw = os.environ.get(ENV_VAR, "info").strip().lower()
    json_mode = False
    if raw.endswith("+json"):
        json_mode = True
        raw = raw[: -len("+json")]
    severity = LEVELS.get(raw or "info")
    if severity is None:
        severity = LEVELS["info"]
    return severity, json_mode


class StructuredLogger:
    """Leveled, optionally-JSON logger writing to stdout/stderr.

    Args:
        out: Stream for ``info`` messages (default ``sys.stdout``,
            resolved at emission time so pytest capture works).
        err: Stream for everything else (default ``sys.stderr``).
    """

    def __init__(
        self, out: Optional[TextIO] = None, err: Optional[TextIO] = None
    ) -> None:
        self._out = out
        self._err = err

    def _emit(
        self, level: str, message: str, to_out: bool, fields: "dict[str, Any]"
    ) -> None:
        threshold, json_mode = _settings()
        if LEVELS[level] < threshold:
            return
        stream = (
            (self._out or sys.stdout) if to_out else (self._err or sys.stderr)
        )
        if json_mode:
            record = {"level": level, "message": message}
            context = current_context()
            if context is not None:
                record["trace_id"] = context.trace_id
                record["span_id"] = context.span_id
            record.update(fields)
            stream.write(json.dumps(record, sort_keys=True, default=str) + "\n")
            return
        if to_out and not fields:
            # Byte-stable drop-in for the CLIs' former ``print`` calls.
            stream.write(message + "\n")
            return
        suffix = "".join(
            f" {key}={value}" for key, value in fields.items()
        )
        prefix = "" if to_out else f"{level} "
        stream.write(f"{prefix}{message}{suffix}\n")

    def debug(self, event: str, **fields: Any) -> None:
        """Emit a debug event (hidden unless ``REPRO_LOG=debug``)."""
        self._emit("debug", event, to_out=False, fields=fields)

    def info(self, message: str, **fields: Any) -> None:
        """Emit an info message on stdout.

        With no fields and the default text format this writes exactly
        ``message`` + newline — byte-identical to ``print(message)``.
        """
        self._emit("info", message, to_out=True, fields=fields)

    def warning(self, message: str, **fields: Any) -> None:
        """Emit a warning on stderr."""
        self._emit("warning", message, to_out=False, fields=fields)

    def error(self, message: str, **fields: Any) -> None:
        """Emit an error on stderr."""
        self._emit("error", message, to_out=False, fields=fields)

    def __repr__(self) -> str:
        threshold, json_mode = _settings()
        return (
            f"StructuredLogger(threshold={threshold}, json={json_mode})"
        )


#: The shared logger instance the CLIs and runners use.
log = StructuredLogger()
