"""Schema validation for manifests, JSONL traces, and bench histories.

Hand-rolled structural checks — no ``jsonschema`` dependency — used by
tests and by CI's instrumented smoke sweep, which asserts that a real
run produced schema-valid artifacts before archiving them::

    python -m repro.obs.validate out/manifest.json --trace out/trace.jsonl
    python -m repro.obs.validate --history BENCH_simulator.json
    python -m repro.obs.validate --report results/trajectory.json
    python -m repro.obs.validate --dashboard dashboard.json
    python -m repro.obs.validate --fsck-report fsck.json

Exit status 0 when everything validates; 1 with one error per line on
stderr otherwise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Any, Dict, List, Optional

from repro.obs.bench import BENCH_HISTORY_SCHEMA_VERSION
from repro.obs.jsonl import read_jsonl
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION

#: Required manifest keys and their accepted types.
_MANIFEST_FIELDS = {
    "schema_version": (int,),
    "tool": (str,),
    "created_unix": (int, float),
    "package_version": (str, type(None)),
    "git_sha": (str, type(None)),
    "config_hash": (str,),
    "workload": (dict, type(None)),
    "phases": (dict,),
    "metrics": (dict,),
    "failures": (list,),
}

#: Required span-record keys and their accepted types.
_SPAN_FIELDS = {
    "name": (str,),
    "path": (str,),
    "depth": (int,),
    "start": (int, float),
    "wall_seconds": (int, float),
    "cpu_seconds": (int, float),
    "attrs": (dict,),
    "index": (int,),
}

#: Causal-identity keys: optional (legacy traces predate them), but
#: type- and format-checked when present.
_SPAN_ID_FIELDS = {
    "trace_id": (str, type(None)),
    "span_id": (str, type(None)),
    "parent_span_id": (str, type(None)),
}

#: The id format :mod:`repro.obs.context` emits: 16 lowercase hex.
_ID_PATTERN = re.compile(r"[0-9a-f]{16}")


def _check_fields(
    data: Dict[str, Any], fields: Dict[str, tuple], where: str
) -> List[str]:
    """Type-check required ``fields`` of ``data``; returns error strings."""
    errors = []
    for key, types in fields.items():
        if key not in data:
            errors.append(f"{where}: missing required key {key!r}")
        elif not isinstance(data[key], types):
            errors.append(
                f"{where}: key {key!r} has type "
                f"{type(data[key]).__name__}, expected one of "
                f"{[t.__name__ for t in types]}"
            )
    return errors


def validate_manifest(data: Dict[str, Any]) -> List[str]:
    """Structural errors in a manifest dict (empty list = valid)."""
    if not isinstance(data, dict):
        return ["manifest: not a JSON object"]
    errors = _check_fields(data, _MANIFEST_FIELDS, "manifest")
    if "config" not in data:
        errors.append("manifest: missing required key 'config'")
    version = data.get("schema_version")
    if isinstance(version, int) and version > MANIFEST_SCHEMA_VERSION:
        errors.append(
            f"manifest: schema_version {version} is newer than the "
            f"supported {MANIFEST_SCHEMA_VERSION}"
        )
    for block in ("counters", "gauges", "histograms"):
        metrics = data.get("metrics")
        if isinstance(metrics, dict) and metrics and block not in metrics:
            errors.append(f"manifest: metrics snapshot missing {block!r}")
    phases = data.get("phases")
    if isinstance(phases, dict):
        for name, entry in phases.items():
            if not isinstance(entry, dict):
                errors.append(f"manifest: phase {name!r} is not an object")
                continue
            for key in ("count", "wall_seconds", "cpu_seconds"):
                if key not in entry:
                    errors.append(
                        f"manifest: phase {name!r} missing {key!r}"
                    )
    for index, failure in enumerate(data.get("failures") or []):
        if not isinstance(failure, dict) or "error" not in failure:
            errors.append(
                f"manifest: failures[{index}] must be an object with 'error'"
            )
    return errors


def validate_span(record: Dict[str, Any], where: str = "span") -> List[str]:
    """Structural errors in one trace record (empty list = valid).

    The causal-identity fields (``trace_id``/``span_id``/
    ``parent_span_id``) are optional — traces written before trace
    context existed stay valid — but when present they must be
    ``None`` or a 16-lowercase-hex id.
    """
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    errors = _check_fields(record, _SPAN_FIELDS, where)
    if not errors:
        if record["depth"] < 0:
            errors.append(f"{where}: negative depth")
        if record["wall_seconds"] < 0:
            errors.append(f"{where}: negative wall_seconds")
        if not record["path"].endswith(record["name"]):
            errors.append(f"{where}: path does not end with span name")
    for key, types in _SPAN_ID_FIELDS.items():
        if key not in record:
            continue
        value = record[key]
        if not isinstance(value, types):
            errors.append(
                f"{where}: key {key!r} has type {type(value).__name__}, "
                f"expected one of {[t.__name__ for t in types]}"
            )
        elif isinstance(value, str) and not _ID_PATTERN.fullmatch(value):
            errors.append(
                f"{where}: key {key!r} is not a 16-hex-char id: {value!r}"
            )
    return errors


def validate_trace_file(path) -> List[str]:
    """Structural errors across every record of a JSONL trace file."""
    errors: List[str] = []
    try:
        for index, record in enumerate(read_jsonl(path)):
            errors.extend(validate_span(record, where=f"{path}:{index + 1}"))
    except (OSError, ValueError) as exc:
        errors.append(str(exc))
    return errors


#: Required benchmark-history entry keys and their accepted types.
_HISTORY_ENTRY_FIELDS = {
    "created_unix": (int, float),
    "git_sha": (str, type(None)),
    "config_hash": (str,),
    "config": (dict,),
    "environment": (dict,),
    "results": (dict,),
    "probe_counts": (dict,),
    "summary": (dict,),
}

#: Required timing-stats keys inside each result's ``timing`` block.
_TIMING_FIELDS = {
    "samples": (list,),
    "repeats": (int,),
    "warmup": (int,),
    "median_seconds": (int, float),
    "mad_seconds": (int, float),
    "ci_low_seconds": (int, float),
    "ci_high_seconds": (int, float),
}


def validate_history(data: Dict[str, Any]) -> List[str]:
    """Structural errors in a benchmark-history dict (empty = valid).

    Checks the trajectory envelope (``schema_version``, ``benchmark``,
    ``entries``), then every entry's identity keys and each result's
    ``timing`` statistics block — the fields
    :mod:`repro.obs.compare` dereferences unconditionally.
    """
    if not isinstance(data, dict):
        return ["history: not a JSON object"]
    errors = []
    version = data.get("schema_version")
    if not isinstance(version, int):
        errors.append("history: missing or non-integer 'schema_version'")
    elif version > BENCH_HISTORY_SCHEMA_VERSION:
        errors.append(
            f"history: schema_version {version} is newer than the "
            f"supported {BENCH_HISTORY_SCHEMA_VERSION}"
        )
    if not isinstance(data.get("benchmark"), str):
        errors.append("history: missing or non-string 'benchmark'")
    entries = data.get("entries")
    if not isinstance(entries, list):
        errors.append("history: missing or non-list 'entries'")
        return errors
    for index, entry in enumerate(entries):
        where = f"history entry[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        errors.extend(_check_fields(entry, _HISTORY_ENTRY_FIELDS, where))
        results = entry.get("results")
        if not isinstance(results, dict):
            continue
        for name, result in results.items():
            if not isinstance(result, dict):
                errors.append(f"{where}.results[{name!r}]: not an object")
                continue
            timing = result.get("timing")
            if timing is None:
                continue  # legacy-migrated entries may lack stats
            if not isinstance(timing, dict):
                errors.append(
                    f"{where}.results[{name!r}].timing: not an object"
                )
                continue
            errors.extend(
                _check_fields(
                    timing,
                    _TIMING_FIELDS,
                    f"{where}.results[{name!r}].timing",
                )
            )
    return errors


def validate_history_file(path) -> List[str]:
    """Structural errors in a benchmark-history JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_history(data)


def validate_manifest_file(path) -> List[str]:
    """Structural errors in a manifest JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_manifest(data)


#: Highest trajectory-report (``trajectory.json``) schema version this
#: validator understands. Mirrors
#: ``repro.report.trajectory.REPORT_SCHEMA_VERSION`` — duplicated, not
#: imported, because :mod:`repro.obs` must not depend on the rest of
#: the package; a cross-check test keeps them in lockstep.
SUPPORTED_REPORT_SCHEMA_VERSION = 1

#: Highest ``/dashboard.json`` schema version this validator
#: understands. Mirrors
#: ``repro.report.dashboard.DASHBOARD_SCHEMA_VERSION`` (same
#: duplication rationale as above). v2 added ``status.latency``; v3
#: added the optional ``status.shards`` cluster table.
SUPPORTED_DASHBOARD_SCHEMA_VERSION = 3

#: Required keys of one ``status.shards`` row (v3 cluster dashboards;
#: the block itself is optional — ``repro-serve`` has no shards).
_DASHBOARD_SHARD_FIELDS = {
    "name": (str,),
    "state": (str,),
    "alive": (bool,),
    "breaker": (str,),
    "restarts": (int,),
}

#: The shard lifecycle labels the cluster supervisor emits.
_SHARD_STATES = frozenset({"healthy", "half_open", "ejected", "dead"})

#: Required trajectory-report keys and their accepted types.
_REPORT_FIELDS = {
    "schema_version": (int,),
    "kind": (str,),
    "benchmark": (str, type(None)),
    "history_schema_version": (int,),
    "entry_count": (int,),
    "entries": (list,),
    "series": (list,),
    "verdict": (dict, type(None)),
}

#: Required per-point keys inside a trajectory series.
_SERIES_POINT_FIELDS = {
    "index": (int,),
    "git_sha": (str, type(None)),
    "config_hash": (str, type(None)),
    "median_seconds": (int, float, type(None)),
    "requests_per_second": (int, float, type(None)),
}

#: Required ``/dashboard.json`` keys and their accepted types.
_DASHBOARD_FIELDS = {
    "schema_version": (int,),
    "kind": (str,),
    "status": (dict,),
    "jobs": (list,),
    "trajectory": (dict, type(None)),
}

#: Required keys inside the dashboard's ``status`` block.
_DASHBOARD_STATUS_FIELDS = {
    "ready": (bool,),
    "reason": (str,),
    "draining": (bool,),
    "queue": (dict,),
    "breakers": (dict,),
    "jobs": (dict,),
    "replay": (dict,),
    "metrics": (dict,),
}


def _check_version(
    data: Dict[str, Any], supported: int, where: str
) -> List[str]:
    """Reject payloads newer than this validator understands."""
    version = data.get("schema_version")
    if isinstance(version, int) and version > supported:
        return [
            f"{where}: schema_version {version} is newer than the "
            f"supported {supported}"
        ]
    return []


def validate_report(data: Dict[str, Any]) -> List[str]:
    """Structural errors in a trajectory-report dict (empty = valid)."""
    if not isinstance(data, dict):
        return ["report: not a JSON object"]
    errors = _check_fields(data, _REPORT_FIELDS, "report")
    errors.extend(
        _check_version(data, SUPPORTED_REPORT_SCHEMA_VERSION, "report")
    )
    kind = data.get("kind")
    if isinstance(kind, str) and kind != "bench-trajectory":
        errors.append(f"report: kind {kind!r} != 'bench-trajectory'")
    for block_index, block in enumerate(data.get("series") or []):
        where = f"report series[{block_index}]"
        if not isinstance(block, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        if not isinstance(block.get("name"), str):
            errors.append(f"{where}: missing or non-string 'name'")
        points = block.get("points")
        if not isinstance(points, list):
            errors.append(f"{where}: missing or non-list 'points'")
            continue
        for point_index, point in enumerate(points):
            if not isinstance(point, dict):
                errors.append(
                    f"{where}.points[{point_index}]: not a JSON object"
                )
                continue
            errors.extend(
                _check_fields(
                    point,
                    _SERIES_POINT_FIELDS,
                    f"{where}.points[{point_index}]",
                )
            )
    verdict = data.get("verdict")
    if isinstance(verdict, dict):
        for key in ("verdict", "baseline", "candidate", "timing"):
            if key not in verdict:
                errors.append(f"report: verdict missing {key!r}")
    return errors


def validate_dashboard(data: Dict[str, Any]) -> List[str]:
    """Structural errors in a ``/dashboard.json`` dict (empty = valid)."""
    if not isinstance(data, dict):
        return ["dashboard: not a JSON object"]
    errors = _check_fields(data, _DASHBOARD_FIELDS, "dashboard")
    errors.extend(
        _check_version(data, SUPPORTED_DASHBOARD_SCHEMA_VERSION, "dashboard")
    )
    kind = data.get("kind")
    if isinstance(kind, str) and kind != "service-dashboard":
        errors.append(f"dashboard: kind {kind!r} != 'service-dashboard'")
    status = data.get("status")
    if isinstance(status, dict):
        errors.extend(
            _check_fields(status, _DASHBOARD_STATUS_FIELDS, "dashboard status")
        )
        # The latency quantile block arrived with schema v2; v1
        # payloads without it stay valid.
        version = data.get("schema_version")
        if isinstance(version, int) and version >= 2:
            if not isinstance(status.get("latency"), dict):
                errors.append(
                    "dashboard status: missing or non-object 'latency' "
                    "(required from schema v2)"
                )
        # The per-shard cluster table arrived with schema v3. It stays
        # optional (a repro-serve dashboard has no shards), but when
        # present every row must carry the lifecycle fields.
        shards = status.get("shards")
        if shards is not None:
            if not isinstance(shards, dict):
                errors.append(
                    "dashboard status: 'shards' must be an object"
                )
            else:
                for name, row in shards.items():
                    where = f"dashboard status shards[{name!r}]"
                    if not isinstance(row, dict):
                        errors.append(f"{where}: not a JSON object")
                        continue
                    errors.extend(
                        _check_fields(row, _DASHBOARD_SHARD_FIELDS, where)
                    )
                    state = row.get("state")
                    if (
                        isinstance(state, str)
                        and state not in _SHARD_STATES
                    ):
                        errors.append(
                            f"{where}: unknown state {state!r} "
                            f"(expected one of {sorted(_SHARD_STATES)})"
                        )
    for index, record in enumerate(data.get("jobs") or []):
        where = f"dashboard jobs[{index}]"
        if not isinstance(record, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        for key in ("id", "status"):
            if key not in record:
                errors.append(f"{where}: missing required key {key!r}")
    trajectory = data.get("trajectory")
    if isinstance(trajectory, dict):
        errors.extend(validate_report(trajectory))
    return errors


#: Required ``/jobs/<id>/trace`` keys and their accepted types.
_JOB_TRACE_FIELDS = {
    "job": (str,),
    "trace_id": (str, type(None)),
    "status": (str,),
    "spans": (int,),
    "tree": (list,),
}


def _validate_tree_node(
    node: Any, where: str, errors: List[str]
) -> int:
    """Recursively check one span-tree node; returns spans counted."""
    if not isinstance(node, dict):
        errors.append(f"{where}: not a JSON object")
        return 0
    record = {k: v for k, v in node.items() if k != "children"}
    errors.extend(validate_span(record, where=where))
    children = node.get("children")
    if not isinstance(children, list):
        errors.append(f"{where}: missing or non-list 'children'")
        return 1
    count = 1
    for index, child in enumerate(children):
        child_where = f"{where}.children[{index}]"
        if isinstance(child, dict):
            parent = node.get("span_id")
            if parent is not None and child.get("parent_span_id") != parent:
                errors.append(
                    f"{child_where}: parent_span_id does not match the "
                    "enclosing node's span_id"
                )
        count += _validate_tree_node(child, child_where, errors)
    return count


def validate_job_trace(data: Dict[str, Any]) -> List[str]:
    """Structural errors in a ``/jobs/<id>/trace`` dict (empty = valid).

    Checks the envelope, then every node of the span tree as a span
    record (with the optional causal-identity fields), that children
    really nest under their parent's ``span_id``, and that the
    ``spans`` count matches the tree.
    """
    if not isinstance(data, dict):
        return ["job-trace: not a JSON object"]
    errors = _check_fields(data, _JOB_TRACE_FIELDS, "job-trace")
    tree = data.get("tree")
    if not isinstance(tree, list):
        return errors
    total = 0
    for index, node in enumerate(tree):
        total += _validate_tree_node(
            node, f"job-trace tree[{index}]", errors
        )
    declared = data.get("spans")
    if isinstance(declared, int) and declared != total:
        errors.append(
            f"job-trace: 'spans' is {declared} but the tree holds {total}"
        )
    return errors


def validate_job_trace_file(path) -> List[str]:
    """Structural errors in a ``/jobs/<id>/trace`` JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_job_trace(data)


def validate_report_file(path) -> List[str]:
    """Structural errors in a trajectory-report JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_report(data)


def validate_dashboard_file(path) -> List[str]:
    """Structural errors in a dashboard-payload JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_dashboard(data)


#: Highest ``repro-fsck --report`` schema version this validator
#: understands. Mirrors
#: ``repro.storage.fsck.FSCK_REPORT_SCHEMA_VERSION`` (same duplication
#: rationale as the trajectory-report constant above; a cross-check
#: test keeps them in lockstep).
SUPPORTED_FSCK_REPORT_SCHEMA_VERSION = 1

#: Required fsck-report keys and their accepted types.
_FSCK_REPORT_FIELDS = {
    "schema_version": (int,),
    "kind": (str,),
    "generated_unix": (int, float),
    "root": (str,),
    "repair": (bool,),
    "scanned": (dict,),
    "findings": (list,),
    "counts": (dict,),
    "ok": (bool,),
}

#: Required keys of one fsck finding and their accepted types.
_FSCK_FINDING_FIELDS = {
    "path": (str,),
    "kind": (str,),
    "problem": (str,),
    "action": (str,),
    "repairable": (bool,),
    "detail": (str,),
}

#: The dispositions ``repro-fsck`` records per finding.
_FSCK_ACTIONS = frozenset(
    {"detected", "repaired", "removed", "quarantined"}
)

#: Required keys of the fsck report's ``counts`` roll-up.
_FSCK_COUNT_KEYS = (
    "verified", "findings", "repaired", "quarantined", "unrepairable",
)


def validate_fsck_report(data: Dict[str, Any]) -> List[str]:
    """Structural errors in a ``repro-fsck`` report dict (empty = valid).

    Checks the envelope, every finding's fields and disposition, the
    ``counts`` roll-up keys, and that ``ok`` agrees with the
    unrepairable count — an ``ok: true`` report with unrepairable
    findings would let CI archive corruption as a pass.
    """
    if not isinstance(data, dict):
        return ["fsck-report: not a JSON object"]
    errors = _check_fields(data, _FSCK_REPORT_FIELDS, "fsck-report")
    errors.extend(
        _check_version(
            data, SUPPORTED_FSCK_REPORT_SCHEMA_VERSION, "fsck-report"
        )
    )
    kind = data.get("kind")
    if isinstance(kind, str) and kind != "fsck-report":
        errors.append(f"fsck-report: kind {kind!r} != 'fsck-report'")
    for index, finding in enumerate(data.get("findings") or []):
        where = f"fsck-report findings[{index}]"
        if not isinstance(finding, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        errors.extend(_check_fields(finding, _FSCK_FINDING_FIELDS, where))
        action = finding.get("action")
        if isinstance(action, str) and action not in _FSCK_ACTIONS:
            errors.append(
                f"{where}: unknown action {action!r} "
                f"(expected one of {sorted(_FSCK_ACTIONS)})"
            )
    counts = data.get("counts")
    if isinstance(counts, dict):
        for key in _FSCK_COUNT_KEYS:
            if not isinstance(counts.get(key), int):
                errors.append(
                    f"fsck-report: counts missing or non-integer {key!r}"
                )
        unrepairable = counts.get("unrepairable")
        ok = data.get("ok")
        if isinstance(unrepairable, int) and isinstance(ok, bool):
            if ok != (unrepairable == 0):
                errors.append(
                    f"fsck-report: 'ok' is {ok} but counts report "
                    f"{unrepairable} unrepairable finding(s)"
                )
    return errors


def validate_fsck_report_file(path) -> List[str]:
    """Structural errors in a ``repro-fsck --report`` JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_fsck_report(data)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: validate manifests / traces / bench histories; 0 iff valid."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate run manifests, JSONL traces, and "
        "benchmark-history files.",
    )
    parser.add_argument(
        "manifest", nargs="?", default=None,
        help="path to a manifest JSON file",
    )
    parser.add_argument(
        "--trace", default=None, help="path to a JSONL trace to validate too"
    )
    parser.add_argument(
        "--history", default=None,
        help="path to a benchmark-history JSON (BENCH_*.json) to validate",
    )
    parser.add_argument(
        "--report", default=None,
        help="path to a trajectory-report JSON (trajectory.json) to validate",
    )
    parser.add_argument(
        "--dashboard", default=None,
        help="path to a dashboard-payload JSON (/dashboard.json) to validate",
    )
    parser.add_argument(
        "--job-trace", default=None, dest="job_trace",
        help="path to a flight-record JSON (/jobs/<id>/trace) to validate",
    )
    parser.add_argument(
        "--fsck-report", default=None, dest="fsck_report",
        help="path to a repro-fsck report JSON (--report FILE) to validate",
    )
    args = parser.parse_args(argv)
    inputs = (
        args.manifest, args.trace, args.history, args.report,
        args.dashboard, args.job_trace, args.fsck_report,
    )
    if all(value is None for value in inputs):
        parser.error(
            "nothing to validate: give a manifest, --trace, --history, "
            "--report, --dashboard, --job-trace, or --fsck-report"
        )
    errors = []
    checked = []
    if args.manifest is not None:
        errors.extend(validate_manifest_file(args.manifest))
        checked.append(args.manifest)
    if args.trace is not None:
        errors.extend(validate_trace_file(args.trace))
        checked.append(args.trace)
    if args.history is not None:
        errors.extend(validate_history_file(args.history))
        checked.append(args.history)
    if args.report is not None:
        errors.extend(validate_report_file(args.report))
        checked.append(args.report)
    if args.dashboard is not None:
        errors.extend(validate_dashboard_file(args.dashboard))
        checked.append(args.dashboard)
    if args.job_trace is not None:
        errors.extend(validate_job_trace_file(args.job_trace))
        checked.append(args.job_trace)
    if args.fsck_report is not None:
        errors.extend(validate_fsck_report_file(args.fsck_report))
        checked.append(args.fsck_report)
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"OK: {' and '.join(checked)} schema-valid")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
