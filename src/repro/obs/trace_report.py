"""``repro-trace-report``: cross-run analytics over JSONL span traces.

A single trace answers "where did *this* run spend its time"; this
module answers the cross-run questions — which phases got slower
between two runs, where wall time diverges from CPU time (I/O,
contention, or pool idling rather than compute), and what the merged
shape of many runs looks like as one ASCII flame.

Aggregation is by span *path* (``sweep/l2_replay``), the same key the
single-tracer flame uses, so numbers line up with
:meth:`repro.obs.spans.Tracer.flame` output. All input is the JSONL
trace format written by :meth:`~repro.obs.spans.Tracer.write_jsonl`
and schema-checked by :mod:`repro.obs.validate`.

Usage::

    repro-trace-report run_a/trace.jsonl run_b/trace.jsonl
    repro-trace-report obs/*.trace.jsonl --top 10 --json report.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.jsonl import read_jsonl
from repro.obs.validate import validate_span


def aggregate_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Fold span records into per-path totals, insertion-ordered.

    Returns ``{path: {"count", "wall_seconds", "cpu_seconds"}}`` with
    paths in first-appearance order (the flame reads top-down the way
    the run unfolded).
    """
    phases: Dict[str, Dict[str, float]] = {}
    for record in records:
        entry = phases.setdefault(
            record["path"],
            {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0},
        )
        entry["count"] += 1
        entry["wall_seconds"] += record["wall_seconds"]
        entry["cpu_seconds"] += record["cpu_seconds"]
    return phases


def load_trace(path) -> List[Dict[str, Any]]:
    """Read and schema-check one JSONL trace; raises on invalid input.

    Malformed JSONL raises :class:`ValueError` from the reader;
    schema-invalid records raise :class:`ValueError` with the first
    validation message, so a truncated or wrong-format file fails
    loudly instead of skewing the aggregate.
    """
    records = []
    for index, record in enumerate(read_jsonl(path)):
        errors = validate_span(record, where=f"{path}:{index + 1}")
        if errors:
            raise ValueError(errors[0])
        records.append(record)
    return records


def merge_aggregates(
    aggregates: Iterable[Dict[str, Dict[str, float]]]
) -> Dict[str, Dict[str, float]]:
    """Combine per-run aggregates into one (counts and times add)."""
    merged: Dict[str, Dict[str, float]] = {}
    for aggregate in aggregates:
        for path, entry in aggregate.items():
            target = merged.setdefault(
                path, {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0}
            )
            target["count"] += entry["count"]
            target["wall_seconds"] += entry["wall_seconds"]
            target["cpu_seconds"] += entry["cpu_seconds"]
    return merged


def top_deltas(
    baseline: Dict[str, Dict[str, float]],
    candidate: Dict[str, Dict[str, float]],
    top: int = 5,
) -> List[Dict[str, Any]]:
    """Phases ranked by wall-time growth from ``baseline`` to ``candidate``.

    Each row carries both absolute and relative deltas; phases present
    on only one side are included (treated as 0 on the missing side),
    since a phase appearing or vanishing is itself an attribution
    signal. Sorted by absolute wall delta, largest growth first.
    """
    rows = []
    for path in sorted(set(baseline) | set(candidate)):
        base_wall = baseline.get(path, {}).get("wall_seconds", 0.0)
        cand_wall = candidate.get(path, {}).get("wall_seconds", 0.0)
        delta = cand_wall - base_wall
        rows.append(
            {
                "path": path,
                "baseline_wall_seconds": base_wall,
                "candidate_wall_seconds": cand_wall,
                "delta_seconds": delta,
                "ratio": (cand_wall / base_wall) if base_wall > 0 else None,
                "only_in": (
                    "candidate" if path not in baseline
                    else "baseline" if path not in candidate
                    else None
                ),
            }
        )
    rows.sort(key=lambda row: row["delta_seconds"], reverse=True)
    return rows[:top]


def wall_cpu_split(aggregate: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Totals and the CPU/wall ratio of one aggregate.

    A ratio near 1.0 means compute-bound; well below 1.0 means the
    wall time went somewhere else (I/O, sleeping, a worker pool the
    parent waited on).
    """
    wall = sum(entry["wall_seconds"] for entry in aggregate.values())
    cpu = sum(entry["cpu_seconds"] for entry in aggregate.values())
    return {
        "wall_seconds": wall,
        "cpu_seconds": cpu,
        "cpu_over_wall": (cpu / wall) if wall > 0 else 0.0,
    }


def flame(aggregate: Dict[str, Dict[str, float]], width: int = 40) -> str:
    """ASCII flame of an aggregate: one bar per path, wall-scaled.

    Same rendering contract as :meth:`repro.obs.spans.Tracer.flame`,
    but over an (optionally merged, cross-run) aggregate.
    """
    if not aggregate:
        return "(no spans recorded)"
    longest = max(len(path) for path in aggregate)
    peak = max(e["wall_seconds"] for e in aggregate.values()) or 1.0
    lines = []
    for path, entry in aggregate.items():
        bar = "#" * max(1, int(round(width * entry["wall_seconds"] / peak)))
        lines.append(
            f"{path:<{longest}}  {bar:<{width}} "
            f"{entry['wall_seconds']:8.3f}s x{entry['count']}"
        )
    return "\n".join(lines)


def build_report(
    paths: List[str], top: int = 5
) -> Dict[str, Any]:
    """Load, aggregate, and cross-compare the given trace files.

    Returns the machine-readable report document: one ``runs`` item
    per trace (per-phase aggregate + wall/CPU split), a ``regressions``
    block comparing the first trace to the last when two or more are
    given, and the ``merged`` aggregate across all runs.
    """
    runs = []
    aggregates = []
    for path in paths:
        aggregate = aggregate_trace(load_trace(path))
        aggregates.append(aggregate)
        runs.append(
            {
                "trace": str(path),
                "phases": aggregate,
                "totals": wall_cpu_split(aggregate),
            }
        )
    merged = merge_aggregates(aggregates)
    report: Dict[str, Any] = {
        "runs": runs,
        "merged": {
            "phases": merged,
            "totals": wall_cpu_split(merged),
        },
    }
    if len(aggregates) >= 2:
        report["regressions"] = {
            "baseline_trace": str(paths[0]),
            "candidate_trace": str(paths[-1]),
            "top": top_deltas(aggregates[0], aggregates[-1], top=top),
        }
    return report


def render_report(report: Dict[str, Any], width: int = 40) -> str:
    """Terminal rendering of a :func:`build_report` document."""
    lines = []
    for run in report["runs"]:
        totals = run["totals"]
        lines.append(
            f"== {run['trace']}  "
            f"wall {totals['wall_seconds']:.3f}s  "
            f"cpu {totals['cpu_seconds']:.3f}s  "
            f"(cpu/wall {totals['cpu_over_wall']:.2f})"
        )
    regressions = report.get("regressions")
    if regressions:
        lines.append(
            f"\ntop phase deltas: {regressions['baseline_trace']} -> "
            f"{regressions['candidate_trace']}"
        )
        for row in regressions["top"]:
            ratio = row["ratio"]
            ratio_text = f"x{ratio:5.3f}" if ratio is not None else "  new "
            marker = (
                f" (only in {row['only_in']})" if row["only_in"] else ""
            )
            lines.append(
                f"  {row['path']:40s} "
                f"{row['baseline_wall_seconds']:8.3f}s -> "
                f"{row['candidate_wall_seconds']:8.3f}s  "
                f"{row['delta_seconds']:+8.3f}s  {ratio_text}{marker}"
            )
    lines.append("\nmerged flame (all runs):")
    lines.append(flame(report["merged"]["phases"], width=width))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: per-phase attribution across one or more JSONL traces."""
    parser = argparse.ArgumentParser(
        prog="repro-trace-report",
        description="Aggregate JSONL span traces into per-phase "
        "attribution, cross-run deltas, and a merged ASCII flame.",
    )
    parser.add_argument(
        "traces", nargs="+",
        help="JSONL trace files, oldest first (regressions compare "
        "first vs last)",
    )
    parser.add_argument(
        "--top", type=int, default=5,
        help="rows in the top-deltas table (default: %(default)s)",
    )
    parser.add_argument(
        "--width", type=int, default=40,
        help="flame bar width in characters (default: %(default)s)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable report JSON to PATH "
        "('-' for stdout)",
    )
    args = parser.parse_args(argv)
    try:
        report = build_report(args.traces, top=args.top)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report_json = json.dumps(report, indent=2, sort_keys=True)
    if args.json == "-":
        print(report_json)
    else:
        print(render_report(report, width=args.width))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(report_json + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
