"""``repro-trace-report``: cross-run analytics over JSONL span traces.

A single trace answers "where did *this* run spend its time"; this
module answers the cross-run questions — which phases got slower
between two runs, where wall time diverges from CPU time (I/O,
contention, or pool idling rather than compute), and what the merged
shape of many runs looks like as one ASCII flame.

Aggregation is by span *path* (``sweep/l2_replay``), the same key the
single-tracer flame uses, so numbers line up with
:meth:`repro.obs.spans.Tracer.flame` output. All input is the JSONL
trace format written by :meth:`~repro.obs.spans.Tracer.write_jsonl`
and schema-checked by :mod:`repro.obs.validate`.

With ``--job``, the same JSONL spool becomes a per-job **flight
record**: the spans carrying the job's ``trace_id`` (handler-side
admission and queue wait, the executing worker thread, and the
pool-worker spans shipped back across the process boundary) are
assembled into a causal tree and reduced to a critical path — queue
wait vs. admission vs. worker compute vs. result merge — whose
components sum exactly to the job's recorded end-to-end latency.

Usage::

    repro-trace-report run_a/trace.jsonl run_b/trace.jsonl
    repro-trace-report obs/*.trace.jsonl --top 10 --json report.json
    repro-trace-report --job 0001 spool/trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.jsonl import read_jsonl
from repro.obs.validate import validate_span


def aggregate_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Fold span records into per-path totals, insertion-ordered.

    Returns ``{path: {"count", "wall_seconds", "cpu_seconds"}}`` with
    paths in first-appearance order (the flame reads top-down the way
    the run unfolded).
    """
    phases: Dict[str, Dict[str, float]] = {}
    for record in records:
        entry = phases.setdefault(
            record["path"],
            {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0},
        )
        entry["count"] += 1
        entry["wall_seconds"] += record["wall_seconds"]
        entry["cpu_seconds"] += record["cpu_seconds"]
    return phases


def load_trace(path) -> List[Dict[str, Any]]:
    """Read and schema-check one JSONL trace; raises on invalid input.

    Malformed JSONL raises :class:`ValueError` from the reader;
    schema-invalid records raise :class:`ValueError` with the first
    validation message, so a truncated or wrong-format file fails
    loudly instead of skewing the aggregate.
    """
    records = []
    for index, record in enumerate(read_jsonl(path)):
        errors = validate_span(record, where=f"{path}:{index + 1}")
        if errors:
            raise ValueError(errors[0])
        records.append(record)
    return records


def merge_aggregates(
    aggregates: Iterable[Dict[str, Dict[str, float]]]
) -> Dict[str, Dict[str, float]]:
    """Combine per-run aggregates into one (counts and times add)."""
    merged: Dict[str, Dict[str, float]] = {}
    for aggregate in aggregates:
        for path, entry in aggregate.items():
            target = merged.setdefault(
                path, {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0}
            )
            target["count"] += entry["count"]
            target["wall_seconds"] += entry["wall_seconds"]
            target["cpu_seconds"] += entry["cpu_seconds"]
    return merged


def top_deltas(
    baseline: Dict[str, Dict[str, float]],
    candidate: Dict[str, Dict[str, float]],
    top: int = 5,
) -> List[Dict[str, Any]]:
    """Phases ranked by wall-time growth from ``baseline`` to ``candidate``.

    Each row carries both absolute and relative deltas; phases present
    on only one side are included (treated as 0 on the missing side),
    since a phase appearing or vanishing is itself an attribution
    signal. Sorted by absolute wall delta, largest growth first.
    """
    rows = []
    for path in sorted(set(baseline) | set(candidate)):
        base_wall = baseline.get(path, {}).get("wall_seconds", 0.0)
        cand_wall = candidate.get(path, {}).get("wall_seconds", 0.0)
        delta = cand_wall - base_wall
        rows.append(
            {
                "path": path,
                "baseline_wall_seconds": base_wall,
                "candidate_wall_seconds": cand_wall,
                "delta_seconds": delta,
                "ratio": (cand_wall / base_wall) if base_wall > 0 else None,
                "only_in": (
                    "candidate" if path not in baseline
                    else "baseline" if path not in candidate
                    else None
                ),
            }
        )
    rows.sort(key=lambda row: row["delta_seconds"], reverse=True)
    return rows[:top]


def wall_cpu_split(aggregate: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Totals and the CPU/wall ratio of one aggregate.

    A ratio near 1.0 means compute-bound; well below 1.0 means the
    wall time went somewhere else (I/O, sleeping, a worker pool the
    parent waited on).
    """
    wall = sum(entry["wall_seconds"] for entry in aggregate.values())
    cpu = sum(entry["cpu_seconds"] for entry in aggregate.values())
    return {
        "wall_seconds": wall,
        "cpu_seconds": cpu,
        "cpu_over_wall": (cpu / wall) if wall > 0 else 0.0,
    }


def flame(aggregate: Dict[str, Dict[str, float]], width: int = 40) -> str:
    """ASCII flame of an aggregate: one bar per path, wall-scaled.

    Same rendering contract as :meth:`repro.obs.spans.Tracer.flame`,
    but over an (optionally merged, cross-run) aggregate.
    """
    if not aggregate:
        return "(no spans recorded)"
    longest = max(len(path) for path in aggregate)
    peak = max(e["wall_seconds"] for e in aggregate.values()) or 1.0
    lines = []
    for path, entry in aggregate.items():
        bar = "#" * max(1, int(round(width * entry["wall_seconds"] / peak)))
        lines.append(
            f"{path:<{longest}}  {bar:<{width}} "
            f"{entry['wall_seconds']:8.3f}s x{entry['count']}"
        )
    return "\n".join(lines)


def build_span_tree(
    records: Iterable[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Assemble span records into a causal forest by span ids.

    Each node is the record plus a ``children`` list; children nest
    under the record whose ``span_id`` matches their
    ``parent_span_id``. A record whose parent is absent from the
    input (or ``None``) becomes a root — worker spans stay visible
    even when their submitting span has not landed yet. Siblings and
    roots are ordered by ``(start, index)``. ``start`` offsets are
    process-relative, so ordering is only meaningful within one
    process; causality comes from the ids.
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    ordered: List[Dict[str, Any]] = []
    for record in records:
        node = dict(record)
        node["children"] = []
        ordered.append(node)
        span_id = node.get("span_id")
        if span_id is not None:
            nodes[span_id] = node
    roots: List[Dict[str, Any]] = []
    for node in ordered:
        parent = nodes.get(node.get("parent_span_id"))
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    def sort_key(node: Dict[str, Any]):
        return (node.get("start", 0.0), node.get("index", 0))
    for node in ordered:
        node["children"].sort(key=sort_key)
    roots.sort(key=sort_key)
    return roots


#: Span names charged to each critical-path component of a job.
_JOB_COMPONENT_SPANS = (
    ("queue_wait", ("queue_wait",)),
    ("admission", ("admission",)),
    ("execute", ("service_job",)),
)


def build_job_report(
    records: Iterable[Dict[str, Any]], job_id: str
) -> Dict[str, Any]:
    """Reduce a job's flight record to its critical path.

    Finds the job's end-to-end ``job`` root span (``attrs.job ==
    job_id``), then attributes its wall time to the service phases
    recorded under the same trace: queue wait, admission, and worker
    execute, with the remainder reported as ``unattributed`` so the
    components **sum exactly** to the recorded end-to-end latency.
    Pool-worker spans (``pool_task`` and their children, shipped back
    across the process boundary) are summarized separately as worker
    compute vs. result merge — they overlap the ``execute`` wall, so
    they inform the breakdown without double-charging the sum.

    Raises :class:`ValueError` when the job has no ``job`` span in
    ``records``.
    """
    records = list(records)
    root = None
    for record in records:
        attrs = record.get("attrs") or {}
        if record.get("name") == "job" and attrs.get("job") == job_id:
            root = record
    if root is None:
        raise ValueError(f"no end-to-end 'job' span for job {job_id!r}")
    trace_id = root.get("trace_id")
    trace = [r for r in records if r.get("trace_id") == trace_id]
    e2e = root["wall_seconds"]
    by_name: Dict[str, List[Dict[str, Any]]] = {}
    for record in trace:
        by_name.setdefault(record["name"], []).append(record)

    critical_path: List[Dict[str, Any]] = []
    attributed = 0.0
    for component, span_names in _JOB_COMPONENT_SPANS:
        wall = sum(
            r["wall_seconds"]
            for name in span_names
            for r in by_name.get(name, ())
        )
        attributed += wall
        critical_path.append({
            "component": component,
            "wall_seconds": wall,
            "share": (wall / e2e) if e2e > 0 else 0.0,
        })
    residual = e2e - attributed
    critical_path.append({
        "component": "unattributed",
        "wall_seconds": residual,
        "share": (residual / e2e) if e2e > 0 else 0.0,
    })

    tasks = by_name.get("pool_task", [])
    worker_wall = sum(r["wall_seconds"] for r in tasks)
    worker_cpu = sum(r["cpu_seconds"] for r in tasks)
    execute_wall = sum(r["wall_seconds"] for r in by_name.get("service_job", ()))
    attempts = [int((r.get("attrs") or {}).get("attempt", 1)) for r in tasks]
    errors = sum(1 for r in tasks if (r.get("attrs") or {}).get("error"))
    return {
        "job": job_id,
        "trace_id": trace_id,
        "e2e_seconds": e2e,
        "spans": len(trace),
        "critical_path": critical_path,
        "worker": {
            "tasks": len(tasks),
            "wall_seconds": worker_wall,
            "cpu_seconds": worker_cpu,
            "max_attempt": max(attempts) if attempts else 0,
            "errors": errors,
            # Parent-side execute wall not covered by worker compute:
            # result validation, merge, and pool scheduling overhead.
            "merge_seconds": max(0.0, execute_wall - worker_wall),
        },
        "tree": build_span_tree(trace),
    }


def render_job_report(report: Dict[str, Any], width: int = 40) -> str:
    """Terminal rendering of a :func:`build_job_report` document."""
    lines = [
        f"== job {report['job']}  trace {report['trace_id']}  "
        f"e2e {report['e2e_seconds']:.3f}s  ({report['spans']} spans)",
        "critical path (components sum to e2e):",
    ]
    e2e = report["e2e_seconds"] or 1.0
    for row in report["critical_path"]:
        bar = "#" * max(0, int(round(width * row["wall_seconds"] / e2e)))
        lines.append(
            f"  {row['component']:<14} {row['wall_seconds']:8.3f}s "
            f"{row['share']*100:5.1f}%  {bar}"
        )
    worker = report["worker"]
    lines.append(
        f"worker: {worker['tasks']} task(s), "
        f"compute {worker['wall_seconds']:.3f}s "
        f"(cpu {worker['cpu_seconds']:.3f}s), "
        f"merge {worker['merge_seconds']:.3f}s, "
        f"max attempt {worker['max_attempt']}, "
        f"errors {worker['errors']}"
    )
    return "\n".join(lines)


def build_report(
    paths: List[str], top: int = 5
) -> Dict[str, Any]:
    """Load, aggregate, and cross-compare the given trace files.

    Returns the machine-readable report document: one ``runs`` item
    per trace (per-phase aggregate + wall/CPU split), a ``regressions``
    block comparing the first trace to the last when two or more are
    given, and the ``merged`` aggregate across all runs.
    """
    runs = []
    aggregates = []
    for path in paths:
        aggregate = aggregate_trace(load_trace(path))
        aggregates.append(aggregate)
        runs.append(
            {
                "trace": str(path),
                "phases": aggregate,
                "totals": wall_cpu_split(aggregate),
            }
        )
    merged = merge_aggregates(aggregates)
    report: Dict[str, Any] = {
        "runs": runs,
        "merged": {
            "phases": merged,
            "totals": wall_cpu_split(merged),
        },
    }
    if len(aggregates) >= 2:
        report["regressions"] = {
            "baseline_trace": str(paths[0]),
            "candidate_trace": str(paths[-1]),
            "top": top_deltas(aggregates[0], aggregates[-1], top=top),
        }
    return report


def render_report(report: Dict[str, Any], width: int = 40) -> str:
    """Terminal rendering of a :func:`build_report` document."""
    lines = []
    for run in report["runs"]:
        totals = run["totals"]
        lines.append(
            f"== {run['trace']}  "
            f"wall {totals['wall_seconds']:.3f}s  "
            f"cpu {totals['cpu_seconds']:.3f}s  "
            f"(cpu/wall {totals['cpu_over_wall']:.2f})"
        )
    regressions = report.get("regressions")
    if regressions:
        lines.append(
            f"\ntop phase deltas: {regressions['baseline_trace']} -> "
            f"{regressions['candidate_trace']}"
        )
        for row in regressions["top"]:
            ratio = row["ratio"]
            ratio_text = f"x{ratio:5.3f}" if ratio is not None else "  new "
            marker = (
                f" (only in {row['only_in']})" if row["only_in"] else ""
            )
            lines.append(
                f"  {row['path']:40s} "
                f"{row['baseline_wall_seconds']:8.3f}s -> "
                f"{row['candidate_wall_seconds']:8.3f}s  "
                f"{row['delta_seconds']:+8.3f}s  {ratio_text}{marker}"
            )
    lines.append("\nmerged flame (all runs):")
    lines.append(flame(report["merged"]["phases"], width=width))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: per-phase attribution across one or more JSONL traces."""
    parser = argparse.ArgumentParser(
        prog="repro-trace-report",
        description="Aggregate JSONL span traces into per-phase "
        "attribution, cross-run deltas, and a merged ASCII flame.",
    )
    parser.add_argument(
        "traces", nargs="+",
        help="JSONL trace files, oldest first (regressions compare "
        "first vs last)",
    )
    parser.add_argument(
        "--top", type=int, default=5,
        help="rows in the top-deltas table (default: %(default)s)",
    )
    parser.add_argument(
        "--width", type=int, default=40,
        help="flame bar width in characters (default: %(default)s)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable report JSON to PATH "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--job", default=None, metavar="JOB_ID",
        help="render the flight record of one service job instead: "
        "assemble its cross-process span tree from the given traces "
        "and print the critical path (queue wait / admission / "
        "execute / unattributed, summing to the end-to-end latency)",
    )
    args = parser.parse_args(argv)
    try:
        if args.job is not None:
            records: List[Dict[str, Any]] = []
            for path in args.traces:
                records.extend(load_trace(path))
            report = build_job_report(records, args.job)
        else:
            report = build_report(args.traces, top=args.top)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report_json = json.dumps(report, indent=2, sort_keys=True)
    if args.json == "-":
        print(report_json)
    else:
        if args.job is not None:
            print(render_job_report(report, width=args.width))
        else:
            print(render_report(report, width=args.width))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(report_json + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
