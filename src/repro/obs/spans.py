"""Tracing spans: nestable wall+CPU timers with a JSONL trace format.

A *span* measures one named phase of work — an L1 capture, an L2
replay, a table build. Spans nest (a per-thread stack via
:mod:`contextvars`), are based on the monotonic clocks
(``time.perf_counter`` for wall time, ``time.process_time`` for CPU
time — both immune to system clock steps), and record their
attributes, depth, and full path through the enclosing spans.
Durations are *inclusive* of child spans.

Every record also carries **causal identity** from
:mod:`repro.obs.context`: a ``trace_id`` shared by all spans of one
request, its own ``span_id``, and the ``parent_span_id`` it nests
under — taken from the enclosing span, or from the ambient
:class:`~repro.obs.context.TraceContext` when the span is the first
of its thread (the cross-thread and cross-process re-parenting hook).
A top-level span with no ambient context roots a fresh trace of its
own, so every record is attributable.

Usage::

    from repro.obs import span, get_tracer

    with span("l2_replay", l2="256K-32", associativity=4):
        with span("finalize"):
            ...

    get_tracer().write_jsonl("trace.jsonl")   # one record per span
    print(get_tracer().flame())               # ASCII flame summary

A span that unwinds on an exception is still recorded, stamped with
``error=True`` and the exception type in its attributes.

Instrumentation discipline: spans wrap *phases*, never per-access
work. Nothing in this module is invoked from the simulator hot path.
"""

from __future__ import annotations

import contextvars
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.context import (
    TraceContext,
    current_context,
    new_id,
    reset_context,
    set_context,
)
from repro.obs.jsonl import write_jsonl


class SpanRecord:
    """One completed span: identity, position, and measured durations.

    Attributes:
        name: The phase name passed to :meth:`Tracer.span`.
        path: ``"/"``-joined names of the enclosing spans plus this one
            (e.g. ``"sweep/l2_replay"``) — the flame-graph key.
        depth: Nesting depth (0 for top-level spans).
        start: Wall-clock offset in seconds since the tracer was
            created (monotonic; comparable across records of one trace).
        wall_seconds: Elapsed wall time, inclusive of children.
        cpu_seconds: Elapsed process CPU time, inclusive of children.
        attrs: The keyword attributes the span was opened with, plus
            ``error``/``error_type`` when the span unwound on an
            exception.
        index: Completion order within the tracer (0-based).
        trace_id: Causal trace this span belongs to.
        span_id: This span's own identity within the trace.
        parent_span_id: The span this one nests under (``None`` for a
            trace root).
    """

    __slots__ = (
        "name", "path", "depth", "start",
        "wall_seconds", "cpu_seconds", "attrs", "index",
        "trace_id", "span_id", "parent_span_id",
    )

    def __init__(
        self,
        name: str,
        path: str,
        depth: int,
        start: float,
        wall_seconds: float,
        cpu_seconds: float,
        attrs: Dict[str, Any],
        index: int,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
    ) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.start = start
        self.wall_seconds = wall_seconds
        self.cpu_seconds = cpu_seconds
        self.attrs = attrs
        self.index = index
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, as written to the JSONL trace."""
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attrs": self.attrs,
            "index": self.index,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from its :meth:`to_dict` form.

        Tolerates legacy records without the causal-identity fields
        (they come back as ``None``) so pre-context traces still load.
        """
        return cls(
            name=data["name"],
            path=data["path"],
            depth=data["depth"],
            start=data["start"],
            wall_seconds=data["wall_seconds"],
            cpu_seconds=data["cpu_seconds"],
            attrs=dict(data.get("attrs") or {}),
            index=data.get("index", 0),
            trace_id=data.get("trace_id"),
            span_id=data.get("span_id"),
            parent_span_id=data.get("parent_span_id"),
        )

    def __repr__(self) -> str:
        return (
            f"SpanRecord(path={self.path!r}, "
            f"wall_seconds={self.wall_seconds:.6f})"
        )


class _ActiveSpan:
    """Context manager for one in-flight span (created by ``Tracer.span``)."""

    __slots__ = (
        "_tracer", "name", "attrs", "_wall0", "_cpu0", "_path", "_depth",
        "trace_id", "span_id", "parent_span_id",
        "_stack_token", "_context_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        """Start the clocks, resolve causal identity, push the stack.

        The parent is the enclosing span of *this* context (thread);
        with no enclosing span, the ambient
        :class:`~repro.obs.context.TraceContext` — the hook through
        which a request's root span adopts worker threads — and with
        neither, the span roots a fresh trace.
        """
        tracer = self._tracer
        stack: Tuple["_ActiveSpan", ...] = tracer._stack_var.get() or ()
        self._depth = len(stack)
        parent = stack[-1] if stack else None
        self._path = f"{parent._path}/{self.name}" if parent else self.name
        self.span_id = new_id()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_span_id = parent.span_id
        else:
            ambient = current_context()
            if ambient is not None:
                self.trace_id = ambient.trace_id
                self.parent_span_id = ambient.span_id
            else:
                self.trace_id = new_id()
                self.parent_span_id = None
        self._stack_token = tracer._stack_var.set(stack + (self,))
        self._context_token = set_context(
            TraceContext(self.trace_id, self.span_id, self.parent_span_id)
        )
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop the clocks, pop the stack, and record the span.

        A span unwinding on an exception is stamped with
        ``error=True`` and the exception type — failures must be
        visible in the trace, not recorded as ordinary completions.
        """
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        if exc_type is not None:
            self.attrs["error"] = True
            self.attrs["error_type"] = exc_type.__name__
        tracer = self._tracer
        reset_context(self._context_token)
        tracer._stack_var.reset(self._stack_token)
        tracer._record(
            SpanRecord(
                name=self.name,
                path=self._path,
                depth=self._depth,
                start=self._wall0 - tracer._epoch,
                wall_seconds=wall,
                cpu_seconds=cpu,
                attrs=self.attrs,
                index=0,  # assigned under the tracer lock
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_span_id=self.parent_span_id,
            )
        )


class Tracer:
    """Collects completed :class:`SpanRecord`\\ s for one process.

    The active-span stack lives in a :mod:`contextvars` variable, so
    concurrent threads (e.g. ``repro-serve`` handler threads) each
    nest their own spans without corrupting each other's parent
    paths; the completed-record list is guarded by a lock. Records
    accumulate until :meth:`clear`.
    """

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._stack_var: "contextvars.ContextVar[Optional[Tuple[_ActiveSpan, ...]]]" = (
            contextvars.ContextVar("repro_tracer_stack", default=None)
        )
        self._epoch = time.perf_counter()

    @property
    def _stack(self) -> List[_ActiveSpan]:
        """The *current context's* open spans (compat/introspection)."""
        return list(self._stack_var.get() or ())

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span named ``name`` as a context manager.

        Keyword arguments become the span's attributes, recorded
        verbatim in the trace (keep them JSON-representable).
        """
        return _ActiveSpan(self, name, attrs)

    def _record(self, record: SpanRecord) -> SpanRecord:
        """Append one completed record, assigning its index atomically."""
        with self._lock:
            record.index = len(self.records)
            self.records.append(record)
        return record

    def record_span(
        self,
        name: str,
        wall_seconds: float,
        cpu_seconds: float = 0.0,
        attrs: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
        start: Optional[float] = None,
    ) -> SpanRecord:
        """Record an already-measured span with explicit identity.

        The synthesis hook for phases that cannot be a ``with`` block
        because they cross threads: the service's queue-wait interval
        (enqueued on a handler thread, dequeued on a worker thread)
        and the end-to-end ``job`` root span are both recorded here
        from their own stamps. ``span_id`` defaults to a fresh id;
        ``start`` defaults to ``wall_seconds`` ago.
        """
        now = time.perf_counter() - self._epoch
        return self._record(
            SpanRecord(
                name=name,
                path=name,
                depth=0,
                start=now - wall_seconds if start is None else start,
                wall_seconds=wall_seconds,
                cpu_seconds=cpu_seconds,
                attrs=dict(attrs or {}),
                index=0,
                trace_id=trace_id,
                span_id=span_id if span_id is not None else new_id(),
                parent_span_id=parent_span_id,
            )
        )

    def adopt(self, records: Iterable[Dict[str, Any]]) -> int:
        """Fold another process's span records into this tracer.

        Takes :meth:`SpanRecord.to_dict` dicts (the pool executor
        ships them back from workers), preserves their causal
        identity, paths, and durations, and re-indexes them locally.
        ``start`` offsets are worker-relative and kept as-is — tree
        assembly goes by span ids, not clocks. Returns the count.
        """
        count = 0
        for data in records:
            self._record(SpanRecord.from_dict(data))
            count += 1
        return count

    def snapshot_records(self) -> List[SpanRecord]:
        """A consistent copy of the completed records (lock-guarded)."""
        with self._lock:
            return list(self.records)

    def records_for_trace(self, trace_id: str) -> List[SpanRecord]:
        """Completed records belonging to ``trace_id``, in index order."""
        return [
            record
            for record in self.snapshot_records()
            if record.trace_id == trace_id
        ]

    def phase_timings(self) -> Dict[str, Dict[str, float]]:
        """Aggregate completed spans by name.

        Returns:
            ``{name: {"count": n, "wall_seconds": w, "cpu_seconds": c}}``
            with durations summed per name — the per-phase timing block
            embedded in run manifests.
        """
        phases: Dict[str, Dict[str, float]] = {}
        for record in self.snapshot_records():
            entry = phases.setdefault(
                record.name,
                {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0},
            )
            entry["count"] += 1
            entry["wall_seconds"] += record.wall_seconds
            entry["cpu_seconds"] += record.cpu_seconds
        return phases

    def write_jsonl(self, path) -> int:
        """Write every record to ``path`` as JSONL; returns the count.

        The file is rewritten whole (it is an artifact of this tracer's
        current state, not an append log), so emitting after each run
        of a long session always yields a complete, valid trace.
        """
        return write_jsonl(
            Path(path),
            (record.to_dict() for record in self.snapshot_records()),
        )

    def flame(self, width: int = 40) -> str:
        """ASCII flame summary: wall time per span *path*, as bars.

        Paths aggregate all spans sharing the same position in the
        hierarchy; bars scale to the largest total. Example::

            sweep                 ######################## 1.204s x1
            sweep/l2_replay       ##########               0.512s x4
        """
        totals: Dict[str, List[float]] = {}
        order: List[str] = []
        records = self.snapshot_records()
        for record in sorted(records, key=lambda r: (r.start, r.index)):
            if record.path not in totals:
                totals[record.path] = [0.0, 0]
                order.append(record.path)
            totals[record.path][0] += record.wall_seconds
            totals[record.path][1] += 1
        if not totals:
            return "(no spans recorded)"
        longest = max(len(path) for path in order)
        peak = max(wall for wall, _ in totals.values()) or 1.0
        lines = []
        for path in order:
            wall, count = totals[path]
            bar = "#" * max(1, int(round(width * wall / peak)))
            lines.append(
                f"{path:<{longest}}  {bar:<{width}} {wall:8.3f}s x{count}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop every completed record (open spans are unaffected)."""
        with self._lock:
            self.records.clear()

    def __repr__(self) -> str:
        return (
            f"Tracer(records={len(self.records)}, open={len(self._stack)})"
        )


#: The process-global tracer used by :func:`span` and the runners.
_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global :class:`Tracer` (one per worker process)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one.

    Intended for tests and embedders that need an isolated trace.
    """
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def span(name: str, **attrs: Any) -> _ActiveSpan:
    """Open a span on the process-global tracer (see :meth:`Tracer.span`)."""
    return _GLOBAL_TRACER.span(name, **attrs)
