"""Tracing spans: nestable wall+CPU timers with a JSONL trace format.

A *span* measures one named phase of work — an L1 capture, an L2
replay, a table build. Spans nest (a stack per :class:`Tracer`), are
based on the monotonic clocks (``time.perf_counter`` for wall time,
``time.process_time`` for CPU time — both immune to system clock
steps), and record their attributes, depth, and full path through the
enclosing spans. Durations are *inclusive* of child spans.

Usage::

    from repro.obs import span, get_tracer

    with span("l2_replay", l2="256K-32", associativity=4):
        with span("finalize"):
            ...

    get_tracer().write_jsonl("trace.jsonl")   # one record per span
    print(get_tracer().flame())               # ASCII flame summary

Instrumentation discipline: spans wrap *phases*, never per-access
work. Nothing in this module is invoked from the simulator hot path.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.jsonl import write_jsonl


class SpanRecord:
    """One completed span: identity, position, and measured durations.

    Attributes:
        name: The phase name passed to :meth:`Tracer.span`.
        path: ``"/"``-joined names of the enclosing spans plus this one
            (e.g. ``"sweep/l2_replay"``) — the flame-graph key.
        depth: Nesting depth (0 for top-level spans).
        start: Wall-clock offset in seconds since the tracer was
            created (monotonic; comparable across records of one trace).
        wall_seconds: Elapsed wall time, inclusive of children.
        cpu_seconds: Elapsed process CPU time, inclusive of children.
        attrs: The keyword attributes the span was opened with.
        index: Completion order within the tracer (0-based).
    """

    __slots__ = (
        "name", "path", "depth", "start",
        "wall_seconds", "cpu_seconds", "attrs", "index",
    )

    def __init__(
        self,
        name: str,
        path: str,
        depth: int,
        start: float,
        wall_seconds: float,
        cpu_seconds: float,
        attrs: Dict[str, Any],
        index: int,
    ) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.start = start
        self.wall_seconds = wall_seconds
        self.cpu_seconds = cpu_seconds
        self.attrs = attrs
        self.index = index

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, as written to the JSONL trace."""
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attrs": self.attrs,
            "index": self.index,
        }

    def __repr__(self) -> str:
        return (
            f"SpanRecord(path={self.path!r}, "
            f"wall_seconds={self.wall_seconds:.6f})"
        )


class _ActiveSpan:
    """Context manager for one in-flight span (created by ``Tracer.span``)."""

    __slots__ = ("_tracer", "name", "attrs", "_wall0", "_cpu0", "_path", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        """Start the clocks and push onto the tracer's span stack."""
        stack = self._tracer._stack
        self._depth = len(stack)
        parent = stack[-1]._path if stack else ""
        self._path = f"{parent}/{self.name}" if parent else self.name
        stack.append(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info) -> None:
        """Stop the clocks, pop the stack, and record the span."""
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        tracer = self._tracer
        tracer._stack.pop()
        tracer.records.append(
            SpanRecord(
                name=self.name,
                path=self._path,
                depth=self._depth,
                start=self._wall0 - tracer._epoch,
                wall_seconds=wall,
                cpu_seconds=cpu,
                attrs=self.attrs,
                index=len(tracer.records),
            )
        )


class Tracer:
    """Collects completed :class:`SpanRecord`\\ s for one process.

    A tracer is cheap (a list and a stack) and not thread-safe; use one
    per thread, or — the common case — the process-global tracer from
    :func:`get_tracer`. Records accumulate until :meth:`clear`.
    """

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[_ActiveSpan] = []
        self._epoch = time.perf_counter()

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span named ``name`` as a context manager.

        Keyword arguments become the span's attributes, recorded
        verbatim in the trace (keep them JSON-representable).
        """
        return _ActiveSpan(self, name, attrs)

    def phase_timings(self) -> Dict[str, Dict[str, float]]:
        """Aggregate completed spans by name.

        Returns:
            ``{name: {"count": n, "wall_seconds": w, "cpu_seconds": c}}``
            with durations summed per name — the per-phase timing block
            embedded in run manifests.
        """
        phases: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            entry = phases.setdefault(
                record.name,
                {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0},
            )
            entry["count"] += 1
            entry["wall_seconds"] += record.wall_seconds
            entry["cpu_seconds"] += record.cpu_seconds
        return phases

    def write_jsonl(self, path) -> int:
        """Write every record to ``path`` as JSONL; returns the count.

        The file is rewritten whole (it is an artifact of this tracer's
        current state, not an append log), so emitting after each run
        of a long session always yields a complete, valid trace.
        """
        return write_jsonl(
            Path(path), (record.to_dict() for record in self.records)
        )

    def flame(self, width: int = 40) -> str:
        """ASCII flame summary: wall time per span *path*, as bars.

        Paths aggregate all spans sharing the same position in the
        hierarchy; bars scale to the largest total. Example::

            sweep                 ######################## 1.204s x1
            sweep/l2_replay       ##########               0.512s x4
        """
        totals: Dict[str, List[float]] = {}
        order: List[str] = []
        for record in sorted(self.records, key=lambda r: (r.start, r.index)):
            if record.path not in totals:
                totals[record.path] = [0.0, 0]
                order.append(record.path)
            totals[record.path][0] += record.wall_seconds
            totals[record.path][1] += 1
        if not totals:
            return "(no spans recorded)"
        longest = max(len(path) for path in order)
        peak = max(wall for wall, _ in totals.values()) or 1.0
        lines = []
        for path in order:
            wall, count = totals[path]
            bar = "#" * max(1, int(round(width * wall / peak)))
            lines.append(
                f"{path:<{longest}}  {bar:<{width}} {wall:8.3f}s x{count}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop every completed record (open spans are unaffected)."""
        self.records.clear()

    def __repr__(self) -> str:
        return (
            f"Tracer(records={len(self.records)}, open={len(self._stack)})"
        )


#: The process-global tracer used by :func:`span` and the runners.
_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global :class:`Tracer` (one per worker process)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one.

    Intended for tests and embedders that need an isolated trace.
    """
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def span(name: str, **attrs: Any) -> _ActiveSpan:
    """Open a span on the process-global tracer (see :meth:`Tracer.span`)."""
    return _GLOBAL_TRACER.span(name, **attrs)
