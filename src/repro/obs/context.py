"""Causal trace context: request-scoped trace/span identity.

A :class:`TraceContext` names *where in a request's causal tree the
current code is running*: the ``trace_id`` shared by every span of one
request (a ``repro-serve`` job, a sweep, a benchmark run), the
``span_id`` of the innermost active span, and that span's
``parent_span_id``. The ambient context lives in a
:mod:`contextvars` variable, so it is isolated per thread *and* per
``asyncio``-style logical context — concurrent ``repro-serve`` handler
threads each see only their own request.

Identity generation is pluggable through :class:`IdSource`. A seeded
source is **deterministic**: the N-th id drawn from ``IdSource(seed)``
is a pure function of ``(seed, N)``, so tests (and byte-stability
checks over emitted traces) can pin ``REPRO_TRACE_SEED`` and get
identical ids on every run. Without a seed, ids are random.

Cross-process propagation is by value, not by inheritance: the
resilient pool executor embeds ``TraceContext.to_wire()`` in each
pickled task envelope and the worker guard installs it around the
task, so worker-side spans re-parent under the *submitting* span —
surviving fork, spawn, pool re-creation, and retry (which fork-time
contextvar inheritance would not: tasks are submitted long after the
fork).

Usage::

    from repro.obs.context import current_context, new_trace, activate

    with activate(new_trace()):          # open a request root
        with span("admission"):          # parented under the root
            ...

Like the rest of :mod:`repro.obs`, nothing here runs on the simulator
hot path; contexts change at phase boundaries only.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import os
from typing import Any, Dict, Iterator, Optional, Tuple

#: Environment variable seeding the default :class:`IdSource`. When
#: set, every process that inherits it draws the same id sequence —
#: the byte-stability switch for tests and golden traces.
TRACE_SEED_ENV_VAR = "REPRO_TRACE_SEED"

#: Hex characters per generated id (64-bit ids, OTel-style halves).
_ID_HEX_CHARS = 16


class TraceContext:
    """One position in a request's causal span tree (immutable).

    Attributes:
        trace_id: Identity shared by every span of one request.
        span_id: The innermost active span at this position.
        parent_span_id: That span's parent, or ``None`` at the root.
    """

    __slots__ = ("trace_id", "span_id", "parent_span_id")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_span_id: Optional[str] = None,
    ) -> None:
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "span_id", span_id)
        object.__setattr__(self, "parent_span_id", parent_span_id)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("TraceContext is immutable")

    def child(self, span_id: str) -> "TraceContext":
        """The context of a child span ``span_id`` under this one."""
        return TraceContext(self.trace_id, span_id, self.span_id)

    def to_wire(self) -> Tuple[str, str, Optional[str]]:
        """Picklable tuple form for the pool task envelope."""
        return (self.trace_id, self.span_id, self.parent_span_id)

    @classmethod
    def from_wire(
        cls, wire: Optional[Tuple[str, str, Optional[str]]]
    ) -> Optional["TraceContext"]:
        """Rebuild from :meth:`to_wire` output (``None`` passes through)."""
        if wire is None:
            return None
        trace_id, span_id, parent_span_id = wire
        return cls(trace_id, span_id, parent_span_id)

    def to_dict(self) -> Dict[str, Optional[str]]:
        """Plain-dict form (JSON-representable)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.to_wire() == other.to_wire()
        )

    def __hash__(self) -> int:
        return hash(self.to_wire())

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, "
            f"parent_span_id={self.parent_span_id!r})"
        )


class IdSource:
    """Generates trace/span ids; deterministic when seeded.

    Args:
        seed: Any string. When given, the N-th id is
            ``sha256(f"{seed}:{N}")[:16]`` — a pure function of the
            seed and the draw counter, so two sources with the same
            seed emit identical sequences (the byte-stable test mode).
            When ``None``, the source seeds itself from ``os.urandom``
            (unique per process, non-reproducible).
    """

    __slots__ = ("seed", "_counter")

    def __init__(self, seed: Optional[str] = None) -> None:
        if seed is None:
            seed = os.urandom(16).hex()
        self.seed = str(seed)
        self._counter = 0

    def next_id(self) -> str:
        """The next 16-hex-char id in this source's sequence."""
        self._counter += 1
        digest = hashlib.sha256(
            f"{self.seed}:{self._counter}".encode("ascii")
        ).hexdigest()
        return digest[:_ID_HEX_CHARS]

    def __repr__(self) -> str:
        return f"IdSource(drawn={self._counter})"


def _default_id_source() -> IdSource:
    """A fresh default source, honoring ``REPRO_TRACE_SEED``."""
    return IdSource(os.environ.get(TRACE_SEED_ENV_VAR) or None)


#: The process-global id source spans draw from by default.
_ID_SOURCE = _default_id_source()

#: The ambient trace context of the current thread/logical context.
_CONTEXT: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def get_id_source() -> IdSource:
    """The process-global :class:`IdSource`."""
    return _ID_SOURCE


def set_id_source(source: IdSource) -> IdSource:
    """Swap the process-global id source; returns the previous one.

    Tests install ``IdSource(seed)`` here (or export
    ``REPRO_TRACE_SEED``) to make every generated id reproducible; the
    worker guard installs a source seeded from the inherited span id
    so worker-side ids are deterministic *and* collision-free across
    the pool.
    """
    global _ID_SOURCE
    previous = _ID_SOURCE
    _ID_SOURCE = source
    return previous


def reset_id_source() -> IdSource:
    """Re-derive the default source from the environment (tests)."""
    return set_id_source(_default_id_source())


def new_id() -> str:
    """One id from the process-global source."""
    return _ID_SOURCE.next_id()


def new_trace(id_source: Optional[IdSource] = None) -> TraceContext:
    """A fresh root context: new trace id, new root span id.

    The returned context *is* the request's root span identity — the
    service records the end-to-end ``job`` span under this
    ``span_id`` when the request finishes.
    """
    source = id_source if id_source is not None else _ID_SOURCE
    return TraceContext(
        trace_id=source.next_id(), span_id=source.next_id(),
        parent_span_id=None,
    )


def current_context() -> Optional[TraceContext]:
    """The ambient :class:`TraceContext`, or ``None`` outside a trace."""
    return _CONTEXT.get()


def set_context(
    context: Optional[TraceContext],
) -> "contextvars.Token[Optional[TraceContext]]":
    """Install ``context`` as ambient; returns the token to restore."""
    return _CONTEXT.set(context)


def reset_context(
    token: "contextvars.Token[Optional[TraceContext]]",
) -> None:
    """Undo a :func:`set_context` (tokens restore in LIFO order)."""
    _CONTEXT.reset(token)


@contextlib.contextmanager
def activate(context: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """``with activate(ctx):`` — ambient context for the block's duration."""
    token = set_context(context)
    try:
        yield context
    finally:
        reset_context(token)
