"""Run provenance manifests: what produced a result, exactly.

A manifest is a small JSON document written next to a run's results
that answers, months later, "which config, which workload seed, which
code produced these numbers?" — the attribution discipline the probe
accounting applies to counters, applied to whole runs. It records:

- a **config hash** (content address of the canonicalized run
  configuration) for cheap "same experiment?" comparisons,
- the **workload identity** (seed, segment structure — everything a
  deterministic re-derivation needs),
- the **code identity** (package version, best-effort git SHA),
- **per-phase timings** aggregated from the tracer's spans,
- a **metrics snapshot** and any recorded **failures**.

Schema validation lives in :mod:`repro.obs.validate`; the format is
versioned via :data:`MANIFEST_SCHEMA_VERSION`.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Version of the manifest JSON layout (bump on breaking changes).
MANIFEST_SCHEMA_VERSION = 1


def config_hash(config: Any) -> str:
    """Content address of a run configuration (16 hex chars).

    The configuration is canonicalized (JSON, sorted keys, ``repr``
    fallback for exotic values) before hashing, so dict ordering and
    equivalent spellings hash identically.
    """
    canonical = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a checkout.

    Best-effort by design: provenance should never fail a run, so any
    error (no git binary, not a repository, timeout) degrades to
    ``None``.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def package_version() -> Optional[str]:
    """The installed ``repro`` version, or ``None`` if unimportable.

    Imported lazily to keep :mod:`repro.obs` free of package-internal
    dependencies (it is imported *by* the core modules).
    """
    try:
        import repro

        return getattr(repro, "__version__", None)
    except Exception:  # pragma: no cover - defensive
        return None


def describe_workload(workload: Any) -> Optional[Dict[str, Any]]:
    """Reproducible identity of a workload object, as a plain dict.

    Records the common :class:`~repro.trace.synthetic.AtumWorkload`
    parameters when present plus the workload's own ``cache_key()``
    (the content address the miss-stream cache uses), so a manifest
    pins the exact reference stream.
    """
    if workload is None:
        return None
    description: Dict[str, Any] = {"type": type(workload).__qualname__}
    for attr in ("seed", "segments", "references_per_segment", "cold_start"):
        if hasattr(workload, attr):
            description[attr] = getattr(workload, attr)
    cache_key = getattr(workload, "cache_key", None)
    if callable(cache_key):
        description["cache_key"] = repr(tuple(cache_key()))
    return description


class RunManifest:
    """A provenance manifest for one run, writable as JSON.

    Build one with :meth:`build` (which stamps code identity and
    timestamps), or wrap an existing dict with the constructor.
    """

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    @classmethod
    def build(
        cls,
        tool: str,
        config: Any,
        workload: Any = None,
        tracer: Any = None,
        metrics: Any = None,
        failures: Sequence[Dict[str, Any]] = (),
        extra: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Assemble a manifest for ``tool`` run with ``config``.

        Args:
            tool: Name of the producing entry point (e.g.
                ``"ParallelSweepRunner"``).
            config: JSON-representable run configuration; hashed into
                ``config_hash``.
            workload: Optional workload, described via
                :func:`describe_workload`.
            tracer: Optional :class:`~repro.obs.spans.Tracer`; its
                :meth:`~repro.obs.spans.Tracer.phase_timings` become
                the ``phases`` block.
            metrics: Optional
                :class:`~repro.obs.metrics.MetricsRegistry`; its
                snapshot becomes the ``metrics`` block.
            failures: Recorded failures (dicts with at least
                ``"error"``).
            extra: Additional top-level keys (must not collide with
                the schema's).
        """
        data: Dict[str, Any] = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "tool": tool,
            "created_unix": time.time(),
            "package_version": package_version(),
            "git_sha": git_sha(),
            "config": config,
            "config_hash": config_hash(config),
            "workload": describe_workload(workload),
            "phases": tracer.phase_timings() if tracer is not None else {},
            "metrics": metrics.snapshot() if metrics is not None else {},
            "failures": list(failures),
        }
        if extra:
            for key in extra:
                if key in data:
                    raise ValueError(
                        f"extra manifest key {key!r} collides with the schema"
                    )
            data.update(extra)
        return cls(data)

    @classmethod
    def load(cls, path) -> "RunManifest":
        """Read a manifest previously written with :meth:`write`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls(json.load(handle))

    def to_json(self) -> str:
        """The manifest as pretty-printed, key-sorted JSON."""
        return json.dumps(self.data, indent=2, sort_keys=True, default=repr)

    def write(self, path) -> Path:
        """Durably write the manifest to ``path``; returns it.

        Uses temp + fsync + atomic rename
        (:func:`repro.storage.io.atomic_write_text`), so a crash
        mid-write can never leave a torn manifest next to valid
        results.
        """
        from repro.storage.io import atomic_write_text

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, self.to_json() + "\n")
        return path

    @property
    def config_hash(self) -> str:
        """The run configuration's content address."""
        return self.data["config_hash"]

    @property
    def phases(self) -> Dict[str, Dict[str, float]]:
        """Per-phase timing block (name → count/wall/cpu seconds)."""
        return self.data.get("phases", {})

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """Failures recorded during the run (empty on success)."""
        return self.data.get("failures", [])

    def __repr__(self) -> str:
        return (
            f"RunManifest(tool={self.data.get('tool')!r}, "
            f"config_hash={self.data.get('config_hash')!r})"
        )
