"""Append-only JSONL sink shared by the tracer and manifest writers.

One record per line, UTF-8, ``\\n``-terminated — the least-common-
denominator format every log shipper and ``jq`` pipeline understands.
Writing is buffered per :class:`JsonlWriter` instance and flushed on
:meth:`~JsonlWriter.close` (or context-manager exit); reading streams
records lazily so multi-gigabyte traces never need to fit in memory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, Union

PathLike = Union[str, "Path"]


def _canonical(record: Dict[str, Any]) -> str:
    """One deterministic JSON line for ``record`` (sorted keys)."""
    return json.dumps(record, sort_keys=True, default=str)


class JsonlWriter:
    """Appends dict records to a JSONL file, one JSON object per line.

    Usable as a context manager::

        with JsonlWriter(path) as sink:
            sink.write({"event": "started"})

    Args:
        path: Destination file. Parent directories are created.
        append: Open in append mode (default) so several writers can
            extend one trace; pass ``False`` to truncate first.
    """

    def __init__(self, path: PathLike, append: bool = True) -> None:
        from repro.storage.io import get_io

        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = get_io().open(
            self.path, "a" if append else "w", encoding="utf-8"
        )

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as a JSON line."""
        from repro.storage.io import get_io

        get_io().write(self._handle, _canonical(record) + "\n")

    def sync(self) -> None:
        """Flush and fsync the spool — records so far are durable."""
        from repro.storage.io import get_io

        get_io().fsync(self._handle)

    def write_many(self, records) -> None:
        """Append every record of an iterable."""
        for record in records:
            self.write(record)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlWriter":
        """Enter: the writer itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Exit: close the file."""
        self.close()

    def __repr__(self) -> str:
        return f"JsonlWriter(path={str(self.path)!r})"


def write_jsonl(path: PathLike, records, append: bool = False) -> int:
    """Write an iterable of dicts to ``path``; returns the record count.

    Truncates by default (a complete artifact, not a log); pass
    ``append=True`` for incremental extension.
    """
    count = 0
    with JsonlWriter(path, append=append) as sink:
        for record in records:
            sink.write(record)
            count += 1
    return count


def read_jsonl(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Yield each record of a JSONL file lazily.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the 1-based line number, so a truncated trace fails loudly.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed JSONL record: {exc}"
                ) from exc
