"""Hit/miss counters for caches and the two-level hierarchy.

Terminology follows the paper (taken from [Przy88b]):

- *global miss ratio* — fraction of processor requests that miss in
  both the level-one and level-two caches;
- *local miss ratio* (of the level-two cache) — fraction of read-ins
  and write-backs from the level-one cache that miss in the level-two
  cache;
- *fraction write-back* — fraction of requests from the level-one
  cache that are write-backs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters for a single cache level."""

    readin_hits: int = 0
    readin_misses: int = 0
    writeback_hits: int = 0
    writeback_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def readins(self) -> int:
        """Read-in requests serviced."""
        return self.readin_hits + self.readin_misses

    @property
    def writebacks(self) -> int:
        """Write-back requests serviced."""
        return self.writeback_hits + self.writeback_misses

    @property
    def accesses(self) -> int:
        """All requests serviced."""
        return self.readins + self.writebacks

    @property
    def readin_miss_ratio(self) -> float:
        """Miss ratio over read-in requests only."""
        if self.readins == 0:
            return 0.0
        return self.readin_misses / self.readins

    @property
    def local_miss_ratio(self) -> float:
        """Paper's local miss ratio: misses over read-ins *and* write-backs."""
        if self.accesses == 0:
            return 0.0
        return (self.readin_misses + self.writeback_misses) / self.accesses

    @property
    def fraction_writebacks(self) -> float:
        """Fraction of requests from the level above that are write-backs."""
        if self.accesses == 0:
            return 0.0
        return self.writebacks / self.accesses

    def merge(self, other: "CacheStats") -> None:
        """Fold another counter set into this one."""
        self.readin_hits += other.readin_hits
        self.readin_misses += other.readin_misses
        self.writeback_hits += other.writeback_hits
        self.writeback_misses += other.writeback_misses
        self.evictions += other.evictions
        self.dirty_evictions += other.dirty_evictions


@dataclass
class HierarchyStats:
    """Counters spanning both levels of the hierarchy."""

    processor_references: int = 0
    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)

    @property
    def l1_miss_ratio(self) -> float:
        """Fraction of processor references that miss in the level-one cache."""
        if self.processor_references == 0:
            return 0.0
        return self.l1.readin_misses / self.processor_references

    @property
    def global_miss_ratio(self) -> float:
        """Fraction of processor references that miss in both caches."""
        if self.processor_references == 0:
            return 0.0
        return self.l2.readin_misses / self.processor_references
