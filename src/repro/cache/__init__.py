"""Cache-simulator substrate: the system the paper evaluates on.

Provides address mapping, replacement policies, a direct-mapped
write-back level-one cache, a set-associative level-two cache with
multi-scheme probe instrumentation, and the two-level hierarchy with
the paper's read-in / write-back protocol and write-back optimization.
"""

from repro.cache.address import AddressMapper
from repro.cache.artifacts import (
    StreamArtifactStore,
    get_artifact_store,
    set_artifact_store,
)
from repro.cache.associative_l1 import AssociativeL1Cache
from repro.cache.coherence import (
    CoherenceStats,
    InvalidationInjector,
    run_with_invalidations,
)
from repro.cache.direct_mapped import DirectMappedCache, MemoryRequest, RequestKind
from repro.cache.hash_rehash import HashRehashCache
from repro.cache.hierarchy import (
    InclusionStats,
    MissStream,
    TwoLevelHierarchy,
    cached_miss_stream,
    cached_packed_miss_stream,
    capture_miss_stream,
    clear_miss_stream_cache,
    replay_miss_stream,
    split_stream_at_flushes,
)
from repro.cache.stream import PackedMissStream
from repro.cache.stack import StackSimulator
from repro.cache.multiprocessor import (
    MultiprocessorStats,
    MultiprocessorSystem,
    node_workloads,
)
from repro.cache.observers import MruDistanceObserver, ProbeObserver
from repro.cache.replacement import (
    FifoReplacement,
    LruReplacement,
    RandomReplacement,
    ReplacementPolicy,
    make_replacement,
)
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.set_state import CacheSet
from repro.cache.stats import CacheStats, HierarchyStats

__all__ = [
    "AddressMapper",
    "AssociativeL1Cache",
    "CacheSet",
    "CacheStats",
    "CoherenceStats",
    "DirectMappedCache",
    "HashRehashCache",
    "InvalidationInjector",
    "FifoReplacement",
    "HierarchyStats",
    "InclusionStats",
    "LruReplacement",
    "MemoryRequest",
    "MissStream",
    "MruDistanceObserver",
    "MultiprocessorStats",
    "MultiprocessorSystem",
    "PackedMissStream",
    "ProbeObserver",
    "RandomReplacement",
    "ReplacementPolicy",
    "RequestKind",
    "SetAssociativeCache",
    "StackSimulator",
    "StreamArtifactStore",
    "TwoLevelHierarchy",
    "cached_miss_stream",
    "cached_packed_miss_stream",
    "capture_miss_stream",
    "clear_miss_stream_cache",
    "get_artifact_store",
    "make_replacement",
    "node_workloads",
    "replay_miss_stream",
    "run_with_invalidations",
    "set_artifact_store",
    "split_stream_at_flushes",
]
