"""Columnar packed miss streams and the mmap-able RPM2 artifact format.

A captured L1 miss stream is the unit of reuse across every L2 sweep:
one stream is replayed into dozens of instrumented configurations. The
legacy :class:`~repro.cache.hierarchy.MissStream` stores it as a Python
list of ``(kind_code, address)`` tuples — two heap objects per event.
:class:`PackedMissStream` stores the same information *columnar*:

- a **codes** column (one unsigned byte per event: 0 = read-in,
  1 = write-back),
- an **addresses** column (one unsigned 64-bit word per event),
- a **flush-offsets** index (for each cold-start boundary, the number
  of events that precede it — flushes are *not* inline sentinels).

Columns are stdlib :class:`array.array` / :class:`memoryview` buffers,
so splitting at flush boundaries is zero-copy slicing, counting event
kinds is a single C-level pass, and persistence is a handful of bulk
writes. When numpy is importable (and ``REPRO_NO_NUMPY`` is unset) the
columns can additionally be viewed as ndarrays for vectorized address
arithmetic; every consumer falls back to the stdlib buffers behind the
same API, so numpy stays strictly optional.

The on-disk **RPM2** format (version 2 of the ``RPMS`` record format)
lays the columns out contiguously with 8-byte alignment::

    offset  0   magic  b"RPM2"
    offset  4   u32    format version (currently 1)
    offset  8   u64    processor_references
    offset 16   u64    n_events
    offset 24   u64    n_flushes
    offset 32   u8  x n_events   codes column
    (pad to 8-byte alignment)
    u64 x n_events               addresses column (little-endian)
    u64 x n_flushes              flush-offsets column (little-endian)

so :meth:`PackedMissStream.load` can map the file and hand out
zero-copy ``memoryview.cast("Q")`` windows directly over the page
cache — the content-addressed stream-artifact store
(:mod:`repro.cache.artifacts`) relies on this for cheap reuse across
worker processes and service jobs. Legacy ``RPMS`` files load through
the same entry point (materialized, not mapped).
"""

from __future__ import annotations

import gzip
import os
import struct
import sys
from array import array
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.errors import TraceFormatError

#: Sentinel yielded by :meth:`PackedMissStream.iter_events` at flush
#: boundaries — identical to the legacy in-stream marker.
FLUSH_MARKER: Tuple[int, int] = (-1, -1)

_MAGIC = b"RPM2"
_LEGACY_MAGIC = b"RPMS"
_VERSION = 1
_HEADER = struct.Struct("<4sIQQQ")


def numpy_or_none():
    """The numpy module, or ``None`` when unavailable or disabled.

    Disabled explicitly with ``REPRO_NO_NUMPY=1`` (the CI no-numpy job
    uses this to keep the stdlib ``array`` path exercised); the
    environment is re-read on every call so tests can toggle it, while
    the import itself is attempted at most once.
    """
    if os.environ.get("REPRO_NO_NUMPY", "").strip() not in ("", "0"):
        return None
    global _NUMPY, _NUMPY_IMPORTED
    if not _NUMPY_IMPORTED:
        _NUMPY_IMPORTED = True
        try:
            import numpy
        except Exception:  # pragma: no cover - numpy genuinely absent
            numpy = None
        _NUMPY = numpy
    return _NUMPY


_NUMPY = None
_NUMPY_IMPORTED = False


def _pad8(n: int) -> int:
    """``n`` rounded up to the next multiple of 8."""
    return (n + 7) & ~7


class PackedMissStream:
    """A captured L1 request stream in packed columnar form.

    Mutable while backed by ``array`` columns (the capture/builder
    path); streams loaded with ``mmap=True`` are read-only views over
    the file. All read APIs work identically on either backing.
    """

    __slots__ = (
        "_codes", "_addresses", "_flushes", "processor_references",
        "_mmap", "_counts", "_partitions",
    )

    def __init__(
        self,
        codes=None,
        addresses=None,
        flush_offsets=None,
        processor_references: int = 0,
        _mmap=None,
    ) -> None:
        self._codes = codes if codes is not None else array("B")
        self._addresses = addresses if addresses is not None else array("Q")
        self._flushes = (
            flush_offsets if flush_offsets is not None else array("Q")
        )
        self.processor_references = processor_references
        # Keeps a mapped file alive for the lifetime of its views.
        self._mmap = _mmap
        # (readins, writebacks, counted_events) — see the properties.
        self._counts: Optional[Tuple[int, int, int]] = None
        # Per-geometry replay partitions, attached lazily by the
        # columnar batch-replay engine (repro.core.batch).
        self._partitions: dict = {}

    # ------------------------------------------------------------------
    # Introspection

    @property
    def codes(self):
        """The codes column (``array('B')`` or a byte memoryview)."""
        return self._codes

    @property
    def addresses(self):
        """The addresses column (``array('Q')`` or a u64 memoryview)."""
        return self._addresses

    @property
    def flush_offsets(self):
        """Event counts preceding each flush boundary, in order."""
        return self._flushes

    @property
    def n_events(self) -> int:
        """Number of read-in/write-back events (flushes excluded)."""
        return len(self._codes)

    @property
    def n_flushes(self) -> int:
        """Number of cold-start flush boundaries."""
        return len(self._flushes)

    def __len__(self) -> int:
        # Mirrors the legacy MissStream, whose events list counts flush
        # markers too.
        return len(self._codes) + len(self._flushes)

    def _recount(self) -> None:
        n = len(self._codes)
        if self._counts is not None and self._counts[2] == n:
            return
        np = numpy_or_none()
        if np is not None and n:
            writebacks = int(np.count_nonzero(np.frombuffer(self._codes, np.uint8)))
        else:
            writebacks = sum(self._codes)
        self._counts = (n - writebacks, writebacks, n)

    @property
    def readins(self) -> int:
        """Number of read-in events (one pass, cached)."""
        self._recount()
        return self._counts[0]

    @property
    def writebacks(self) -> int:
        """Number of write-back events (one pass, cached)."""
        self._recount()
        return self._counts[1]

    # ------------------------------------------------------------------
    # Building

    def append(self, code: int, address: int) -> None:
        """Record one event (0 = read-in, 1 = write-back)."""
        self._codes.append(code)
        self._addresses.append(address)
        self._counts = None
        self._partitions.clear()

    def append_flush(self) -> None:
        """Record a cold-start boundary at the current position."""
        self._flushes.append(len(self._codes))
        self._partitions.clear()

    @classmethod
    def from_events(
        cls, events, processor_references: int = 0
    ) -> "PackedMissStream":
        """Pack a legacy event sequence (flush markers inline)."""
        packed = cls(processor_references=processor_references)
        codes = packed._codes
        addresses = packed._addresses
        flushes = packed._flushes
        for code, address in events:
            if code < 0:
                flushes.append(len(codes))
            else:
                codes.append(code)
                addresses.append(address)
        return packed

    @classmethod
    def from_miss_stream(cls, stream) -> "PackedMissStream":
        """Pack a legacy :class:`~repro.cache.hierarchy.MissStream`."""
        return cls.from_events(stream.events, stream.processor_references)

    # ------------------------------------------------------------------
    # Legacy interop

    def iter_events(self) -> Iterator[Tuple[int, int]]:
        """Yield legacy ``(code, address)`` events, flush markers inline."""
        codes = self._codes
        addresses = self._addresses
        position = 0
        for offset in self._flushes:
            for i in range(position, offset):
                yield (codes[i], addresses[i])
            yield FLUSH_MARKER
            position = offset
        for i in range(position, len(codes)):
            yield (codes[i], addresses[i])

    def to_miss_stream(self):
        """The equivalent legacy :class:`~repro.cache.hierarchy.MissStream`."""
        from repro.cache.hierarchy import MissStream

        return MissStream(
            events=list(self.iter_events()),
            processor_references=self.processor_references,
        )

    # ------------------------------------------------------------------
    # Splitting

    def split_at_flushes(self) -> List["PackedMissStream"]:
        """Zero-copy cold-start segments (flush boundaries consumed).

        Segment-for-segment equivalent to
        :func:`~repro.cache.hierarchy.split_stream_at_flushes` on the
        unpacked stream: empty segments are dropped and
        ``processor_references`` rides on the first segment only. Each
        segment's columns are memoryview windows into this stream's
        buffers — no events are copied.
        """
        codes = memoryview(self._codes)
        if codes.format != "B":  # an mmap-backed byte view
            codes = codes.cast("B")
        addresses = memoryview(self._addresses)
        boundaries = [0, *self._flushes, len(self._codes)]
        segments: List[PackedMissStream] = []
        for start, end in zip(boundaries, boundaries[1:]):
            if start >= end:
                continue
            segments.append(
                PackedMissStream(
                    codes=codes[start:end],
                    addresses=addresses[start:end],
                    flush_offsets=array("Q"),
                    _mmap=self._mmap,
                )
            )
        if segments:
            segments[0].processor_references = self.processor_references
        return segments

    # ------------------------------------------------------------------
    # Persistence (RPM2, with legacy RPMS fallback)

    def content_hash(self) -> str:
        """SHA-256 over the packed columns and reference count (hex)."""
        import hashlib

        digest = hashlib.sha256()
        digest.update(struct.pack("<Q", self.processor_references))
        digest.update(bytes(self._codes))
        digest.update(self._address_bytes())
        digest.update(self._flush_bytes())
        return digest.hexdigest()

    def _address_bytes(self) -> bytes:
        return _u64_bytes(self._addresses)

    def _flush_bytes(self) -> bytes:
        return _u64_bytes(self._flushes)

    def save(self, path) -> None:
        """Write the stream as an RPM2 file (gzip if ``path`` ends ``.gz``).

        The write is a fixed header plus three bulk column writes — no
        per-record packing. Plain files are laid out 8-byte aligned so
        :meth:`load` can map them zero-copy. An 8-byte CRC32 footer
        (:func:`repro.storage.framing.crc32_footer`) follows the last
        column so :meth:`load` can verify the whole file end to end;
        readers of this version still accept footer-less legacy files.
        """
        import zlib

        from repro.storage.framing import FOOTER_MAGIC

        path = Path(path)
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            self.processor_references,
            len(self._codes),
            len(self._flushes),
        )
        codes = bytes(self._codes)
        pad = b"\x00" * (_pad8(_HEADER.size + len(codes)) - _HEADER.size - len(codes))
        chunks = (header, codes, pad, self._address_bytes(), self._flush_bytes())
        crc = 0
        for chunk in chunks:
            crc = zlib.crc32(chunk, crc)
        footer = FOOTER_MAGIC + struct.pack("<I", crc & 0xFFFFFFFF)
        opener = gzip.open if path.suffix == ".gz" else open
        with opener(path, "wb") as handle:
            for chunk in chunks:
                handle.write(chunk)
            handle.write(footer)

    @classmethod
    def load(cls, path, mmap: bool = True) -> "PackedMissStream":
        """Load an RPM2 (or legacy RPMS) miss-stream file.

        Plain (non-gzip) RPM2 files are memory-mapped by default: the
        returned stream's columns are zero-copy views over the page
        cache, so many processes loading the same artifact share the
        physical memory. Pass ``mmap=False`` to materialize instead.
        Legacy ``RPMS`` record files are detected by magic and packed
        on load.

        Raises:
            TraceFormatError: On an unknown magic, unsupported version,
                or truncated/corrupt file.
            IntegrityError: When the file carries a CRC32 footer and
                the content does not hash to it (bitrot, tampering).
        """
        path = Path(path)
        gzipped = path.suffix == ".gz"
        opener = gzip.open if gzipped else open
        with opener(path, "rb") as handle:
            magic = handle.read(4)
            if magic == _LEGACY_MAGIC:
                handle.seek(0)
                return cls._load_legacy(handle, path)
            if magic != _MAGIC:
                raise TraceFormatError(f"{path} is not a saved miss stream")
            if not gzipped and mmap and sys.byteorder == "little":
                return cls._load_mapped(path)
            data = magic + handle.read()
        return cls._parse(data, path)

    @classmethod
    def _load_legacy(cls, handle, path) -> "PackedMissStream":
        """Pack a legacy RPMS record file (via the legacy loader)."""
        from repro.cache.hierarchy import MissStream

        return cls.from_miss_stream(MissStream._load_handle(handle, path))

    @classmethod
    def _parse_header(cls, buffer, path) -> Tuple[int, int, int, int, int]:
        """Validate the RPM2 header; returns refs/counts/column offsets."""
        if len(buffer) < _HEADER.size:
            raise TraceFormatError(f"truncated miss-stream header in {path}")
        magic, version, refs, n_events, n_flushes = _HEADER.unpack_from(buffer)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path} is not a saved miss stream")
        if version != _VERSION:
            raise TraceFormatError(
                f"unsupported RPM2 version {version} in {path}"
            )
        addr_off = _pad8(_HEADER.size + n_events)
        total = addr_off + 8 * n_events + 8 * n_flushes
        if len(buffer) < total:
            raise TraceFormatError(
                f"truncated miss-stream columns in {path}: "
                f"{len(buffer)} bytes, need {total}"
            )
        return refs, n_events, n_flushes, addr_off, total

    @classmethod
    def _parse(cls, data: bytes, path) -> "PackedMissStream":
        """Materialize a stream from RPM2 bytes (non-mmap path).

        When the file carries a CRC32 footer (anything saved by this
        version), the whole payload is verified against it first —
        :class:`~repro.errors.IntegrityError` on mismatch. Footer-less
        legacy files parse as before.
        """
        from repro.storage.framing import verify_crc32_footer

        refs, n_events, n_flushes, addr_off, total = cls._parse_header(
            data, path
        )
        verify_crc32_footer(data, total, context=str(path))
        codes = array("B")
        codes.frombytes(data[_HEADER.size:_HEADER.size + n_events])
        addresses = _u64_array(data[addr_off:addr_off + 8 * n_events])
        flush_start = addr_off + 8 * n_events
        flushes = _u64_array(data[flush_start:flush_start + 8 * n_flushes])
        return cls(
            codes=codes,
            addresses=addresses,
            flush_offsets=flushes,
            processor_references=refs,
        )

    @classmethod
    def _load_mapped(cls, path) -> "PackedMissStream":
        """Zero-copy load: memoryview windows over an mmap of ``path``."""
        import mmap as mmap_module

        with open(path, "rb") as handle:
            try:
                mapping = mmap_module.mmap(
                    handle.fileno(), 0, access=mmap_module.ACCESS_READ
                )
            except ValueError:  # empty file
                raise TraceFormatError(
                    f"truncated miss-stream header in {path}"
                ) from None
        view = memoryview(mapping)
        refs, n_events, n_flushes, addr_off, total = cls._parse_header(
            view, path
        )
        from repro.storage.framing import verify_crc32_footer

        verify_crc32_footer(view, total, context=str(path))
        codes = view[_HEADER.size:_HEADER.size + n_events]
        addresses = view[addr_off:addr_off + 8 * n_events].cast("Q")
        # The flush index is tiny; materialize it so builders and
        # loaded streams agree on its type.
        flush_start = addr_off + 8 * n_events
        flushes = _u64_array(
            bytes(view[flush_start:flush_start + 8 * n_flushes])
        )
        return cls(
            codes=codes,
            addresses=addresses,
            flush_offsets=flushes,
            processor_references=refs,
            _mmap=mapping,
        )

    # ------------------------------------------------------------------
    # numpy fast path (optional, same data)

    def codes_numpy(self):
        """The codes column as a numpy ``uint8`` view, or ``None``."""
        np = numpy_or_none()
        if np is None:
            return None
        return np.frombuffer(self._codes, dtype=np.uint8)

    def addresses_numpy(self):
        """The addresses column as a numpy ``uint64`` view, or ``None``."""
        np = numpy_or_none()
        if np is None:
            return None
        return np.frombuffer(self._addresses, dtype=np.uint64)

    # ------------------------------------------------------------------
    # Pickling (memoryview/mmap-backed streams materialize on the way)

    def __reduce__(self):
        return (
            _rebuild_packed,
            (
                bytes(self._codes),
                self._address_bytes(),
                self._flush_bytes(),
                self.processor_references,
            ),
        )

    def __repr__(self) -> str:
        return (
            f"PackedMissStream(events={self.n_events}, "
            f"flushes={self.n_flushes}, "
            f"processor_references={self.processor_references})"
        )


def _u64_bytes(column) -> bytes:
    """Little-endian bytes of a u64 column (array or memoryview)."""
    if isinstance(column, memoryview):
        data = bytes(column)
        if sys.byteorder != "little":  # pragma: no cover - big-endian only
            swapped = array("Q")
            swapped.frombytes(data)
            swapped.byteswap()
            data = swapped.tobytes()
        return data
    if sys.byteorder != "little":  # pragma: no cover - big-endian only
        swapped = array("Q", column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


def _u64_array(data: bytes) -> array:
    """A native u64 array from little-endian bytes."""
    values = array("Q")
    values.frombytes(data)
    if sys.byteorder != "little":  # pragma: no cover - big-endian only
        values.byteswap()
    return values


def _rebuild_packed(codes, addresses, flushes, refs) -> PackedMissStream:
    """Pickle helper: rebuild a stream from raw column bytes."""
    code_column = array("B")
    code_column.frombytes(codes)
    return PackedMissStream(
        codes=code_column,
        addresses=_u64_array(addresses),
        flush_offsets=_u64_array(flushes),
        processor_references=refs,
    )
