"""Replacement policies for the set-associative cache.

The paper replaces the least-recently-used entry of a set. FIFO and
Random are provided for the replacement-policy ablation (they also
demonstrate that the MRU lookup scheme's usefulness is tied to the
recency state a true-LRU policy maintains).

A policy chooses a *victim frame*. All policies fill invalid (empty)
frames first — the property footnote 1 of the paper relies on.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Type

from repro.cache.set_state import CacheSet
from repro.errors import ConfigurationError


class ReplacementPolicy(ABC):
    """Chooses which frame of a set to fill on a miss.

    Args:
        fill: How to choose among *invalid* frames while a set is
            filling up: ``"random"`` (default) places incoming blocks
            in a uniformly random empty frame, matching the
            position-agnostic per-set bookkeeping of classic
            trace-driven simulators (and making frame position
            uncorrelated with recency, as the paper's naive-scheme
            averages assume); ``"first"`` models hardware with a
            priority encoder over valid bits.
        seed: Seed for the random fill choice.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    def __init__(self, fill: str = "random", seed: int = 0) -> None:
        if fill not in ("first", "random"):
            raise ConfigurationError(
                f"fill must be 'first' or 'random', got {fill!r}"
            )
        self.fill = fill
        self.seed = seed
        self._fill_rng = random.Random(seed)

    def reset(self) -> None:
        """Restore the policy to its initial (cold) state.

        Called at cold-start flush boundaries so that a flushed cache is
        indistinguishable from a freshly constructed one — the property
        that lets the parallel sweep runner replay each cold-start
        segment in a fresh cache and merge counters bit-identically.
        """
        self._fill_rng = random.Random(self.seed)

    def victim(self, cache_set: CacheSet) -> int:
        """Frame to fill: an invalid frame if any, else :meth:`evict_from`."""
        if self.fill == "first":
            empty = cache_set.first_invalid_frame()
            if empty is not None:
                return empty
        else:
            empties = cache_set.invalid_frames()
            if empties:
                return empties[self._fill_rng.randrange(len(empties))]
        return self.evict_from(cache_set)

    @abstractmethod
    def evict_from(self, cache_set: CacheSet) -> int:
        """Choose a victim among valid frames of a *full* set."""


class LruReplacement(ReplacementPolicy):
    """Evict the least-recently-used entry (the paper's policy)."""

    name = "lru"

    def evict_from(self, cache_set: CacheSet) -> int:
        return cache_set.lru_frame()


class FifoReplacement(ReplacementPolicy):
    """Evict the entry that has been resident longest."""

    name = "fifo"

    def evict_from(self, cache_set: CacheSet) -> int:
        return cache_set.oldest_frame()


class RandomReplacement(ReplacementPolicy):
    """Evict a uniformly random valid frame (seeded for reproducibility)."""

    name = "random"

    def __init__(self, fill: str = "random", seed: int = 0) -> None:
        super().__init__(fill=fill, seed=seed)
        self._rng = random.Random(seed ^ 0x5DEECE66)

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed ^ 0x5DEECE66)

    def evict_from(self, cache_set: CacheSet) -> int:
        candidates = cache_set.valid_frames()
        return candidates[self._rng.randrange(len(candidates))]


_POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    LruReplacement.name: LruReplacement,
    FifoReplacement.name: FifoReplacement,
    RandomReplacement.name: RandomReplacement,
}


def make_replacement(
    name: str, seed: Optional[int] = None, fill: str = "random"
) -> ReplacementPolicy:
    """Build a policy by name (``lru``/``fifo``/``random``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(fill=fill, seed=seed if seed is not None else 0)
