"""Agarwal's hash-rehash cache (paper footnote 2).

Footnote 2: "While maintaining MRU order using swapping may be
feasible for a 2-way set-associative cache, Agarwal's hash-rehash
cache [Agar87] can be superior to MRU in this 2-way case."

A hash-rehash cache is a direct-mapped memory probed (up to) twice: a
primary location, and on a primary miss a *rehash* location (the
primary index with its top bit flipped). On a rehash hit the two
blocks are swapped, so the most recently used block of each pair
migrates to the primary slot — the swapping variant of MRU ordering
that the paper says is infeasible for wider associativities,
implemented at the feasible width of two.

Probes: 1 on a primary hit, 2 on a rehash hit or a miss — with no MRU
list to consult, which is why footnote 2 says it can beat the serial
MRU scheme at 2-way (whose costs are 1+d on a hit and 3 on a miss).

The simulator stores full block numbers per line, so a block is
unambiguous wherever it sits; real hardware would store one extra tag
bit to the same effect.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.address import AddressMapper
from repro.cache.stats import CacheStats
from repro.core.probes import ProbeAccumulator
from repro.errors import ConfigurationError


class HashRehashCache:
    """Direct-mapped cache with a rehash probe and swap (2-way-like).

    Services the same read-in / write-back interface as
    :class:`~repro.cache.set_associative.SetAssociativeCache`, with
    built-in probe accounting (the organization fixes the lookup
    algorithm, so no observer machinery is needed).
    """

    def __init__(self, capacity_bytes: int, block_size: int) -> None:
        num_lines = capacity_bytes // block_size
        if num_lines * block_size != capacity_bytes:
            raise ConfigurationError(
                f"capacity {capacity_bytes} is not a multiple of block "
                f"size {block_size}"
            )
        if num_lines < 2 or num_lines & (num_lines - 1):
            raise ConfigurationError(
                "hash-rehash needs a power-of-two line count of at least 2"
            )
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.mapper = AddressMapper(block_size, num_lines)
        #: Full block number resident in each line (None = invalid).
        self._blocks: List[Optional[int]] = [None] * num_lines
        self._dirty: List[bool] = [False] * num_lines
        self._rehash_mask = num_lines >> 1
        self.stats = CacheStats()
        self.probes = ProbeAccumulator()

    @property
    def num_lines(self) -> int:
        """Number of lines (pairs form pseudo-2-way sets)."""
        return len(self._blocks)

    def _home(self, block: int) -> int:
        return block & (self.num_lines - 1)

    def _locate(self, block: int) -> Tuple[int, Optional[int]]:
        """(probes, line holding ``block`` or None)."""
        index = self._home(block)
        if self._blocks[index] == block:
            return 1, index
        alt = index ^ self._rehash_mask
        if self._blocks[alt] == block:
            return 2, alt
        return 2, None

    def read_in(self, address: int) -> bool:
        """Service a read-in; True on a (primary or rehash) hit."""
        block = self.mapper.block_address(address)
        probes, line = self._locate(block)
        if line is not None:
            self.stats.readin_hits += 1
            self.probes.record_hit(probes)
            home = self._home(block)
            if line != home:
                self._swap(home, line)
            return True
        self.stats.readin_misses += 1
        self.probes.record_miss(probes)
        self._fill(block, dirty=False)
        return False

    def write_back(self, address: int) -> bool:
        """Service a write-back (zero probes: write-back optimization)."""
        block = self.mapper.block_address(address)
        _, line = self._locate(block)
        self.probes.record_writeback(0)
        if line is not None:
            self.stats.writeback_hits += 1
            self._dirty[line] = True
            home = self._home(block)
            if line != home:
                self._swap(home, line)
            return True
        self.stats.writeback_misses += 1
        self._fill(block, dirty=True)
        return False

    def _swap(self, a: int, b: int) -> None:
        self._blocks[a], self._blocks[b] = self._blocks[b], self._blocks[a]
        self._dirty[a], self._dirty[b] = self._dirty[b], self._dirty[a]

    def _fill(self, block: int, dirty: bool) -> None:
        """Install at the primary slot; displace its occupant to the
        rehash slot, evicting whatever lives there."""
        index = self._home(block)
        displaced = self._blocks[index]
        displaced_dirty = self._dirty[index]
        self._blocks[index] = block
        self._dirty[index] = dirty
        if displaced is None:
            return
        alt = index ^ self._rehash_mask
        if self._blocks[alt] is not None:
            self.stats.evictions += 1
            if self._dirty[alt]:
                self.stats.dirty_evictions += 1
        self._blocks[alt] = displaced
        self._dirty[alt] = displaced_dirty

    def contains(self, address: int) -> bool:
        """Whether the block holding ``address`` is resident."""
        return self._locate(self.mapper.block_address(address))[1] is not None

    def invalidate_all(self) -> None:
        """Flush every line (cold-start boundary)."""
        for line in range(self.num_lines):
            self._blocks[line] = None
            self._dirty[line] = False
