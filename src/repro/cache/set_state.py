"""Mutable per-set state: frames, recency order, and dirty bits.

One :class:`CacheSet` holds everything the simulator and the lookup
schemes need about a set: the stored tag in each block frame, the
recency (MRU-to-LRU) ordering used both by LRU replacement and by the
MRU lookup scheme, residence order for FIFO, and dirty bits for the
write-back protocol.

Blocks never move between frames after insertion — the property the
paper's write-back optimization relies on ("the block will reside in
precisely the same position in which it was loaded").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.probes import SetView
from repro.errors import SimulationError


class CacheSet:
    """State of one cache set of ``associativity`` block frames."""

    __slots__ = ("_tags", "_dirty", "_mru", "_arrival", "_clock", "_index")

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        self._tags: List[Optional[int]] = [None] * associativity
        self._dirty: List[bool] = [False] * associativity
        # Frame indices, most-recently-used first; valid frames only.
        self._mru: List[int] = []
        # Residence timestamps for FIFO; -1 marks invalid frames.
        self._arrival: List[int] = [-1] * associativity
        self._clock = 0
        # Tag -> frame map kept in sync with _tags so find() is O(1)
        # instead of a linear frame scan (sets hold at most one copy of
        # any tag, so the mapping is a function).
        self._index: Dict[int, int] = {}

    @property
    def associativity(self) -> int:
        """Number of block frames in the set."""
        return len(self._tags)

    def view(self) -> SetView:
        """Immutable snapshot for the lookup schemes."""
        return SetView(tags=tuple(self._tags), mru_order=tuple(self._mru))

    def find(self, tag: int) -> Optional[int]:
        """Frame holding ``tag``, or ``None`` (O(1) via the tag index)."""
        return self._index.get(tag)

    def tag_at(self, frame: int) -> Optional[int]:
        """Tag stored in ``frame`` (``None`` if invalid)."""
        return self._tags[frame]

    def is_dirty(self, frame: int) -> bool:
        """Whether ``frame`` holds modified data."""
        return self._dirty[frame]

    def set_dirty(self, frame: int, dirty: bool = True) -> None:
        """Mark ``frame`` dirty (it must be valid)."""
        if self._tags[frame] is None:
            raise SimulationError("cannot mark an invalid frame dirty")
        self._dirty[frame] = dirty

    def valid_frames(self) -> List[int]:
        """Frames currently holding a block, in frame order."""
        return [f for f, t in enumerate(self._tags) if t is not None]

    def first_invalid_frame(self) -> Optional[int]:
        """Lowest-numbered empty frame, or ``None`` if the set is full."""
        for frame, stored in enumerate(self._tags):
            if stored is None:
                return frame
        return None

    def invalid_frames(self) -> List[int]:
        """All empty frames, in frame order."""
        return [f for f, t in enumerate(self._tags) if t is None]

    def lru_frame(self) -> int:
        """Least-recently-used valid frame."""
        if not self._mru:
            raise SimulationError("LRU of an empty set is undefined")
        return self._mru[-1]

    def oldest_frame(self) -> int:
        """Valid frame resident longest (FIFO victim)."""
        valid = self.valid_frames()
        if not valid:
            raise SimulationError("FIFO victim of an empty set is undefined")
        return min(valid, key=lambda f: self._arrival[f])

    def touch(self, frame: int) -> None:
        """Move ``frame`` to the head of the MRU order.

        The common already-at-head case is a pure comparison; otherwise
        the move is an in-place ``remove`` + ``insert`` on the existing
        list — C-level element shifts, no new list objects — which for
        the small ``a`` of real caches beats any linked structure.
        """
        if self._tags[frame] is None:
            raise SimulationError("cannot touch an invalid frame")
        mru = self._mru
        if mru and mru[0] == frame:
            return
        mru.remove(frame)
        mru.insert(0, frame)

    def install(self, frame: int, tag: int, dirty: bool = False) -> Optional[int]:
        """Place ``tag`` into ``frame``, returning any evicted tag.

        The incoming block becomes most-recently used. The caller is
        responsible for write-back handling of the evicted tag (check
        :meth:`is_dirty` *before* calling).
        """
        evicted = self._tags[frame]
        if evicted is not None:
            self._mru.remove(frame)
            del self._index[evicted]
        self._tags[frame] = tag
        self._dirty[frame] = dirty
        self._index[tag] = frame
        self._mru.insert(0, frame)
        self._arrival[frame] = self._clock
        self._clock += 1
        return evicted

    def invalidate(self, frame: int) -> None:
        """Drop the block in ``frame`` without write-back."""
        stored = self._tags[frame]
        if stored is None:
            return
        self._tags[frame] = None
        self._dirty[frame] = False
        self._arrival[frame] = -1
        self._mru.remove(frame)
        del self._index[stored]

    def invalidate_all(self) -> None:
        """Flush the set (no write-backs; the paper's cold-start flush)."""
        for frame in range(len(self._tags)):
            self._tags[frame] = None
            self._dirty[frame] = False
            self._arrival[frame] = -1
        self._mru.clear()
        self._index.clear()

    def mru_distance(self, tag: int) -> Optional[int]:
        """1-based recency rank of ``tag`` (1 = most recent), or ``None``."""
        frame = self._index.get(tag)
        if frame is None:
            return None
        return self._mru.index(frame) + 1

    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` if internal state is inconsistent."""
        valid = set(self.valid_frames())
        if set(self._mru) != valid:
            raise SimulationError("MRU order out of sync with valid frames")
        if len(set(self._mru)) != len(self._mru):
            raise SimulationError("duplicate frame in MRU order")
        tags = [t for t in self._tags if t is not None]
        if len(set(tags)) != len(tags):
            raise SimulationError("duplicate tag within a set")
        for frame in range(len(self._tags)):
            if self._dirty[frame] and self._tags[frame] is None:
                raise SimulationError("dirty bit set on an invalid frame")
        if len(self._index) != len(valid):
            raise SimulationError("tag index size disagrees with valid frames")
        for frame, stored in enumerate(self._tags):
            if stored is not None and self._index.get(stored) != frame:
                raise SimulationError(
                    f"tag index out of sync: tag {stored} maps to "
                    f"{self._index.get(stored)}, stored in frame {frame}"
                )

    def __repr__(self) -> str:
        return f"CacheSet(tags={self._tags}, mru={self._mru})"
