"""Set-associative processor-facing (level-one) cache.

The paper's level-one cache is direct-mapped (Table 3), but its
results hinge on the *character of the L1 miss stream* — direct-mapped
conflict misses are a big part of what the level-two cache sees. This
generalization lets that be studied: an ``a``-way write-back,
write-allocate L1 with true-LRU replacement, speaking the same
processor-reference / memory-request protocol as
:class:`~repro.cache.direct_mapped.DirectMappedCache` (with
``associativity=1`` it behaves identically).
"""

from __future__ import annotations

from typing import List, Union

from repro.cache.address import AddressMapper
from repro.cache.direct_mapped import MemoryRequest, RequestKind
from repro.cache.replacement import ReplacementPolicy, make_replacement
from repro.cache.set_state import CacheSet
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError
from repro.trace.reference import AccessKind, Reference


class AssociativeL1Cache:
    """An ``a``-way set-associative write-back, write-allocate L1.

    Args:
        capacity_bytes: Total capacity.
        block_size: Block size in bytes (power of two).
        associativity: Set size (power of two; 1 = direct-mapped).
        replacement: Policy instance or name (default ``lru``).
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int,
        associativity: int = 1,
        replacement: Union[ReplacementPolicy, str] = "lru",
    ) -> None:
        if associativity <= 0 or associativity & (associativity - 1):
            raise ConfigurationError(
                f"associativity must be a positive power of two, got {associativity}"
            )
        blocks = capacity_bytes // block_size
        if blocks * block_size != capacity_bytes or blocks % associativity:
            raise ConfigurationError(
                f"cannot build {associativity}-way sets of {block_size}B "
                f"blocks from {capacity_bytes} bytes"
            )
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.associativity = associativity
        num_sets = blocks // associativity
        self.mapper = AddressMapper(block_size, num_sets)
        self.sets = [CacheSet(associativity) for _ in range(num_sets)]
        if isinstance(replacement, str):
            replacement = make_replacement(replacement)
        self.replacement = replacement
        self.stats = CacheStats()

    @property
    def num_lines(self) -> int:
        """Total block frames (so the hierarchy can treat any L1
        uniformly)."""
        return self.mapper.num_sets * self.associativity

    def access(self, ref: Reference) -> List[MemoryRequest]:
        """Service one processor reference; return L2 requests.

        Same contract as the direct-mapped L1: empty on a hit; a
        read-in followed (for a dirty victim) by a write-back on a
        miss.
        """
        index, tag = self.mapper.split(ref.address)
        cache_set = self.sets[index]
        frame = cache_set.find(tag)
        if frame is not None:
            self.stats.readin_hits += 1
            if ref.kind is AccessKind.STORE:
                cache_set.set_dirty(frame)
            cache_set.touch(frame)
            return []

        self.stats.readin_misses += 1
        block_start = (ref.address >> self.mapper.block_bits) << self.mapper.block_bits
        requests = [MemoryRequest(RequestKind.READ_IN, block_start)]
        victim = self.replacement.victim(cache_set)
        victim_tag = cache_set.tag_at(victim)
        if victim_tag is not None:
            self.stats.evictions += 1
            if cache_set.is_dirty(victim):
                self.stats.dirty_evictions += 1
                victim_addr = self.mapper.rebuild(index, victim_tag)
                requests.append(
                    MemoryRequest(RequestKind.WRITE_BACK, victim_addr)
                )
        cache_set.install(victim, tag, dirty=ref.kind is AccessKind.STORE)
        return requests

    def contains(self, address: int) -> bool:
        """Whether the block holding ``address`` is resident."""
        index, tag = self.mapper.split(address)
        return self.sets[index].find(tag) is not None

    def invalidate(self, address: int):
        """Drop the block if resident; return its dirty bit or ``None``.

        Same contract as the direct-mapped L1 (used for
        back-invalidation and coherency traffic).
        """
        index, tag = self.mapper.split(address)
        cache_set = self.sets[index]
        frame = cache_set.find(tag)
        if frame is None:
            return None
        was_dirty = cache_set.is_dirty(frame)
        cache_set.invalidate(frame)
        return was_dirty

    def resident_addresses(self) -> List[int]:
        """Block-start addresses of every resident block (inclusion
        checking and diagnostics)."""
        addresses = []
        for index, cache_set in enumerate(self.sets):
            for frame in cache_set.valid_frames():
                addresses.append(
                    self.mapper.rebuild(index, cache_set.tag_at(frame))
                )
        return addresses

    def invalidate_all(self) -> None:
        """Flush without write-backs (cold-start boundary)."""
        for cache_set in self.sets:
            cache_set.invalidate_all()
