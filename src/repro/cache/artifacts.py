"""Content-addressed, mmap-able miss-stream artifact store.

The in-process miss-stream caches in :mod:`repro.cache.hierarchy`
deduplicate L1 captures *within* one process (and, on fork platforms,
across workers that inherit the parent's memory). This module extends
the unit of reuse across process boundaries and sessions: a captured
stream is persisted once as a columnar ``RPM2`` file named by the
content address of its inputs — the workload identity plus the L1
geometry, hashed with the same canonicalization as run manifests
(:func:`repro.obs.manifest.config_hash`) — and every later consumer
(sweep worker pools, ``repro-serve`` jobs, fresh benchmark sessions)
memory-maps it zero-copy instead of re-simulating the L1.

Layout of a store directory::

    <root>/<config_hash>.rpm2        packed stream (RPM2, mmap-able)
    <root>/<config_hash>.meta.json   sidecar: L1 miss ratio + counts

Writes are atomic *and durable* (temp file + fsync + ``os.replace`` +
directory fsync, via :mod:`repro.storage.io`), so concurrent workers
racing to persist the same capture converge on one valid artifact and
a crash cannot publish a partial one under a content-addressed name.
Streams carry a CRC32 footer verified on every load; a corrupt,
truncated, or bit-rotted artifact is treated as a miss and
recaptured, never trusted.

Enable the store by exporting ``REPRO_STREAM_ARTIFACTS=<dir>`` (the
CLI flags ``--stream-artifacts`` set this for their worker pools) or
programmatically with :func:`set_artifact_store`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Tuple

from repro.cache.stream import PackedMissStream
from repro.errors import IntegrityError, TraceFormatError
from repro.storage.io import get_io

#: Environment variable naming the artifact directory.
ENV_VAR = "REPRO_STREAM_ARTIFACTS"


class StreamArtifactStore:
    """A directory of content-addressed packed miss streams.

    Args:
        root: Directory holding the artifacts (created on first save).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    def key(self, workload, capacity_bytes: int, block_size: int) -> str:
        """Content address of one (workload, L1 geometry) capture."""
        from repro.cache.hierarchy import _workload_key
        from repro.obs.manifest import config_hash

        return config_hash({
            "workload": list(_workload_key(workload)),
            "l1_capacity_bytes": capacity_bytes,
            "l1_block_size": block_size,
        })

    def _paths(self, key: str) -> Tuple[Path, Path]:
        return self.root / f"{key}.rpm2", self.root / f"{key}.meta.json"

    def load(
        self, workload, capacity_bytes: int, block_size: int
    ) -> Optional[Tuple[PackedMissStream, float]]:
        """Load the artifact for this capture, or ``None`` on a miss.

        The stream comes back memory-mapped (zero-copy); a corrupt or
        incomplete artifact — bad magic, truncated columns, missing or
        malformed sidecar — is reported as a miss so the caller
        recaptures and overwrites it.
        """
        key = self.key(workload, capacity_bytes, block_size)
        stream_path, meta_path = self._paths(key)
        if not stream_path.exists() or not meta_path.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text())
            miss_ratio = float(meta["l1_readin_miss_ratio"])
            packed = PackedMissStream.load(stream_path, mmap=True)
        except (
            IntegrityError,  # CRC32 footer refuted the content
            TraceFormatError,
            OSError,
            ValueError,
            KeyError,
            TypeError,
        ):
            return None
        if packed.n_events != meta.get("n_events", packed.n_events):
            return None
        return packed, miss_ratio

    def save(
        self,
        workload,
        capacity_bytes: int,
        block_size: int,
        packed: PackedMissStream,
        miss_ratio: float,
    ) -> Path:
        """Persist one capture atomically; returns the artifact path."""
        key = self.key(workload, capacity_bytes, block_size)
        stream_path, meta_path = self._paths(key)
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_atomic(stream_path, packed)
        meta = {
            "l1_readin_miss_ratio": miss_ratio,
            "processor_references": packed.processor_references,
            "n_events": packed.n_events,
            "n_flushes": packed.n_flushes,
            "content_hash": packed.content_hash(),
        }
        io = get_io()
        fd, temp = tempfile.mkstemp(dir=self.root, suffix=".meta.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(meta, handle, indent=2, sort_keys=True)
                io.fsync(handle)
            io.replace(temp, meta_path)
        except OSError:
            _unlink_quietly(temp)
            raise
        io.fsync_dir(self.root)
        return stream_path

    def _write_atomic(self, path: Path, packed: PackedMissStream) -> None:
        """Publish ``packed`` under ``path`` durably and atomically.

        The temp file is fsync'd *before* the rename and the store
        directory *after* it — without both, a crash in the window
        between rename and writeback could publish an empty or partial
        artifact under a content-addressed name, which later loads
        would then have to detect and recapture forever.
        """
        io = get_io()
        fd, temp = tempfile.mkstemp(dir=self.root, suffix=".rpm2.tmp")
        os.close(fd)
        try:
            packed.save(temp)
            with open(temp, "rb") as handle:
                io.fsync(handle)
            io.replace(temp, path)
        except OSError:
            _unlink_quietly(temp)
            raise
        io.fsync_dir(self.root)

    def __repr__(self) -> str:
        return f"StreamArtifactStore(root={str(self.root)!r})"


def _unlink_quietly(path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


#: Explicitly configured store (overrides the environment variable).
_CONFIGURED: Optional[StreamArtifactStore] = None
_CONFIGURED_SET = False


def set_artifact_store(
    store: "StreamArtifactStore | str | os.PathLike | None",
) -> None:
    """Set (or, with ``None``, clear) the process's artifact store.

    Takes precedence over ``REPRO_STREAM_ARTIFACTS``. Pass a
    :class:`StreamArtifactStore` or a directory path.
    """
    global _CONFIGURED, _CONFIGURED_SET
    if store is None:
        _CONFIGURED = None
        _CONFIGURED_SET = False
        return
    if not isinstance(store, StreamArtifactStore):
        store = StreamArtifactStore(store)
    _CONFIGURED = store
    _CONFIGURED_SET = True


def get_artifact_store() -> Optional[StreamArtifactStore]:
    """The active artifact store, or ``None`` when not configured.

    An explicitly :func:`set_artifact_store` wins; otherwise the
    ``REPRO_STREAM_ARTIFACTS`` environment variable is consulted on
    every call (workers forked after the parent exports it inherit the
    setting automatically).
    """
    if _CONFIGURED_SET:
        return _CONFIGURED
    root = os.environ.get(ENV_VAR, "").strip()
    if not root:
        return None
    return StreamArtifactStore(root)
