"""Coherency-invalidation modelling (paper footnote 1 and §1).

The paper motivates wide associativity for multiprocessor level-two
caches partly with this observation:

    "A miss to a set-associative cache can fill any empty block frame
    in the set, whereas a miss to a direct-mapped cache can fill only
    a single frame. Increasing associativity increases the chance that
    an invalidated block frame will be quickly used again by making
    more empty frames available for reuse on a miss. [...] increasing
    associativity reduces the average number of empty cache block
    frames when coherency invalidations are frequent."

:class:`InvalidationInjector` models the coherency traffic of the
other processors as a stream of invalidations to random resident
blocks, interleaved with the local request stream;
:func:`run_with_invalidations` drives a replay and samples frame
utilization so the footnote's claim can be measured.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import FLUSH_MARKER, MissStream
from repro.cache.set_associative import SetAssociativeCache
from repro.errors import ConfigurationError


@dataclass
class CoherenceStats:
    """Counters and samples collected by the injector."""

    #: Invalidations attempted (one per injector firing).
    attempts: int = 0
    #: ... that found a resident block to invalidate in the L2.
    invalidations: int = 0
    #: ... whose block was also dropped from the L1 above.
    l1_invalidations: int = 0
    #: Periodic samples of the fraction of valid L2 frames.
    utilization_samples: List[float] = field(default_factory=list)

    @property
    def mean_utilization(self) -> float:
        """Average fraction of valid frames across samples."""
        if not self.utilization_samples:
            return 0.0
        return sum(self.utilization_samples) / len(self.utilization_samples)


class InvalidationInjector:
    """Injects invalidations to random resident L2 blocks.

    Args:
        l2: The cache receiving invalidations.
        l1: Optional level-one cache above it; resident copies there
            are dropped too (as a coherency invalidation would).
        rate: Expected invalidations per local L2 request.
        seed: Determinism.
    """

    def __init__(
        self,
        l2: SetAssociativeCache,
        l1: Optional[DirectMappedCache] = None,
        rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        self.l2 = l2
        self.l1 = l1
        self.rate = rate
        self.stats = CoherenceStats()
        self._rng = random.Random(seed)

    def tick(self) -> None:
        """Called once per local request; fires with probability ``rate``."""
        if self.rate and self._rng.random() < self.rate:
            self.invalidate_random_block()

    def invalidate_random_block(self, retries: int = 8) -> bool:
        """Invalidate one uniformly chosen resident block, if any.

        Samples a random (set, frame); empty picks are retried a few
        times (a miss models an invalidation for a block this cache no
        longer holds — common in real coherency traffic).
        """
        self.stats.attempts += 1
        l2 = self.l2
        for _ in range(retries):
            set_index = self._rng.randrange(l2.num_sets)
            cache_set = l2.sets[set_index]
            valid = cache_set.valid_frames()
            if not valid:
                continue
            frame = valid[self._rng.randrange(len(valid))]
            tag = cache_set.tag_at(frame)
            address = l2.mapper.rebuild(set_index, tag)
            cache_set.invalidate(frame)
            self.stats.invalidations += 1
            if self.l1 is not None:
                for offset in range(0, l2.block_size, self.l1.block_size):
                    if self.l1.invalidate(address + offset) is not None:
                        self.stats.l1_invalidations += 1
            return True
        return False

    def sample_utilization(self) -> float:
        """Record and return the current fraction of valid L2 frames."""
        total = self.l2.num_sets * self.l2.associativity
        valid = sum(len(s.valid_frames()) for s in self.l2.sets)
        utilization = valid / total
        self.stats.utilization_samples.append(utilization)
        return utilization


def run_with_invalidations(
    stream: MissStream,
    l2: SetAssociativeCache,
    injector: InvalidationInjector,
    sample_every: int = 2000,
) -> CoherenceStats:
    """Replay ``stream`` into ``l2`` with invalidations interleaved.

    Utilization is sampled every ``sample_every`` local requests
    (skipping the initial cold-fill period would bias against the
    direct-mapped case, so samples start once a quarter of the stream
    has been replayed).
    """
    if sample_every <= 0:
        raise ConfigurationError("sample_every must be positive")
    warmup = len(stream.events) // 4
    for position, (code, address) in enumerate(stream.events):
        if (code, address) == FLUSH_MARKER:
            l2.invalidate_all()
            continue
        if code == 0:
            l2.read_in(address)
        else:
            l2.write_back(address)
        injector.tick()
        if position >= warmup and position % sample_every == 0:
            injector.sample_utilization()
    return injector.stats
