"""Single-pass LRU stack-distance simulation (Mattson et al. [Matt70]).

The paper's footnote 4 defines the MRU hit distribution through LRU
stack distances: "each ``f_i`` is equal to the probability of a
reference to LRU distance ``i`` divided by the hit ratio, for a given
number of sets". This module implements that machinery directly: one
pass over an access stream yields, for a *fixed number of sets*, the
miss ratio of **every** associativity at once, plus the ``f_i``
distributions — because LRU caches of the same set count are
inclusive: a hit at stack depth ``d`` hits every associativity
``a >= d``.

It is both a fast design-space-exploration tool (one pass instead of
one simulation per associativity) and an independent oracle used by
the test suite to cross-validate the explicit
:class:`~repro.cache.set_associative.SetAssociativeCache`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.address import AddressMapper
from repro.cache.hierarchy import FLUSH_MARKER, MissStream
from repro.errors import ConfigurationError


class StackSimulator:
    """Per-set LRU stack profiling for one cache geometry.

    Args:
        block_size: Cache block size in bytes (power of two).
        num_sets: Number of sets (power of two). Together these fix
            the geometry family; each associativity ``a`` corresponds
            to a capacity ``a * num_sets * block_size``.
        max_depth: Deepest stack distance tracked exactly; deeper
            re-references are lumped with cold misses (they miss in
            every associativity up to ``max_depth`` anyway).
    """

    def __init__(self, block_size: int, num_sets: int, max_depth: int = 64) -> None:
        if max_depth <= 0:
            raise ConfigurationError("max_depth must be positive")
        self.mapper = AddressMapper(block_size, num_sets)
        self.max_depth = max_depth
        self._stacks: Dict[int, List[int]] = {}
        #: histogram[d-1] counts accesses at stack distance d.
        self.distance_counts = [0] * max_depth
        #: First touches plus re-references deeper than max_depth.
        self.cold_or_deep = 0
        self.accesses = 0

    def access(self, address: int) -> Optional[int]:
        """Process one access; return its stack distance (or ``None``).

        ``None`` means a first touch or a re-reference deeper than
        ``max_depth`` — a miss at every tracked associativity.
        """
        index, tag = self.mapper.split(address)
        stack = self._stacks.get(index)
        if stack is None:
            stack = []
            self._stacks[index] = stack
        self.accesses += 1
        try:
            depth = stack.index(tag)
        except ValueError:
            depth = None
        if depth is None or depth >= self.max_depth:
            if depth is not None:
                del stack[depth]
            self.cold_or_deep += 1
            stack.insert(0, tag)
            if len(stack) > self.max_depth:
                stack.pop()
            return None
        del stack[depth]
        stack.insert(0, tag)
        self.distance_counts[depth] += 1
        return depth + 1

    def flush(self) -> None:
        """Cold-start: clear every per-set stack."""
        self._stacks.clear()

    def run(self, stream: MissStream) -> "StackSimulator":
        """Process a captured L1 miss stream (read-ins and
        write-backs both promote, as in the real L2), honoring flush
        markers."""
        for code, address in stream.events:
            if (code, address) == FLUSH_MARKER:
                self.flush()
                continue
            self.access(address)
        return self

    def misses(self, associativity: int) -> int:
        """Miss count an ``associativity``-way LRU cache would incur."""
        self._check_assoc(associativity)
        deep = sum(self.distance_counts[associativity:])
        return deep + self.cold_or_deep

    def hits(self, associativity: int) -> int:
        """Hit count for ``associativity``."""
        return self.accesses - self.misses(associativity)

    def miss_ratio(self, associativity: int) -> float:
        """Miss ratio for ``associativity``, over all accesses."""
        misses = self.misses(associativity)
        if self.accesses == 0:
            return 0.0
        return misses / self.accesses

    def miss_ratio_curve(self, associativities) -> Dict[int, float]:
        """Miss ratios for many associativities from the one profile."""
        return {a: self.miss_ratio(a) for a in associativities}

    def hit_distance_distribution(self, associativity: int) -> List[float]:
        """``f_i`` for ``i = 1..a``: P(stack distance i | hit) — the
        paper's footnote 4, and Figure 5 (right)."""
        self._check_assoc(associativity)
        total_hits = self.hits(associativity)
        if total_hits == 0:
            return [0.0] * associativity
        return [
            self.distance_counts[d] / total_hits
            for d in range(associativity)
        ]

    def expected_mru_hit_probes(self, associativity: int) -> float:
        """``1 + sum(i * f_i)`` — the MRU scheme's analytic hit cost
        on this access stream."""
        distribution = self.hit_distance_distribution(associativity)
        return 1.0 + sum(
            (i + 1) * p for i, p in enumerate(distribution)
        )

    def _check_assoc(self, associativity: int) -> None:
        if not 1 <= associativity <= self.max_depth:
            raise ConfigurationError(
                f"associativity must be in [1, {self.max_depth}], "
                f"got {associativity}"
            )

    def __repr__(self) -> str:
        return (
            f"StackSimulator(block_size={self.mapper.block_size}, "
            f"num_sets={self.mapper.num_sets}, max_depth={self.max_depth})"
        )
