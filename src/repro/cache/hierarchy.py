"""Two-level cache hierarchy and miss-stream capture/replay.

:class:`TwoLevelHierarchy` wires a direct-mapped L1 to a
set-associative L2 with the paper's protocol: read-in first, then
write-back of the dirty victim; flush references cold-start both
levels.

Because the L1 is independent of every L2 parameter under study, the
L1 pass can be done once per L1 configuration and its *miss stream*
(the sequence of read-in/write-back requests plus flush markers)
replayed into many instrumented L2 configurations. This is what makes
the full Table 4 sweep affordable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.direct_mapped import DirectMappedCache, MemoryRequest, RequestKind
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.stats import HierarchyStats
from repro.cache.stream import PackedMissStream
from repro.obs.metrics import get_metrics
from repro.obs.spans import span
from repro.trace.reference import Reference


#: Sentinel in a miss stream marking a cold-start flush boundary.
FLUSH_MARKER: Tuple[int, int] = (-1, -1)

_KIND_CODES = {RequestKind.READ_IN: 0, RequestKind.WRITE_BACK: 1}
_CODE_KINDS = {0: RequestKind.READ_IN, 1: RequestKind.WRITE_BACK}


@dataclass
class MissStream:
    """A captured L1 request stream, replayable into any L2.

    Events are ``(kind_code, address)`` tuples, with
    :data:`FLUSH_MARKER` standing for a flush boundary. Also records
    how many processor references produced the stream, so global miss
    ratios can be computed after replay.
    """

    events: List[Tuple[int, int]] = field(default_factory=list)
    processor_references: int = 0
    #: Cached (readins, writebacks, events counted) — both kind counts
    #: are computed in one pass and invalidated whenever the event list
    #: grows (appends through the methods below or directly).
    _counts: Optional[Tuple[int, int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def append(self, request: MemoryRequest) -> None:
        """Record one L1 request."""
        self.events.append((_KIND_CODES[request.kind], request.address))

    def append_flush(self) -> None:
        """Record a cold-start boundary."""
        self.events.append(FLUSH_MARKER)

    def _recount(self) -> None:
        if self._counts is not None and self._counts[2] == len(self.events):
            return
        readins = writebacks = 0
        for code, _ in self.events:
            if code == 0:
                readins += 1
            elif code == 1:
                writebacks += 1
        self._counts = (readins, writebacks, len(self.events))

    @property
    def readins(self) -> int:
        """Number of read-in events (one cached pass for both kinds)."""
        self._recount()
        return self._counts[0]

    @property
    def writebacks(self) -> int:
        """Number of write-back events (one cached pass for both kinds)."""
        self._recount()
        return self._counts[1]

    def __len__(self) -> int:
        return len(self.events)

    def save(self, path) -> None:
        """Persist the stream to ``path`` (gzip if it ends in ``.gz``).

        Capturing an L1 miss stream is the expensive step of large
        studies; saving it lets many later sessions replay it into new
        L2 configurations without rerunning the L1. The record payload
        is assembled in one pass and written in one call — no
        per-record I/O. (:meth:`PackedMissStream.save` writes the
        columnar ``RPM2`` format instead; this method keeps the legacy
        ``RPMS`` record format readable and writable.)
        """
        import gzip
        import struct
        from pathlib import Path

        path = Path(path)
        opener = gzip.open if path.suffix == ".gz" else open
        record = struct.Struct("<bQ")
        pack = record.pack
        with opener(path, "wb") as handle:
            handle.write(b"RPMS")
            handle.write(
                struct.pack("<QQ", self.processor_references, len(self.events))
            )
            handle.write(
                b"".join(
                    pack(code, address if code >= 0 else 0)
                    for code, address in self.events
                )
            )

    @classmethod
    def load(cls, path) -> "MissStream":
        """Load a stream previously written by :meth:`save`.

        Dispatches on the magic: legacy ``RPMS`` record files are read
        with one bulk ``struct.iter_unpack``; columnar ``RPM2`` files
        (written by :meth:`PackedMissStream.save`) are unpacked through
        :class:`~repro.cache.stream.PackedMissStream`.

        Raises:
            TraceFormatError: On a bad header or truncated file.
        """
        import gzip
        from pathlib import Path

        from repro.errors import TraceFormatError

        path = Path(path)
        opener = gzip.open if path.suffix == ".gz" else open
        with opener(path, "rb") as handle:
            magic = handle.read(4)
            if magic == b"RPM2":
                pass  # fall through to the columnar loader below
            elif magic == b"RPMS":
                handle.seek(0)
                return cls._load_handle(handle, path)
            else:
                raise TraceFormatError(f"{path} is not a saved miss stream")
        return PackedMissStream.load(path, mmap=False).to_miss_stream()

    @classmethod
    def _load_handle(cls, handle, path) -> "MissStream":
        """Read one legacy ``RPMS`` stream from an open binary handle."""
        import struct

        from repro.errors import TraceFormatError

        if handle.read(4) != b"RPMS":
            raise TraceFormatError(f"{path} is not a saved miss stream")
        header = handle.read(16)
        if len(header) != 16:
            raise TraceFormatError("truncated miss-stream header")
        processor_references, count = struct.unpack("<QQ", header)
        record = struct.Struct("<bQ")
        data = handle.read(record.size * count)
        if len(data) != record.size * count:
            raise TraceFormatError("truncated miss-stream record")
        stream = cls(processor_references=processor_references)
        stream.events = [
            FLUSH_MARKER if code < 0 else (code, address)
            for code, address in record.iter_unpack(data)
        ]
        return stream


@dataclass
class InclusionStats:
    """Counters for inclusion enforcement and write-back hints."""

    #: L1 blocks dropped because their enclosing L2 block was evicted.
    back_invalidations: int = 0
    #: Back-invalidated L1 blocks that were dirty (their data is
    #: forwarded straight to memory).
    dirty_back_invalidations: int = 0
    #: Write-backs whose retained position indicator was consulted.
    hints_consulted: int = 0
    #: ... and pointed at the block's actual L2 frame.
    hints_correct: int = 0
    #: ... and were wrong (the block had left the L2 — impossible when
    #: inclusion is enforced).
    hints_wrong: int = 0

    @property
    def hint_accuracy(self) -> float:
        """Fraction of consulted hints that were correct."""
        if self.hints_consulted == 0:
            return 0.0
        return self.hints_correct / self.hints_consulted


class TwoLevelHierarchy:
    """Direct-mapped L1 over a set-associative L2 (paper Table 3).

    Args:
        l1, l2: The two cache levels.
        enforce_inclusion: When True, an L2 eviction back-invalidates
            every L1 block it covers, maintaining multi-level
            inclusion [Baer88]. Dirty L1 copies lost this way are
            counted as forced memory write-backs. The paper does not
            enforce inclusion but monitors how nearly it holds; both
            modes are supported.
        track_writeback_hints: When True, models the write-back
            optimization's bookkeeping explicitly: on each read-in the
            L1 retains a ``log2(a)``-bit indicator of the L2 frame the
            block landed in, and each write-back checks it. With
            inclusion enforced the hint is always correct; without,
            the accuracy measures how safe the "hint" variant is.
            Hints are keyed per L1 *set index*, which is exact for the
            paper's direct-mapped L1 (one block per line); with a
            set-associative L1 only the most recent fill per set is
            tracked.
    """

    def __init__(
        self,
        l1: DirectMappedCache,
        l2: SetAssociativeCache,
        enforce_inclusion: bool = False,
        track_writeback_hints: bool = False,
    ) -> None:
        if l2.block_size < l1.block_size:
            # A smaller L2 block could not hold an L1 write-back.
            raise ValueError(
                f"L2 block size {l2.block_size} smaller than L1 block "
                f"size {l1.block_size}"
            )
        self.l1 = l1
        self.l2 = l2
        self.stats = HierarchyStats(l1=l1.stats, l2=l2.stats)
        self.enforce_inclusion = enforce_inclusion
        self.inclusion = InclusionStats()
        self._hints = {} if track_writeback_hints else None
        if enforce_inclusion:
            l2.eviction_listener = self._on_l2_eviction

    def access(self, ref: Reference) -> None:
        """Service one processor reference (or flush sentinel)."""
        if ref.is_flush:
            self.flush()
            return
        self.stats.processor_references += 1
        requests = self.l1.access(ref)
        pending_hint = None
        for request in requests:
            hit = self.l2.request(request)
            if self._hints is None:
                continue
            line = self.l1.mapper.set_index(request.address)
            if request.kind is RequestKind.READ_IN:
                # Record after the whole batch: the victim write-back
                # (issued second) must still see its own hint.
                frame = self.l2.locate(request.address)
                pending_hint = (line, request.address, frame)
            else:
                self._consult_hint(line, request.address, hit)
        if pending_hint is not None:
            line, address, frame = pending_hint
            self._hints[line] = (address, frame)

    def _consult_hint(self, line: int, address: int, l2_hit: bool) -> None:
        entry = self._hints.pop(line, None)
        if entry is None or entry[0] != address:
            return
        self.inclusion.hints_consulted += 1
        if l2_hit and self.l2.locate(address) == entry[1]:
            self.inclusion.hints_correct += 1
        else:
            self.inclusion.hints_wrong += 1

    def _on_l2_eviction(self, address: int, was_dirty: bool) -> None:
        """Back-invalidate every L1 block inside the evicted L2 block."""
        for offset in range(0, self.l2.block_size, self.l1.block_size):
            sub_address = address + offset
            dropped = self.l1.invalidate(sub_address)
            if dropped is None:
                continue
            self.inclusion.back_invalidations += 1
            if dropped:
                self.inclusion.dirty_back_invalidations += 1
            if self._hints is not None:
                line = self.l1.mapper.set_index(sub_address)
                entry = self._hints.get(line)
                if entry is not None and entry[0] == sub_address:
                    del self._hints[line]

    def run(self, trace: Iterable[Reference]) -> HierarchyStats:
        """Service an entire trace and return the hierarchy statistics."""
        for ref in trace:
            self.access(ref)
        return self.stats

    def flush(self) -> None:
        """Cold-start both levels (no write-back traffic), as between
        the paper's 23 concatenated traces."""
        self.l1.invalidate_all()
        self.l2.invalidate_all()
        if self._hints is not None:
            self._hints.clear()

    def inclusion_holds(self) -> bool:
        """Check multi-level inclusion: every L1 block resident in L2.

        The paper does not enforce inclusion but monitors how nearly it
        holds; this is the checking primitive (used by tests and the
        inclusion diagnostics).
        """
        for address in self.l1.resident_addresses():
            if not self.l2.contains(address):
                return False
        return True


def capture_miss_stream(
    trace: Iterable[Reference], l1: DirectMappedCache
) -> MissStream:
    """Run ``trace`` through ``l1`` alone, recording its request stream."""
    stream = MissStream()
    for ref in trace:
        if ref.is_flush:
            l1.invalidate_all()
            stream.append_flush()
            continue
        stream.processor_references += 1
        for request in l1.access(ref):
            stream.append(request)
    return stream


#: Process-wide miss-stream cache, content-addressed by
#: (workload identity, L1 capacity, L1 block size). Values are
#: (stream, L1 read-in miss ratio) pairs.
_MISS_STREAM_CACHE: Dict[tuple, Tuple[MissStream, float]] = {}


def _workload_key(workload) -> tuple:
    """Content address for a workload.

    Uses the workload's own ``cache_key()`` when it provides one
    (:class:`~repro.trace.synthetic.AtumWorkload` does — seed, segment
    structure, and model parameters); otherwise falls back to object
    identity, which still deduplicates repeated captures of the same
    instance.
    """
    cache_key = getattr(workload, "cache_key", None)
    if cache_key is not None:
        return (type(workload).__qualname__,) + tuple(cache_key())
    return ("id", id(workload))


def cached_miss_stream(
    workload, capacity_bytes: int, block_size: int
) -> Tuple[MissStream, float]:
    """Captured L1 request stream for ``workload``, memoized process-wide.

    The L1 pass is the expensive, L2-independent step of every sweep;
    this keys captured streams by (workload identity, L1 geometry) so
    L2-only sweeps — even across independent
    :class:`~repro.experiments.runner.ExperimentRunner` instances —
    never re-simulate the L1 for a workload they have already seen.

    Cache behavior is published to the process metrics registry
    (``miss_stream.cache_hits`` / ``miss_stream.cache_misses``), and
    each capture — the expensive phase — runs under an ``l1_capture``
    tracing span with its wall time recorded in the
    ``miss_stream.capture_seconds`` histogram. Instrumentation wraps
    the whole capture, never the per-reference loop.

    Returns:
        ``(stream, l1_readin_miss_ratio)``. The stream is shared;
        callers must treat it as immutable.
    """
    key = (_workload_key(workload), capacity_bytes, block_size)
    entry = _MISS_STREAM_CACHE.get(key)
    metrics = get_metrics()
    if entry is None:
        metrics.counter("miss_stream.cache_misses").inc()
        l1 = DirectMappedCache(capacity_bytes, block_size)
        start = time.perf_counter()
        with span(
            "l1_capture", capacity_bytes=capacity_bytes, block_size=block_size
        ):
            stream = capture_miss_stream(iter(workload), l1)
        metrics.histogram("miss_stream.capture_seconds").observe(
            time.perf_counter() - start
        )
        entry = (stream, l1.stats.readin_miss_ratio)
        _MISS_STREAM_CACHE[key] = entry
    else:
        metrics.counter("miss_stream.cache_hits").inc()
    return entry


#: Process-wide packed miss-stream cache, content-addressed like
#: :data:`_MISS_STREAM_CACHE`. Values are (PackedMissStream,
#: L1 read-in miss ratio) pairs.
_PACKED_STREAM_CACHE: Dict[tuple, Tuple[PackedMissStream, float]] = {}


def cached_packed_miss_stream(
    workload, capacity_bytes: int, block_size: int
) -> Tuple[PackedMissStream, float]:
    """Packed (columnar) captured L1 stream, memoized and artifact-backed.

    The columnar sibling of :func:`cached_miss_stream` and the unit of
    reuse for the batch-replay engine: the same in-process memoization,
    plus an optional on-disk layer — when a stream artifact store is
    configured (``REPRO_STREAM_ARTIFACTS`` or
    :func:`repro.cache.artifacts.set_artifact_store`), captures are
    persisted as content-addressed, mmap-able ``RPM2`` artifacts and
    later processes (sweep workers, ``repro-serve`` jobs, new sessions)
    load them zero-copy instead of re-simulating the L1. Artifact reuse
    is published as ``miss_stream.artifact_hits`` /
    ``miss_stream.artifact_misses`` next to the in-process
    ``miss_stream.cache_*`` counters.

    Returns:
        ``(packed_stream, l1_readin_miss_ratio)``; treat the stream as
        immutable — it is shared.
    """
    from repro.cache.artifacts import get_artifact_store

    key = (_workload_key(workload), capacity_bytes, block_size)
    entry = _PACKED_STREAM_CACHE.get(key)
    metrics = get_metrics()
    if entry is not None:
        metrics.counter("miss_stream.cache_hits").inc()
        return entry
    store = get_artifact_store()
    if store is not None:
        entry = store.load(workload, capacity_bytes, block_size)
        if entry is not None:
            metrics.counter("miss_stream.artifact_hits").inc()
            _PACKED_STREAM_CACHE[key] = entry
            return entry
        metrics.counter("miss_stream.artifact_misses").inc()
    stream, miss_ratio = cached_miss_stream(workload, capacity_bytes, block_size)
    packed = PackedMissStream.from_miss_stream(stream)
    entry = (packed, miss_ratio)
    _PACKED_STREAM_CACHE[key] = entry
    if store is not None:
        store.save(workload, capacity_bytes, block_size, packed, miss_ratio)
    return entry


def clear_miss_stream_cache() -> None:
    """Drop every memoized miss stream (frees the captured traces)."""
    _MISS_STREAM_CACHE.clear()
    _PACKED_STREAM_CACHE.clear()


def split_stream_at_flushes(stream: MissStream) -> List[MissStream]:
    """Split a captured stream into its cold-start segments.

    Every segment starts at a flush boundary, so replaying each into a
    *fresh* L2 is event-for-event identical to replaying the whole
    stream serially — the property the parallel sweep runner uses to
    shard one replay across worker processes and merge the resulting
    accumulators. Flush markers are consumed by the split (a fresh
    cache is already cold); empty segments are dropped.

    ``processor_references`` is carried on the first segment only, so
    summing over segments matches the original stream.
    """
    segments: List[MissStream] = []
    current: List[Tuple[int, int]] = []
    for event in stream.events:
        if event == FLUSH_MARKER:
            if current:
                segments.append(MissStream(events=current))
                current = []
            continue
        current.append(event)
    if current:
        segments.append(MissStream(events=current))
    if segments:
        segments[0].processor_references = stream.processor_references
    return segments


def replay_miss_stream(stream, l2: SetAssociativeCache) -> None:
    """Feed a captured miss stream into an (instrumented) L2 cache.

    Accepts either a legacy :class:`MissStream` or a columnar
    :class:`~repro.cache.stream.PackedMissStream`; the replay order —
    and therefore every counter — is identical for equivalent streams.
    """
    if isinstance(stream, PackedMissStream):
        _replay_packed(stream, l2)
        return
    for code, address in stream.events:
        if (code, address) == FLUSH_MARKER:
            l2.invalidate_all()
            continue
        if code == 0:
            l2.read_in(address)
        else:
            l2.write_back(address)


def _replay_packed(stream: PackedMissStream, l2: SetAssociativeCache) -> None:
    """Replay a packed stream: bulk column walks between flush boundaries."""
    read_in = l2.read_in
    write_back = l2.write_back
    codes = stream.codes
    addresses = stream.addresses
    position = 0
    boundaries = list(stream.flush_offsets)
    boundaries.append(len(codes))
    for index, boundary in enumerate(boundaries):
        for i in range(position, boundary):
            if codes[i]:
                write_back(addresses[i])
            else:
                read_in(addresses[i])
        position = boundary
        if index < len(boundaries) - 1:
            l2.invalidate_all()
