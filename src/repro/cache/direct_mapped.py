"""Direct-mapped write-back level-one cache (paper Table 3).

On a miss that replaces a dirty block, the new block is first obtained
via a *read-in* request and then a *write-back* of the victim is issued
to the level-two cache — in that order, as Table 3 specifies. The
cache is write-allocate: a store miss fetches the block and then dirties
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.cache.address import AddressMapper
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError
from repro.trace.reference import AccessKind, Reference


class RequestKind(Enum):
    """Request types the level-one cache issues to the level below."""

    READ_IN = "read_in"
    WRITE_BACK = "write_back"


@dataclass(frozen=True)
class MemoryRequest:
    """One request from the level-one cache to the level-two cache.

    ``address`` is the byte address of the first byte of the level-one
    block (level-two geometry may differ; it re-maps the address).
    """

    kind: RequestKind
    address: int


class DirectMappedCache:
    """Direct-mapped, write-back, write-allocate cache."""

    def __init__(self, capacity_bytes: int, block_size: int) -> None:
        if capacity_bytes <= 0 or capacity_bytes % block_size:
            raise ConfigurationError(
                f"capacity {capacity_bytes} is not a multiple of block "
                f"size {block_size}"
            )
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        num_lines = capacity_bytes // block_size
        self.mapper = AddressMapper(block_size, num_lines)
        self._tags: List[Optional[int]] = [None] * num_lines
        self._dirty: List[bool] = [False] * num_lines
        self.stats = CacheStats()

    @property
    def num_lines(self) -> int:
        """Number of direct-mapped lines."""
        return len(self._tags)

    def access(self, ref: Reference) -> List[MemoryRequest]:
        """Service one processor reference; return requests for the L2.

        Returns an empty list on a hit; on a miss, a read-in request
        followed (if the victim was dirty) by a write-back request.
        """
        index, tag = self.mapper.split(ref.address)
        if self._tags[index] == tag:
            self.stats.readin_hits += 1
            if ref.kind is AccessKind.STORE:
                self._dirty[index] = True
            return []

        self.stats.readin_misses += 1
        requests = [
            MemoryRequest(RequestKind.READ_IN, self._block_start(ref.address))
        ]
        victim_tag = self._tags[index]
        if victim_tag is not None:
            self.stats.evictions += 1
            if self._dirty[index]:
                self.stats.dirty_evictions += 1
                victim_addr = self.mapper.rebuild(index, victim_tag)
                requests.append(MemoryRequest(RequestKind.WRITE_BACK, victim_addr))
        self._tags[index] = tag
        self._dirty[index] = ref.kind is AccessKind.STORE
        return requests

    def contains(self, address: int) -> bool:
        """Whether the block holding ``address`` is resident."""
        index, tag = self.mapper.split(address)
        return self._tags[index] == tag

    def invalidate(self, address: int) -> Optional[bool]:
        """Drop the block holding ``address`` if resident.

        Returns ``None`` if the block was not resident, otherwise
        whether the dropped copy was dirty (the caller decides what to
        do about the lost write data — e.g. count a forced write-back
        when enforcing multi-level inclusion).
        """
        index, tag = self.mapper.split(address)
        if self._tags[index] != tag:
            return None
        was_dirty = self._dirty[index]
        self._tags[index] = None
        self._dirty[index] = False
        return was_dirty

    def invalidate_all(self) -> None:
        """Flush without write-backs (the paper's cold-start flush)."""
        for index in range(self.num_lines):
            self._tags[index] = None
            self._dirty[index] = False

    def resident_addresses(self) -> List[int]:
        """Block-start addresses of every resident block (inclusion
        checking and diagnostics)."""
        addresses = []
        for index, tag in enumerate(self._tags):
            if tag is not None:
                addresses.append(self.mapper.rebuild(index, tag))
        return addresses

    def flush_dirty(self) -> List[MemoryRequest]:
        """Write back every dirty block and invalidate the cache.

        Not used by the paper's cold-start protocol, but provided for
        warm-cache experiments.
        """
        requests = []
        for index in range(self.num_lines):
            tag = self._tags[index]
            if tag is not None and self._dirty[index]:
                address = self.mapper.rebuild(index, tag)
                requests.append(MemoryRequest(RequestKind.WRITE_BACK, address))
            self._tags[index] = None
            self._dirty[index] = False
        return requests

    def _block_start(self, address: int) -> int:
        return (address >> self.mapper.block_bits) << self.mapper.block_bits

    def __repr__(self) -> str:
        return (
            f"DirectMappedCache(capacity_bytes={self.capacity_bytes}, "
            f"block_size={self.block_size})"
        )
