"""Probe observers: per-scheme instrumentation attached to the L2 cache.

Because every lookup scheme leaves hit/miss behaviour and replacement
unchanged (the paper's schemes differ only in how the answer is
*discovered*), one simulated cache can drive many schemes at once. The
cache shows each observer the pre-update set state for every access;
the observer computes that scheme's probe count and accumulates it.

Write-back accounting follows the paper:

- with the write-back optimization (the default, used for Table 4 and
  Figures 4-6) a write-back costs zero probes for every scheme and is
  counted as a hit in the averages;
- without it (the "w/o optimization" curves of Figure 3) a write-back
  is looked up like any other access.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.direct_mapped import RequestKind
from repro.core.probes import ProbeAccumulator, SetView
from repro.core.schemes import LookupScheme


class ProbeObserver:
    """Accumulates probe counts for one lookup scheme.

    Args:
        scheme: The lookup scheme to account for.
        writeback_optimization: When True (default), write-backs cost
            zero probes; when False, the scheme performs a full lookup
            on write-backs too.
        label: Display name for reports; defaults to the scheme name.
    """

    def __init__(
        self,
        scheme: LookupScheme,
        writeback_optimization: bool = True,
        label: Optional[str] = None,
    ) -> None:
        self.scheme = scheme
        self.writeback_optimization = writeback_optimization
        self.label = label if label is not None else scheme.name
        self.accumulator = ProbeAccumulator()

    def observe(self, view: SetView, tag: int, kind: RequestKind) -> None:
        """Account for one L2 access against pre-update set state."""
        if kind is RequestKind.WRITE_BACK and self.writeback_optimization:
            self.accumulator.record_writeback(0)
            return
        outcome = self.scheme.lookup(view, tag)
        if kind is RequestKind.WRITE_BACK:
            self.accumulator.record_writeback(outcome.probes)
        elif outcome.hit:
            self.accumulator.record_hit(outcome.probes)
        else:
            self.accumulator.record_miss(outcome.probes)

    def __repr__(self) -> str:
        return f"ProbeObserver(label={self.label!r}, scheme={self.scheme!r})"


class MruDistanceObserver:
    """Histogram of MRU hit distances on read-in hits (Figure 5, right).

    Distance ``i`` (1-based) means the hit was to the ``i``-th
    most-recently-used entry of the set; ``f_i`` is the histogram
    normalized over read-in hits.
    """

    def __init__(self, associativity: int) -> None:
        self.associativity = associativity
        self.counts: Dict[int, int] = {}
        self.hits = 0
        self.accesses = 0
        self.updates = 0
        self.label = "mru-distance"

    def observe(self, view: SetView, tag: int, kind: RequestKind) -> None:
        """Record the MRU distance of read-in hits, and — over *all*
        accesses — whether the MRU ordering information must be
        rewritten (the ``u`` of Table 2's cycle expressions: an access
        to anything but the current MRU head changes the list).

        The hit distance is read straight off the MRU order (a hit's
        1-based rank in ``view.mru_order``): with a full MRU list that
        *is* the search position, so no per-access
        :class:`~repro.core.mru.MRULookup` rescan is needed — the fused
        engine hands the same rank over precomputed.
        """
        self.accesses += 1
        mru = view.mru_order
        tags = view.tags
        if not mru or tags[mru[0]] != tag:
            self.updates += 1
        if kind is not RequestKind.READ_IN:
            return
        for index, frame in enumerate(mru):
            if tags[frame] == tag:
                distance = index + 1
                self.hits += 1
                self.counts[distance] = self.counts.get(distance, 0) + 1
                return

    @property
    def update_fraction(self) -> float:
        """``u``: fraction of accesses that rewrite the MRU list."""
        if self.accesses == 0:
            return 0.0
        return self.updates / self.accesses

    def distribution(self) -> List[float]:
        """``f_i`` for ``i = 1..a``: P(hit at MRU distance i | hit)."""
        if self.hits == 0:
            return [0.0] * self.associativity
        return [
            self.counts.get(i, 0) / self.hits
            for i in range(1, self.associativity + 1)
        ]
