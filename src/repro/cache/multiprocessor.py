"""Multi-node shared-memory system with write-invalidate coherence.

The paper's setting (§1): several processors, each with a private
two-level cache hierarchy, sharing memory over an interconnect;
coherency invalidations from other processors' writes keep punching
holes in each level-two cache (footnote 1). This module builds that
system out of the library's pieces:

- each node is a :class:`~repro.cache.hierarchy.TwoLevelHierarchy`
  running its own reference stream (processes do not migrate);
- writes to the globally shared segment (see
  :func:`repro.trace.process_model.shared_block_set`) invalidate the
  block in every *other* node's L1 and L2.

Two protocol fidelities are available. The default is the pessimistic
write-invalidate scheme: every shared store broadcasts and
invalidation is instantaneous — erring toward *more* invalidations,
the regime footnote 1 talks about. ``track_ownership=True`` adds
MSI-style exclusive-writer tracking: a store by the current owner is
silent (no other node can hold a copy), and a remote load demotes the
owner — cutting broadcast traffic the way a real protocol's M state
does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.cache.hierarchy import TwoLevelHierarchy
from repro.errors import ConfigurationError
from repro.trace.process_model import SHARED_BASE, SHARED_SPAN
from repro.trace.reference import AccessKind, Reference


@dataclass
class NodeCoherenceStats:
    """Per-node coherence counters."""

    #: Shared-segment stores this node issued (invalidation broadcasts).
    broadcasts: int = 0
    #: Invalidations that found a copy in this node's L2.
    l2_invalidations: int = 0
    #: ... and in this node's L1.
    l1_invalidations: int = 0


@dataclass
class MultiprocessorStats:
    """System-wide counters."""

    references: int = 0
    nodes: List[NodeCoherenceStats] = field(default_factory=list)

    @property
    def total_broadcasts(self) -> int:
        """All shared-store broadcasts issued."""
        return sum(node.broadcasts for node in self.nodes)

    @property
    def total_l2_invalidations(self) -> int:
        """All L2 copies killed by remote stores."""
        return sum(node.l2_invalidations for node in self.nodes)


class MultiprocessorSystem:
    """N private two-level hierarchies with write-invalidate sharing.

    Args:
        nodes: One hierarchy per processor.
        shared_range: ``(low, high)`` byte range of the shared segment;
            defaults to the workload generator's pid-0 slice.
    """

    def __init__(
        self,
        nodes: Sequence[TwoLevelHierarchy],
        shared_range: Tuple[int, int] = (SHARED_BASE, SHARED_BASE + SHARED_SPAN),
        track_ownership: bool = False,
    ) -> None:
        if not nodes:
            raise ConfigurationError("need at least one node")
        low, high = shared_range
        if low < 0 or high <= low:
            raise ConfigurationError("bad shared range")
        self.nodes = list(nodes)
        self.shared_low = low
        self.shared_high = high
        self.stats = MultiprocessorStats(
            nodes=[NodeCoherenceStats() for _ in self.nodes]
        )
        #: MSI-style writer tracking: when on, a store by a block's
        #: current exclusive owner broadcasts nothing (no other node
        #: can hold a copy), and a remote load demotes the owner. When
        #: off, every shared store broadcasts (the pessimistic model).
        self.track_ownership = track_ownership
        self._owner = {} if track_ownership else None

    def is_shared(self, address: int) -> bool:
        """Whether ``address`` lies in the shared segment."""
        return self.shared_low <= address < self.shared_high

    def access(self, node_index: int, ref: Reference) -> None:
        """One reference on one node, with coherence side effects."""
        node = self.nodes[node_index]
        node.access(ref)
        if ref.is_flush:
            return
        self.stats.references += 1
        if not self.is_shared(ref.address):
            return
        l2 = node.l2
        block = ref.address >> l2.mapper.block_bits
        if ref.kind is AccessKind.STORE:
            if self._owner is not None and self._owner.get(block) == node_index:
                return  # exclusive owner: silent upgrade, nothing to kill
            self._broadcast_invalidate(node_index, ref.address)
            if self._owner is not None:
                self._owner[block] = node_index
        elif self._owner is not None:
            # A remote load demotes any exclusive owner to shared.
            if self._owner.get(block, node_index) != node_index:
                self._owner.pop(block, None)

    def _broadcast_invalidate(self, writer: int, address: int) -> None:
        self.stats.nodes[writer].broadcasts += 1
        # Invalidate the enclosing L2 block everywhere else, and any L1
        # sub-blocks it covers.
        for index, node in enumerate(self.nodes):
            if index == writer:
                continue
            l2 = node.l2
            block_start = (
                address >> l2.mapper.block_bits
            ) << l2.mapper.block_bits
            if l2.invalidate(block_start):
                self.stats.nodes[index].l2_invalidations += 1
            for offset in range(0, l2.block_size, node.l1.block_size):
                if node.l1.invalidate(block_start + offset) is not None:
                    self.stats.nodes[index].l1_invalidations += 1

    def run(self, traces: Sequence[Iterable[Reference]], quantum: int = 64) -> None:
        """Interleave the node traces in round-robin quanta.

        Lockstep interleaving at a small quantum approximates
        concurrent execution; exhausted traces drop out.
        """
        if len(traces) != len(self.nodes):
            raise ConfigurationError(
                f"{len(traces)} traces for {len(self.nodes)} nodes"
            )
        if quantum <= 0:
            raise ConfigurationError("quantum must be positive")
        iterators = [(index, iter(trace)) for index, trace in enumerate(traces)]
        while iterators:
            alive = []
            for index, iterator in iterators:
                exhausted = False
                for _ in range(quantum):
                    try:
                        ref = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    self.access(index, ref)
                if not exhausted:
                    alive.append((index, iterator))
            iterators = alive

    def l2_utilization(self) -> float:
        """Mean fraction of valid L2 frames across nodes (footnote 1)."""
        total = valid = 0
        for node in self.nodes:
            for cache_set in node.l2.sets:
                total += node.l2.associativity
                valid += len(cache_set.valid_frames())
        if total == 0:
            return 0.0
        return valid / total


def node_workloads(count: int, segments: int, references_per_segment: int,
                   seed: int = 1989, shared_fraction: float = 0.05):
    """Convenience: one shared-data workload per node, distinct seeds.

    Every node's processes reference the same shared segment (that is
    the point); private regions never collide because they live in
    per-process pid slices — nodes reuse pids, which is fine for
    *coherence* studies since private-address collisions across nodes
    would only matter if the traces were interleaved into one cache.
    Here each node has private caches, and only shared addresses
    interact.
    """
    from dataclasses import replace

    from repro.trace.synthetic import AtumWorkload, SegmentParameters

    base = SegmentParameters()
    params = replace(
        base,
        user=replace(base.user, shared_fraction=shared_fraction),
        os=replace(base.os, shared_fraction=shared_fraction),
    )
    return [
        AtumWorkload(
            segments=segments,
            references_per_segment=references_per_segment,
            seed=seed + 101 * node,
            params=params,
        )
        for node in range(count)
    ]
