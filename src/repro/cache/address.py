"""Address decomposition for caches.

A byte address splits into block offset (low ``log2(block_size)``
bits), set index (next ``log2(num_sets)`` bits), and tag (everything
above). The simulator keeps the *full* tag for hit/miss ground truth;
the probe models mask it to the paper's ``t``-bit stored-tag width
themselves.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def _log2_exact(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


class AddressMapper:
    """Maps byte addresses to (set index, tag) for one cache geometry."""

    def __init__(self, block_size: int, num_sets: int) -> None:
        self.block_size = block_size
        self.num_sets = num_sets
        self.block_bits = _log2_exact(block_size, "block size")
        self.set_bits = _log2_exact(num_sets, "number of sets")
        self._set_mask = num_sets - 1

    def block_address(self, addr: int) -> int:
        """Block number containing byte ``addr``."""
        if addr < 0:
            raise ValueError(f"addresses are non-negative, got {addr}")
        return addr >> self.block_bits

    def set_index(self, addr: int) -> int:
        """Set the block containing ``addr`` maps to."""
        return self.block_address(addr) & self._set_mask

    def tag(self, addr: int) -> int:
        """Full (unmasked) tag of the block containing ``addr``."""
        return self.block_address(addr) >> self.set_bits

    def split(self, addr: int) -> tuple:
        """``(set_index, tag)`` for ``addr`` in one call."""
        block = self.block_address(addr)
        return block & self._set_mask, block >> self.set_bits

    def rebuild(self, set_index: int, tag: int) -> int:
        """Byte address of the first byte of the block ``(set_index, tag)``.

        Inverse of :meth:`split` up to the block offset; used to
        reconstruct victim addresses for write-backs.
        """
        if not 0 <= set_index < self.num_sets:
            raise ValueError(f"set index {set_index} out of range")
        block = (tag << self.set_bits) | set_index
        return block << self.block_bits

    def __repr__(self) -> str:
        return (
            f"AddressMapper(block_size={self.block_size}, "
            f"num_sets={self.num_sets})"
        )
