"""Set-associative level-two cache with probe instrumentation.

Services read-in and write-back requests from the level-one cache
(Table 3). Replacement is true LRU by default; attached observers
compute, per access, how many probes each lookup implementation would
have spent — all from the same single simulation pass.

Two instrumentation paths are supported:

- *legacy observers* (:meth:`SetAssociativeCache.attach`): each
  observer receives an immutable :class:`~repro.core.probes.SetView`
  snapshot per access and runs its own lookup — the reference
  implementation;
- the *fused engine* (:meth:`SetAssociativeCache.attach_engine`): a
  :class:`~repro.core.engine.FusedProbeEngine` reads the live set state
  zero-copy and derives every scheme's probe count from shared lookup
  facts, bit-identically to the observers but many times faster.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.cache.address import AddressMapper
from repro.cache.direct_mapped import MemoryRequest, RequestKind
from repro.cache.replacement import ReplacementPolicy, make_replacement
from repro.cache.set_state import CacheSet
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError


class SetAssociativeCache:
    """An ``a``-way set-associative write-back cache.

    Args:
        capacity_bytes: Total data capacity.
        block_size: Block size in bytes (power of two).
        associativity: Set size ``a`` (power of two).
        replacement: Policy instance or registry name (default ``lru``).
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int,
        associativity: int,
        replacement: Union[ReplacementPolicy, str] = "lru",
    ) -> None:
        if associativity <= 0 or associativity & (associativity - 1):
            raise ConfigurationError(
                f"associativity must be a positive power of two, got {associativity}"
            )
        blocks = capacity_bytes // block_size
        if blocks * block_size != capacity_bytes:
            raise ConfigurationError(
                f"capacity {capacity_bytes} is not a multiple of block size {block_size}"
            )
        if blocks % associativity:
            raise ConfigurationError(
                f"{blocks} blocks do not divide into {associativity}-way sets"
            )
        num_sets = blocks // associativity
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.associativity = associativity
        self.mapper = AddressMapper(block_size, num_sets)
        self.sets = [CacheSet(associativity) for _ in range(num_sets)]
        if isinstance(replacement, str):
            replacement = make_replacement(replacement)
        self.replacement = replacement
        self.stats = CacheStats()
        self.observers: List = []
        #: Optional fused probe-accounting engine (zero-copy fast path).
        self.engine = None
        #: Optional callable invoked with (block_address, was_dirty)
        #: whenever a valid block is evicted — the hook the hierarchy
        #: uses to enforce multi-level inclusion (back-invalidation).
        self.eviction_listener = None

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return len(self.sets)

    def attach(self, observer) -> None:
        """Attach a probe observer (see :mod:`repro.cache.observers`)."""
        self.observers.append(observer)

    def attach_all(self, observers: Iterable) -> None:
        """Attach several probe observers at once."""
        for observer in observers:
            self.attach(observer)

    def attach_engine(self, engine) -> None:
        """Attach a :class:`~repro.core.engine.FusedProbeEngine`.

        The engine sees the live (pre-update) set state by reference —
        no per-access snapshot — plus the ground-truth hit frame the
        cache computes anyway, and accounts every registered scheme
        from those shared facts.
        """
        if engine.associativity != self.associativity:
            raise ConfigurationError(
                f"engine for associativity {engine.associativity} attached "
                f"to a {self.associativity}-way cache"
            )
        if self.engine is not None:
            raise ConfigurationError("an engine is already attached")
        self.engine = engine

    def request(self, req: MemoryRequest) -> bool:
        """Service one L1 request; return True on a hit."""
        if req.kind is RequestKind.READ_IN:
            return self.read_in(req.address)
        return self.write_back(req.address)

    def read_in(self, address: int) -> bool:
        """Service a read-in request; returns True on a hit.

        On a miss the LRU victim is evicted (an invalid frame is filled
        first) and the block installed clean.
        """
        index, tag = self.mapper.split(address)
        cache_set = self.sets[index]
        frame = cache_set.find(tag)
        engine = self.engine
        if engine is not None:
            # Zero-copy: the engine borrows the set's internal state.
            engine.observe(cache_set._tags, cache_set._mru, tag, False, frame)
        if self.observers:
            self._notify(cache_set, tag, RequestKind.READ_IN)
        if frame is not None:
            self.stats.readin_hits += 1
            cache_set.touch(frame)
            return True

        self.stats.readin_misses += 1
        self._fill(index, tag, dirty=False)
        return False

    def write_back(self, address: int) -> bool:
        """Service a write-back from the L1; returns True on a hit.

        A hit dirties the block and refreshes its recency (the paper:
        write-backs "update the MRU list, determining the replacement
        policy"). Inclusion is not enforced, so a write-back can miss;
        the block is then allocated dirty.
        """
        index, tag = self.mapper.split(address)
        cache_set = self.sets[index]
        frame = cache_set.find(tag)
        engine = self.engine
        if engine is not None:
            engine.observe(cache_set._tags, cache_set._mru, tag, True, frame)
        if self.observers:
            self._notify(cache_set, tag, RequestKind.WRITE_BACK)
        if frame is not None:
            self.stats.writeback_hits += 1
            cache_set.set_dirty(frame)
            cache_set.touch(frame)
            return True

        self.stats.writeback_misses += 1
        self._fill(index, tag, dirty=True)
        return False

    def contains(self, address: int) -> bool:
        """Whether the block holding ``address`` is resident."""
        index, tag = self.mapper.split(address)
        return self.sets[index].find(tag) is not None

    def locate(self, address: int) -> Optional[int]:
        """Frame index holding ``address``'s block, or ``None``.

        Used for the paper's write-back optimization: the L1 retains a
        ``log2(a)``-bit indicator of the frame its block occupies in
        the L2 (blocks never change frames once loaded).
        """
        index, tag = self.mapper.split(address)
        return self.sets[index].find(tag)

    def invalidate(self, address: int) -> bool:
        """Drop the block holding ``address`` (no write-back traffic).

        Models a coherency invalidation arriving at this cache.
        Returns True if the block was resident.
        """
        index, tag = self.mapper.split(address)
        frame = self.sets[index].find(tag)
        if frame is None:
            return False
        self.sets[index].invalidate(frame)
        return True

    def invalidate_all(self) -> None:
        """Flush every set without write-backs (cold-start boundary).

        After the flush the cache is indistinguishable from a freshly
        constructed one: set state, tag indices, and the replacement
        policy's fill randomness are all restored to their cold state.
        That property is what lets a captured stream be replayed
        segment-by-segment into fresh caches with bit-identical results
        (see
        :meth:`~repro.experiments.runner.ExperimentRunner.run_segmented`).
        """
        for cache_set in self.sets:
            cache_set.invalidate_all()
        self.replacement.reset()

    def _fill(self, set_index: int, tag: int, dirty: bool) -> None:
        cache_set = self.sets[set_index]
        victim = self.replacement.victim(cache_set)
        victim_tag = cache_set.tag_at(victim)
        if victim_tag is not None:
            self.stats.evictions += 1
            victim_dirty = cache_set.is_dirty(victim)
            if victim_dirty:
                self.stats.dirty_evictions += 1
            if self.eviction_listener is not None:
                address = self.mapper.rebuild(set_index, victim_tag)
                self.eviction_listener(address, victim_dirty)
        cache_set.install(victim, tag, dirty=dirty)

    def _notify(self, cache_set: CacheSet, tag: int, kind: RequestKind) -> None:
        if not self.observers:
            return
        view = cache_set.view()
        for observer in self.observers:
            observer.observe(view, tag, kind)

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache(capacity_bytes={self.capacity_bytes}, "
            f"block_size={self.block_size}, "
            f"associativity={self.associativity})"
        )
