"""The ``repro-serve`` operator dashboard: one composed view.

Takes the service's operational snapshot (:meth:`SimulationService.status`),
the job table, and the benchmark trajectory
(:class:`~repro.report.trajectory.TrajectoryReport`) and renders them
as one surface in three forms:

- :func:`build_dashboard_payload` — the machine-readable JSON document
  behind ``GET /dashboard.json`` (schema-checked by
  ``repro-obs-validate --dashboard``);
- :func:`render_dashboard_text` — the ``GET /dashboard.txt`` view:
  pure ASCII, and **byte-stable** — two renders of the same service
  state are identical bytes, so it can be diffed, golden-tested, and
  watched with ``watch``. Anything time-varying under a fixed state
  (breaker ``retry_after`` countdowns, "now"-relative ages) is
  deliberately excluded;
- :func:`render_dashboard_html` — the ``GET /dashboard`` page, static
  HTML with inline CSS/SVG, no external assets.

Import layering: stdlib + :mod:`repro.report.builder`/``trajectory``
only — the service imports this module, never the reverse.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List, Optional

from repro.report.builder import TableBuilder
from repro.report.trajectory import TrajectoryReport, html_page

#: Version of the ``/dashboard.json`` payload layout. Mirrored by
#: ``repro.obs.validate.SUPPORTED_DASHBOARD_SCHEMA_VERSION`` (the
#: validator must not import this package); a cross-check test keeps
#: them in lockstep. v2 added the ``status.latency`` quantile block;
#: v3 added the optional ``status.shards`` cluster table (present on
#: ``repro-cluster`` dashboards, absent on single-shard
#: ``repro-serve`` ones).
DASHBOARD_SCHEMA_VERSION = 3

#: The job-table layout, shared by the text and HTML renderings.
_JOB_COLUMNS = [
    {"header": "id", "key": "id"},
    {"header": "status", "key": "status"},
    {"header": "points", "key": "points", "align": "right"},
    {"header": "config", "key": "config_hash"},
    {"header": "wall (s)", "key": "wall_seconds", "format": ".3f",
     "align": "right"},
    {"header": "error", "key": "error"},
]

#: Counters surfaced in the replay/stream section (PR 6's engines).
_REPLAY_COUNTERS = (
    "replay.columnar_replays",
    "miss_stream.artifact_hits",
    "miss_stream.artifact_misses",
)

#: The per-shard cluster table layout (text and HTML renderings).
#: Every field is a label or a count — no ages, no countdowns — so
#: the rows stay byte-stable under a fixed cluster state.
_SHARD_COLUMNS = [
    {"header": "shard", "key": "name"},
    {"header": "state", "key": "state"},
    {"header": "breaker", "key": "breaker"},
    {"header": "exec brk", "key": "execute_breaker"},
    {"header": "queue", "key": "queue_depth", "align": "right"},
    {"header": "jobs", "key": "jobs", "align": "right"},
    {"header": "restarts", "key": "restarts", "align": "right"},
    {"header": "readmitted", "key": "readmitted_to", "align": "right"},
]

#: The latency-quantile table layout (text and HTML renderings).
_LATENCY_COLUMNS = [
    {"header": "phase", "key": "phase"},
    {"header": "count", "key": "count", "align": "right"},
    {"header": "p50 (s)", "key": "p50", "format": ".4f", "align": "right"},
    {"header": "p95 (s)", "key": "p95", "format": ".4f", "align": "right"},
    {"header": "p99 (s)", "key": "p99", "format": ".4f", "align": "right"},
    {"header": "p999 (s)", "key": "p999", "format": ".4f", "align": "right"},
]


def _latency_rows(status: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The ``status.latency`` block as display rows, phase order kept.

    Metric names shorten to their phase (``latency.job_seconds`` →
    ``job``). Values come from recorded stamps, never the current
    clock, so the rows are byte-stable under a fixed service state.
    """
    rows = []
    for name, summary in (status.get("latency") or {}).items():
        phase = name
        if phase.startswith("latency."):
            phase = phase[len("latency."):]
        if phase.endswith("_seconds"):
            phase = phase[: -len("_seconds")]
        rows.append({
            "phase": phase,
            "count": summary.get("count", 0),
            "p50": summary.get("p50", 0.0),
            "p95": summary.get("p95", 0.0),
            "p99": summary.get("p99", 0.0),
            "p999": summary.get("p999", 0.0),
        })
    return rows


def _shard_rows(status: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The ``status.shards`` block as display rows, name order."""
    shards = status.get("shards") or {}
    return [shards[name] for name in sorted(shards)]


def _job_view(record: Dict[str, Any]) -> Dict[str, Any]:
    """A job record reduced to byte-stable display fields.

    ``wall_seconds`` is only computed from the job's own recorded
    start/finish stamps — never against the current clock — so a
    finished job renders identically forever and a running one shows
    ``-`` instead of a creeping age.
    """
    started = record.get("started_unix")
    finished = record.get("finished_unix")
    wall = (finished - started) if started and finished else None
    return {
        "id": record.get("id"),
        "status": record.get("status"),
        "points": record.get("points"),
        "config_hash": record.get("config_hash"),
        "wall_seconds": wall,
        "error": record.get("error"),
    }


def build_dashboard_payload(
    status: Dict[str, Any],
    jobs: List[Dict[str, Any]],
    trajectory: Optional[TrajectoryReport] = None,
) -> Dict[str, Any]:
    """Compose the machine-readable dashboard document."""
    return {
        "schema_version": DASHBOARD_SCHEMA_VERSION,
        "kind": "service-dashboard",
        "status": status,
        "jobs": jobs,
        "trajectory": trajectory.data if trajectory is not None else None,
    }


def render_dashboard_text(payload: Dict[str, Any]) -> str:
    """The byte-stable ASCII dashboard (``GET /dashboard.txt``)."""
    status = payload["status"]
    lines: List[str] = []
    title = "repro-serve dashboard"
    lines.append(title)
    lines.append("=" * len(title))
    ready = status.get("ready")
    lines.append(
        "ready: {state} ({reason})".format(
            state="yes" if ready else "NO",
            reason=status.get("reason"),
        )
    )
    queue = status.get("queue") or {}
    lines.append(
        "queue: {depth}/{capacity} queued"
        " (watermarks {low}/{high}, shedding={shed}, closed={closed})".format(
            depth=queue.get("depth"),
            capacity=queue.get("capacity"),
            low=queue.get("low_watermark"),
            high=queue.get("high_watermark"),
            shed="yes" if queue.get("shedding") else "no",
            closed="yes" if queue.get("closed") else "no",
        )
    )
    for name, breaker in sorted((status.get("breakers") or {}).items()):
        # retry_after is a live countdown — the one breaker field that
        # changes under a fixed state, so the stable view omits it.
        lines.append(
            "breaker {name}: {state}"
            " ({failures}/{threshold} consecutive failures)".format(
                name=name,
                state=breaker.get("state"),
                failures=breaker.get("consecutive_failures"),
                threshold=breaker.get("failure_threshold"),
            )
        )
    shard_rows = _shard_rows(status)
    if shard_rows:
        lines.append("")
        lines.append(
            TableBuilder().render(
                shard_rows,
                columns=_SHARD_COLUMNS,
                title=f"shards ({len(shard_rows)})",
            )
        )
        lines.append("")
    replay = status.get("replay") or {}
    counters = replay.get("counters") or {}
    batch = replay.get("batch_size") or {}
    lines.append(
        "replay: {columnar} columnar replays"
        " (batch count={count}, max={maximum}),"
        " artifact hits/misses {hits}/{misses}".format(
            columnar=counters.get("replay.columnar_replays", 0),
            count=batch.get("count", 0),
            maximum=batch.get("max") or 0,
            hits=counters.get("miss_stream.artifact_hits", 0),
            misses=counters.get("miss_stream.artifact_misses", 0),
        )
    )
    latency_rows = _latency_rows(status)
    if latency_rows:
        lines.append("")
        lines.append(
            TableBuilder().render(
                latency_rows,
                columns=_LATENCY_COLUMNS,
                title="latency quantiles",
            )
        )
    jobs = payload.get("jobs") or []
    lines.append("")
    if jobs:
        lines.append(
            TableBuilder().render(
                [_job_view(record) for record in jobs],
                columns=_JOB_COLUMNS,
                title=f"jobs ({len(jobs)})",
            )
        )
    else:
        lines.append("jobs: none submitted")
    lines.append("")
    trajectory = payload.get("trajectory")
    if trajectory is not None:
        lines.append(TrajectoryReport(trajectory).render_ascii())
    else:
        lines.append("bench trajectory: no history configured")
    lines.append("")
    return "\n".join(lines)


def render_dashboard_html(payload: Dict[str, Any]) -> str:
    """The ``GET /dashboard`` page: the same facts as HTML."""
    status = payload["status"]
    ready = status.get("ready")
    body: List[str] = ["<h1>repro-serve dashboard</h1>"]
    body.append(
        "<p class='verdict verdict-{cls}'>ready: "
        "<strong>{state}</strong> ({reason})</p>".format(
            cls="ok" if ready else "timing-regression",
            state="yes" if ready else "NO",
            reason=_html.escape(str(status.get("reason"))),
        )
    )
    queue = status.get("queue") or {}
    body.append(
        "<p class='meta'>queue {depth}/{capacity} queued — "
        "shedding {shed}, closed {closed}</p>".format(
            depth=queue.get("depth"),
            capacity=queue.get("capacity"),
            shed="yes" if queue.get("shedding") else "no",
            closed="yes" if queue.get("closed") else "no",
        )
    )
    breaker_rows = [
        {
            "name": name,
            "state": breaker.get("state"),
            "consecutive_failures": breaker.get("consecutive_failures"),
            "failure_threshold": breaker.get("failure_threshold"),
        }
        for name, breaker in sorted((status.get("breakers") or {}).items())
    ]
    builder = TableBuilder(fmt="html")
    body.append("<h2>Breakers</h2>")
    body.append(
        builder.render(
            breaker_rows,
            columns=[
                {"header": "breaker", "key": "name"},
                {"header": "state", "key": "state"},
                {"header": "consecutive failures",
                 "key": "consecutive_failures", "align": "right"},
                {"header": "threshold", "key": "failure_threshold",
                 "align": "right"},
            ],
        )
    )
    shard_rows = _shard_rows(status)
    if shard_rows:
        body.append(f"<h2>Shards ({len(shard_rows)})</h2>")
        body.append(builder.render(shard_rows, columns=_SHARD_COLUMNS))
    replay = status.get("replay") or {}
    counters = replay.get("counters") or {}
    batch = replay.get("batch_size") or {}
    body.append("<h2>Replay engines</h2>")
    body.append(
        builder.render(
            [
                ("columnar replays",
                 counters.get("replay.columnar_replays", 0)),
                ("batched replays", batch.get("count", 0)),
                ("max batch size", batch.get("max") or 0),
                ("stream artifact hits",
                 counters.get("miss_stream.artifact_hits", 0)),
                ("stream artifact misses",
                 counters.get("miss_stream.artifact_misses", 0)),
            ],
            headers=["counter", "value"],
        )
    )
    latency_rows = _latency_rows(status)
    if latency_rows:
        body.append("<h2>Latency quantiles</h2>")
        body.append(
            builder.render(latency_rows, columns=_LATENCY_COLUMNS)
        )
    jobs = payload.get("jobs") or []
    body.append(f"<h2>Jobs ({len(jobs)})</h2>")
    if jobs:
        body.append(
            builder.render(
                [_job_view(record) for record in jobs],
                columns=_JOB_COLUMNS,
            )
        )
    else:
        body.append("<p>(none submitted)</p>")
    body.append("<h2>Benchmark trajectory</h2>")
    trajectory = payload.get("trajectory")
    if trajectory is not None:
        report = TrajectoryReport(trajectory)
        body.append(f"<pre>{_html.escape(report.render_ascii())}</pre>")
    else:
        body.append("<p>(no history configured)</p>")
    body.append("<h2>Raw metrics</h2>")
    metrics = status.get("metrics") or {}
    body.append(
        "<pre>{}</pre>".format(
            _html.escape(json.dumps(metrics, indent=2, sort_keys=True))
        )
    )
    return html_page("repro-serve dashboard", "\n".join(body))
