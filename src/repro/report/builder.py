"""Declarative table builder with a config cascade, multi-format.

One :class:`TableBuilder` renders any structured result — sequences,
mappings, or attribute objects — as ASCII, GitHub markdown, CSV, or
HTML from a single declarative spec. Configuration cascades through
three layers, later layers winning key-by-key:

1. :data:`DEFAULTS` — the baseline every table shares;
2. a named **preset** from :data:`PRESETS` (extendable via
   :func:`register_preset`) — e.g. ``"legacy"`` reproduces the
   historical ``render_table`` output byte-for-byte, ``"paper"`` is
   the fixed-decimal layout the paper tables use;
3. **runtime overrides** — constructor and :meth:`TableBuilder.render`
   keyword arguments.

Column specs are plain dicts (``header``, optional ``key`` for
mapping/attribute lookup with dotted paths, ``format``, ``align``,
``width``) and replace wholesale at whichever cascade layer supplies
them, mirroring the kstlib ``TableBuilder`` contract that runtime
``columns=`` overrides swap the entire layout.

The per-column ``format`` spec exists to fix a long-standing
misalignment: the legacy ``render_table`` formatted every float with
``:.4g``, which drops trailing zeros (``1.0`` → ``"1"``) so columns
wobble against the paper's fixed-decimal layout. A column with
``{"format": ".2f"}`` renders every value at the same width.

Zero dependencies; pure standard library.
"""

from __future__ import annotations

import csv
import html
import io
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

#: Baseline configuration every table inherits (cascade layer 1).
DEFAULTS: Dict[str, Any] = {
    # Output format: "ascii" | "github" | "csv" | "html".
    "fmt": "ascii",
    # Column separator for the ASCII format.
    "separator": "  ",
    # Character underlining an ASCII title.
    "title_underline": "=",
    # Rendering of None cells.
    "none_text": "-",
    # Default cell alignment: "left" | "right" | "center".
    "align": "left",
    # Format spec applied to floats in columns without their own.
    "float_format": ".4g",
}

#: Named presets (cascade layer 2). Extend via :func:`register_preset`.
PRESETS: Dict[str, Dict[str, Any]] = {
    # Byte-for-byte the historical repro.experiments.report.render_table
    # output: left-justified everything, :.4g floats, two-space gutter.
    "legacy": {},
    # The paper tables' layout: numeric columns carry explicit
    # fixed-decimal formats and right alignment in their column specs;
    # the preset pins the shared cosmetics.
    "paper": {"separator": "  ", "title_underline": "="},
    # Markdown pipe tables for results_summary.md and dashboards.
    "github": {"fmt": "github"},
}

_ALIGNERS: Dict[str, Callable[[str, int], str]] = {
    "left": str.ljust,
    "right": str.rjust,
    "center": str.center,
}

#: Markdown alignment markers per column alignment.
_GITHUB_RULES = {"left": "---", "right": "---:", "center": ":---:"}


def register_preset(name: str, spec: Mapping[str, Any]) -> None:
    """Register (or replace) a named preset in :data:`PRESETS`.

    Unknown option keys are rejected eagerly — a silently ignored
    preset key is a misconfigured dashboard nobody notices.
    """
    unknown = set(spec) - set(DEFAULTS) - {"columns"}
    if unknown:
        raise ValueError(
            f"preset {name!r} has unknown option(s): {sorted(unknown)}"
        )
    PRESETS[name] = dict(spec)


def _cascade(
    preset: Optional[str], *layers: Optional[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Resolve defaults → preset → override layers into one config."""
    config = dict(DEFAULTS)
    columns: Optional[Sequence[Mapping[str, Any]]] = None
    if preset is not None:
        if preset not in PRESETS:
            raise ValueError(
                f"unknown preset {preset!r}; have {sorted(PRESETS)}"
            )
        layers = (PRESETS[preset],) + layers
    for layer in layers:
        if not layer:
            continue
        unknown = set(layer) - set(DEFAULTS) - {"columns"}
        if unknown:
            raise ValueError(f"unknown option(s): {sorted(unknown)}")
        layer = dict(layer)
        if "columns" in layer:
            columns = layer.pop("columns")
        config.update(layer)
    config["columns"] = columns
    return config


class TableBuilder:
    """Render structured rows as ASCII/markdown/CSV/HTML from one spec.

    Args:
        preset: Name of a :data:`PRESETS` entry to layer over the
            defaults.
        columns: Column specs (each a dict with ``header`` plus
            optional ``key``, ``format``, ``align``, ``width``).
            Supplied here they become the builder's layout; a
            ``columns=`` at :meth:`render` replaces them wholesale.
        **overrides: Any :data:`DEFAULTS` option (``fmt``,
            ``separator``, ``float_format``, …).
    """

    def __init__(
        self,
        preset: Optional[str] = None,
        columns: Optional[Sequence[Mapping[str, Any]]] = None,
        **overrides: Any,
    ) -> None:
        if columns is not None:
            overrides = dict(overrides, columns=columns)
        self.preset = preset
        self.config = _cascade(preset, overrides)

    # ------------------------------------------------------------------
    # cell access and formatting

    @staticmethod
    def _lookup(row: Any, column: Mapping[str, Any], index: int) -> Any:
        """The raw value of ``column`` in ``row``.

        Mappings resolve the column ``key`` as a dotted path
        (``"metadata.region"``); other objects resolve it as an
        attribute; columns without a ``key`` index positionally.
        """
        key = column.get("key")
        if key is None:
            try:
                return row[index]
            except (IndexError, KeyError, TypeError):
                return None
        if isinstance(row, Mapping):
            value: Any = row
            for part in str(key).split("."):
                if isinstance(value, Mapping) and part in value:
                    value = value[part]
                else:
                    return None
            return value
        return getattr(row, str(key), None)

    @staticmethod
    def _format_cell(
        value: Any, column: Mapping[str, Any], config: Dict[str, Any]
    ) -> str:
        """One cell's text under the column's (or table's) format."""
        if value is None:
            return config["none_text"]
        spec = column.get("format")
        if callable(spec):
            return str(spec(value))
        if spec and isinstance(value, (int, float)) and not isinstance(
            value, bool
        ):
            return format(value, spec)
        if isinstance(value, float):
            return format(value, config["float_format"])
        return str(value)

    # ------------------------------------------------------------------
    # rendering

    def render(
        self,
        rows: Sequence[Any],
        columns: Optional[Sequence[Mapping[str, Any]]] = None,
        headers: Optional[Sequence[str]] = None,
        title: str = "",
        **overrides: Any,
    ) -> str:
        """Render ``rows`` under the resolved configuration.

        Args:
            rows: Sequence of row objects (sequences, mappings, or
                attribute objects — see :meth:`_lookup`).
            columns: Runtime column specs; replace the preset's and the
                constructor's wholesale (cascade layer 3).
            headers: Shorthand for ``columns=[{"header": h}, ...]``
                (positional cells, table-level formatting) — the
                legacy ``render_table`` calling convention.
            title: Optional table title (underlined in ASCII, bold in
                markdown, a ``<caption>`` in HTML, ignored by CSV).
            **overrides: Per-call option overrides (``fmt=...`` etc.).
        """
        unknown = set(overrides) - set(DEFAULTS)
        if unknown:
            raise ValueError(f"unknown option(s): {sorted(unknown)}")
        config = dict(self.config, **overrides)
        specs = columns if columns is not None else config["columns"]
        if specs is None:
            if headers is None:
                raise ValueError("no columns: pass columns= or headers=")
            specs = [{"header": h} for h in headers]
        cells = [
            [
                self._format_cell(
                    self._lookup(row, column, index), column, config
                )
                for index, column in enumerate(specs)
            ]
            for row in rows
        ]
        fmt = config["fmt"]
        if fmt == "ascii":
            return self._render_ascii(specs, cells, title, config)
        if fmt == "github":
            return self._render_github(specs, cells, title, config)
        if fmt == "csv":
            return self._render_csv(specs, cells)
        if fmt == "html":
            return self._render_html(specs, cells, title, config)
        raise ValueError(f"unknown table format {fmt!r}")

    def _render_ascii(
        self,
        specs: Sequence[Mapping[str, Any]],
        cells: List[List[str]],
        title: str,
        config: Dict[str, Any],
    ) -> str:
        widths = [
            max(
                len(str(column["header"])),
                int(column.get("width", 0)),
                *(len(row[index]) for row in cells),
            )
            if cells
            else max(len(str(column["header"])), int(column.get("width", 0)))
            for index, column in enumerate(specs)
        ]

        def line(parts: Sequence[str], aligned: bool = True) -> str:
            out = []
            for index, part in enumerate(parts):
                align = (
                    specs[index].get("align", config["align"])
                    if aligned
                    else "left"
                )
                out.append(_ALIGNERS[align](part, widths[index]))
            return config["separator"].join(out).rstrip()

        lines: List[str] = []
        if title:
            lines.append(title)
            lines.append(config["title_underline"] * len(title))
        lines.append(
            line([str(c["header"]) for c in specs], aligned=False)
        )
        lines.append(line(["-" * w for w in widths], aligned=False))
        for row in cells:
            lines.append(line(row))
        return "\n".join(lines)

    @staticmethod
    def _render_github(
        specs: Sequence[Mapping[str, Any]],
        cells: List[List[str]],
        title: str,
        config: Dict[str, Any],
    ) -> str:
        def md_row(parts: Sequence[str]) -> str:
            return "| " + " | ".join(p.replace("|", "\\|") for p in parts) + " |"

        lines: List[str] = []
        if title:
            lines.append(f"**{title}**")
            lines.append("")
        lines.append(md_row([str(c["header"]) for c in specs]))
        lines.append(
            md_row(
                [
                    _GITHUB_RULES[c.get("align", config["align"])]
                    for c in specs
                ]
            )
        )
        for row in cells:
            lines.append(md_row(row))
        return "\n".join(lines)

    @staticmethod
    def _render_csv(
        specs: Sequence[Mapping[str, Any]], cells: List[List[str]]
    ) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow([str(c["header"]) for c in specs])
        for row in cells:
            writer.writerow(row)
        return buffer.getvalue()

    @staticmethod
    def _render_html(
        specs: Sequence[Mapping[str, Any]],
        cells: List[List[str]],
        title: str,
        config: Dict[str, Any],
    ) -> str:
        def td(tag: str, column: Mapping[str, Any], text: str) -> str:
            align = column.get("align", config["align"])
            style = "" if align == "left" else f' style="text-align:{align}"'
            return f"<{tag}{style}>{html.escape(text)}</{tag}>"

        lines = ['<table class="report-table">']
        if title:
            lines.append(f"<caption>{html.escape(title)}</caption>")
        lines.append("<thead><tr>")
        for column in specs:
            lines.append(td("th", column, str(column["header"])))
        lines.append("</tr></thead>")
        lines.append("<tbody>")
        for row in cells:
            lines.append("<tr>")
            for column, text in zip(specs, row):
                lines.append(td("td", column, text))
            lines.append("</tr>")
        lines.append("</tbody>")
        lines.append("</table>")
        return "\n".join(lines)


#: Ten brightness levels, pure ASCII — ``/dashboard.txt`` must stay
#: byte-stable across terminals, so no unicode block elements.
SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[Optional[float]], chars: str = SPARK_CHARS) -> str:
    """One character per value, min-max scaled over ``chars``.

    ``None`` values (missing points) render as a space. A flat series
    (or a single point) renders at the middle level — honest about
    "no observable trend". Deterministic: equal inputs, equal bytes.
    """
    present = [v for v in values if v is not None]
    if not present:
        return " " * len(values)
    lo, hi = min(present), max(present)
    out = []
    for value in values:
        if value is None:
            out.append(" ")
        elif hi == lo:
            out.append(chars[len(chars) // 2])
        else:
            level = int((value - lo) / (hi - lo) * (len(chars) - 1))
            out.append(chars[level])
    return "".join(out)
