"""``repro-report``: regenerate the results summary and dashboards.

One command produces the repository's observable reporting artifacts::

    repro-report                          # results/ at default scale
    repro-report --out-dir results --scale 0.125 --seed 1989
    repro-report --history BENCH_simulator.json --no-figures

Writes into ``--out-dir``:

- ``results_summary.md`` — paper Tables 1–3 and figure-series
  summaries as github markdown, stamped with provenance
  (``config_hash``, git SHA, environment fingerprint, workload
  scale/seed) — see :mod:`repro.report.summary`;
- ``trajectory.json`` — the machine-readable bench-trajectory report
  (schema-checked by ``repro-obs-validate --report``);
- ``trajectory.html`` — the static trajectory page.

Determinism contract: no artifact contains a timestamp, the workload
is seeded, and all floats use fixed formats — two consecutive runs at
the same commit are byte-identical (CI diffs them in the
``report-smoke`` job).

Exit codes: 0 — success; 2 — bad usage or unreadable inputs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ReproError
from repro.obs.compare import DEFAULT_THRESHOLD
from repro.obs.log import log
from repro.report.trajectory import TrajectoryReport


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Regenerate the results summary and the benchmark "
        "trajectory report (deterministic, provenance-stamped).",
    )
    parser.add_argument(
        "--out-dir",
        default="results",
        help="directory receiving the generated artifacts",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        default="BENCH_simulator.json",
        help="benchmark trajectory history (missing file -> empty "
        "trajectory)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale for the table/figure simulations",
    )
    parser.add_argument("--seed", type=int, default=1989)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="median-slowdown threshold for the trajectory verdict",
    )
    parser.add_argument(
        "--no-figures",
        action="store_true",
        help="skip the figure-series sections (much faster)",
    )
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="skip the trajectory section and artifacts",
    )
    parser.add_argument(
        "--no-summary",
        action="store_true",
        help="skip results_summary.md (trajectory artifacts only)",
    )
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    if not args.no_trajectory:
        trajectory = TrajectoryReport.from_file(
            args.history, threshold=args.threshold
        )
        path = out_dir / "trajectory.json"
        path.write_text(trajectory.to_json() + "\n", encoding="utf-8")
        written.append(path)
        path = out_dir / "trajectory.html"
        path.write_text(trajectory.render_html(), encoding="utf-8")
        written.append(path)
        verdict = trajectory.verdict
        if verdict is not None:
            log.info(f"trajectory verdict: {verdict}")

    if not args.no_summary:
        # Imported here, not at module scope: the summary pulls in the
        # whole experiments stack, which --no-summary runs never need.
        from repro.report.summary import build_summary

        text = build_summary(
            scale=args.scale,
            seed=args.seed,
            history_path=None if args.no_trajectory else args.history,
            threshold=args.threshold,
            include_figures=not args.no_figures,
        )
        path = out_dir / "results_summary.md"
        path.write_text(text, encoding="utf-8")
        written.append(path)

    for path in written:
        log.info(f"wrote {path}")
    return 0


def run() -> None:
    """Console-script shim mapping :class:`ReproError` to exit code 2."""
    try:
        sys.exit(main())
    except ReproError as exc:
        log.error(str(exc))
        sys.exit(2)


if __name__ == "__main__":
    run()
