"""Declarative reporting: tables, trajectory reports, dashboards.

``repro.report`` is the presentation layer of the reproduction. Every
other subsystem *produces* structured results — table builders, figure
series, benchmark histories, service snapshots — and this package
turns them into observable artifacts from one declarative spec:

- :mod:`repro.report.builder` — :class:`TableBuilder`, a
  zero-dependency table renderer with a defaults → preset → runtime
  override config cascade (the kstlib ``TableBuilder`` idiom), emitting
  ASCII, GitHub markdown, CSV, or HTML from the same column specs,
  plus :func:`sparkline` for inline ASCII trend lines;
- :mod:`repro.report.trajectory` — :class:`TrajectoryReport`, the
  benchmark-trajectory view over a
  :class:`~repro.obs.bench.BenchHistory`: throughput and latency per
  commit with bootstrap CI bands and the same regression verdict
  ``repro-bench-compare`` computes;
- :mod:`repro.report.summary` — the one-command
  ``results/results_summary.md`` generator (paper Tables 1–3, figure
  series, provenance stamp);
- :mod:`repro.report.dashboard` — composes the live ``repro-serve``
  snapshot with the bench trajectory into the ``/dashboard`` (HTML)
  and ``/dashboard.txt`` (byte-stable ASCII) operator views;
- :mod:`repro.report.cli` — the ``repro-report`` entry point.

Import layering: this package depends only on the standard library and
:mod:`repro.obs`. The submodules that *consume* experiment builders
(:mod:`~repro.report.summary`) import :mod:`repro.experiments` at
module scope, so they are deliberately **not** imported here —
``repro.experiments.report`` renders through
:mod:`repro.report.builder` without a cycle.
"""

from repro.report.builder import (
    DEFAULTS,
    PRESETS,
    TableBuilder,
    register_preset,
    sparkline,
)
from repro.report.trajectory import REPORT_SCHEMA_VERSION, TrajectoryReport

__all__ = [
    "DEFAULTS",
    "PRESETS",
    "REPORT_SCHEMA_VERSION",
    "TableBuilder",
    "TrajectoryReport",
    "register_preset",
    "sparkline",
]
