"""The benchmark trajectory as a report: sparklines, CI bands, verdict.

:class:`TrajectoryReport` turns a :class:`~repro.obs.bench.BenchHistory`
(the append-only ``BENCH_simulator.json`` trajectory) into one
observable surface: per-configuration **throughput** (requests per
second) and **service latency** (median wall seconds) across commits,
each with its bootstrap confidence band, plus the regression verdict
for the newest entry.

The verdict is not a reimplementation: it calls
:func:`repro.obs.compare.compare_entries` on exactly the pair
``repro-bench-compare`` would pick by default (newest entry vs the
newest earlier entry sharing its ``config_hash``, self-comparison when
the lineage has no history), so the dashboard and the CI gate can
never disagree about the same file.

Renderings: :meth:`~TrajectoryReport.render_ascii` (pure-ASCII
sparklines — byte-stable, suitable for ``/dashboard.txt`` and golden
tests) and :meth:`~TrajectoryReport.render_html` (a static page with
inline-SVG trend lines, no external assets).
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List, Optional

from repro.obs.bench import BenchHistory
from repro.obs.compare import DEFAULT_THRESHOLD, compare_entries
from repro.report.builder import TableBuilder, sparkline

#: Version of the report/dashboard JSON payload layout. Mirrored (not
#: imported — ``repro.obs`` must stay import-free of the rest of the
#: package) by ``repro.obs.validate.SUPPORTED_REPORT_SCHEMA_VERSION``;
#: a cross-check test keeps the two in lockstep.
REPORT_SCHEMA_VERSION = 1


def _series_point(
    index: int, entry: Dict[str, Any], result: Dict[str, Any]
) -> Dict[str, Any]:
    """One trajectory point of one configuration's result block."""
    timing = result.get("timing") if isinstance(result, dict) else None
    timing = timing if isinstance(timing, dict) else {}
    median = timing.get("median_seconds")
    requests = result.get("requests") if isinstance(result, dict) else None
    rps = result.get("requests_per_second") if isinstance(result, dict) else None
    if rps is None and requests and median:
        rps = requests / median
    ci_low = timing.get("ci_low_seconds")
    ci_high = timing.get("ci_high_seconds")
    return {
        "index": index,
        "git_sha": entry.get("git_sha"),
        "config_hash": entry.get("config_hash"),
        "median_seconds": median,
        "ci_low_seconds": ci_low,
        "ci_high_seconds": ci_high,
        "requests_per_second": rps,
        # The throughput band inverts the timing band: fast bound from
        # the CI's low (fast) time, slow bound from its high time.
        "rps_low": (requests / ci_high) if requests and ci_high else None,
        "rps_high": (requests / ci_low) if requests and ci_low else None,
    }


class TrajectoryReport:
    """Structured trajectory payload plus its renderings.

    Build from a history with :meth:`build`; the payload dict
    (``.data``) is the machine-readable form served as
    ``/dashboard.json``'s ``trajectory`` block, written by
    ``repro-report`` as ``trajectory.json``, and schema-checked by
    ``repro-obs-validate --report``.
    """

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    @classmethod
    def build(
        cls,
        history: BenchHistory,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> "TrajectoryReport":
        """Assemble the trajectory payload from ``history``.

        An empty history builds an honest empty report (zero entries,
        no verdict) rather than failing — the dashboard must render
        before the first benchmark ever runs.
        """
        entries = history.entries
        identities = [
            {
                "index": index,
                "git_sha": entry.get("git_sha"),
                "config_hash": entry.get("config_hash"),
                "created_unix": entry.get("created_unix"),
            }
            for index, entry in enumerate(entries)
        ]
        names = sorted(
            {
                name
                for entry in entries
                for name in (entry.get("results") or {})
            }
        )
        series = []
        for name in names:
            points = [
                _series_point(index, entry, (entry.get("results") or {})[name])
                for index, entry in enumerate(entries)
                if name in (entry.get("results") or {})
            ]
            series.append({"name": name, "points": points})
        verdict: Optional[Dict[str, Any]] = None
        notes: List[str] = []
        if entries:
            candidate_index = len(entries) - 1
            located = history.baseline_for(candidate_index)
            if located is None:
                notes.append(
                    "no earlier entry with the candidate's config_hash; "
                    "falling back to self-comparison"
                )
                located = (candidate_index, entries[candidate_index])
            baseline_index, baseline = located
            verdict = compare_entries(
                baseline,
                entries[candidate_index],
                threshold=threshold,
                baseline_index=baseline_index,
                candidate_index=candidate_index,
            )
            verdict["notes"] = notes + verdict["notes"]
        return cls(
            {
                "schema_version": REPORT_SCHEMA_VERSION,
                "kind": "bench-trajectory",
                "benchmark": history.data.get("benchmark"),
                "history_schema_version": history.schema_version,
                "entry_count": len(entries),
                "entries": identities,
                "series": series,
                "verdict": verdict,
            }
        )

    @classmethod
    def from_file(cls, path, threshold: float = DEFAULT_THRESHOLD):
        """Build from a history file; a missing file is an empty one."""
        return cls.build(
            BenchHistory.load_or_create(path), threshold=threshold
        )

    # ------------------------------------------------------------------
    # views

    @property
    def verdict(self) -> Optional[str]:
        """The regression verdict string, or ``None`` (empty history)."""
        verdict = self.data.get("verdict")
        return verdict.get("verdict") if isinstance(verdict, dict) else None

    def to_json(self) -> str:
        """The payload as pretty-printed, key-sorted JSON."""
        return json.dumps(self.data, indent=2, sort_keys=True, default=repr)

    def render_ascii(self) -> str:
        """Pure-ASCII trajectory: one sparkline pair per configuration.

        Byte-stable: every number has a fixed format and nothing here
        reads the clock, so two renders of the same history are
        identical bytes.
        """
        lines: List[str] = []
        count = self.data["entry_count"]
        lines.append(
            f"bench trajectory: {self.data.get('benchmark') or '?'} "
            f"({count} entr{'y' if count == 1 else 'ies'})"
        )
        if not count:
            lines.append("  (no benchmark entries yet)")
            return "\n".join(lines)
        for block in self.data["series"]:
            points = block["points"]
            rps = [p["requests_per_second"] for p in points]
            lat = [p["median_seconds"] for p in points]
            last = points[-1]
            lines.append(f"  {block['name']}")
            lines.append(
                "    throughput  [{spark}]  {value}  ci [{lo}, {hi}] req/s".format(
                    spark=sparkline(rps),
                    value=_fmt_rps(last["requests_per_second"]),
                    lo=_fmt_rps(last["rps_low"]),
                    hi=_fmt_rps(last["rps_high"]),
                )
            )
            lines.append(
                "    median wall [{spark}]  {value}  ci [{lo}, {hi}] ms".format(
                    spark=sparkline(lat),
                    value=_fmt_ms(last["median_seconds"]),
                    lo=_fmt_ms(last["ci_low_seconds"]),
                    hi=_fmt_ms(last["ci_high_seconds"]),
                )
            )
        verdict = self.data["verdict"]
        base = verdict["baseline"]
        cand = verdict["candidate"]
        lines.append(
            "  verdict: {verdict} (baseline entry {b} sha={bs}, "
            "candidate entry {c} sha={cs})".format(
                verdict=verdict["verdict"],
                b=base["index"],
                bs=(base["git_sha"] or "?")[:12],
                c=cand["index"],
                cs=(cand["git_sha"] or "?")[:12],
            )
        )
        for row in verdict["timing"]:
            if row["status"] in ("regression", "improved"):
                lines.append(
                    "    {name}: x{ratio:.3f} {status}".format(
                        name=row["name"],
                        ratio=row["ratio"],
                        status=row["status"].upper(),
                    )
                )
        for message in verdict["probe_drift"]:
            lines.append(f"    PROBE DRIFT: {message}")
        return "\n".join(lines)

    def render_html(self, title: str = "Benchmark trajectory") -> str:
        """A self-contained static HTML page (inline CSS + SVG)."""
        body: List[str] = [f"<h1>{_html.escape(title)}</h1>"]
        count = self.data["entry_count"]
        benchmark = _html.escape(str(self.data.get("benchmark") or "?"))
        body.append(
            f"<p class='meta'>benchmark <code>{benchmark}</code> — "
            f"{count} entr{'y' if count == 1 else 'ies'}</p>"
        )
        verdict = self.data.get("verdict")
        if verdict:
            status = verdict["verdict"]
            body.append(
                f"<p class='verdict verdict-{_html.escape(status)}'>"
                f"regression verdict: <strong>{_html.escape(status)}</strong>"
                "</p>"
            )
        if not count:
            body.append("<p>(no benchmark entries yet)</p>")
            return html_page(title, "\n".join(body))
        builder = TableBuilder(fmt="html")
        columns = [
            {"header": "entry", "key": "index", "align": "right"},
            {"header": "git SHA", "key": "git_sha",
             "format": lambda v: str(v)[:12]},
            {"header": "req/s", "key": "requests_per_second",
             "format": _fmt_rps, "align": "right"},
            {"header": "median (ms)", "key": "median_seconds",
             "format": _fmt_ms, "align": "right"},
            {"header": "CI low (ms)", "key": "ci_low_seconds",
             "format": _fmt_ms, "align": "right"},
            {"header": "CI high (ms)", "key": "ci_high_seconds",
             "format": _fmt_ms, "align": "right"},
        ]
        for block in self.data["series"]:
            name = _html.escape(block["name"])
            points = block["points"]
            body.append(f"<h2>{name}</h2>")
            body.append(
                svg_trend(
                    [p["requests_per_second"] for p in points],
                    low=[p["rps_low"] for p in points],
                    high=[p["rps_high"] for p in points],
                )
            )
            body.append(builder.render(points, columns=columns))
        return html_page(title, "\n".join(body))


def _fmt_rps(value: Optional[float]) -> str:
    """Fixed-format throughput: deterministic, no locale, no drift."""
    return "-" if value is None else f"{value:.0f}"


def _fmt_ms(value: Optional[float]) -> str:
    """Seconds rendered as fixed-decimal milliseconds."""
    return "-" if value is None else f"{value * 1e3:.3f}"


#: Shared stylesheet for every generated page (trajectory + dashboard).
PAGE_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1, h2 { font-weight: 600; }
code, pre { font-family: ui-monospace, 'SFMono-Regular', Menlo, monospace; }
pre { background: #f6f6f8; padding: 0.8rem; overflow-x: auto; }
.meta { color: #555; }
.verdict { padding: 0.4rem 0.6rem; border-radius: 4px; display: inline-block; }
.verdict-ok { background: #e4f3e6; }
.verdict-timing-regression { background: #fdecea; }
.verdict-probe-drift { background: #fdecea; font-weight: 600; }
table.report-table { border-collapse: collapse; margin: 0.8rem 0; }
table.report-table th, table.report-table td
  { border: 1px solid #d4d4dc; padding: 0.25rem 0.6rem; }
table.report-table th { background: #f0f0f4; }
svg.trend { display: block; margin: 0.4rem 0; }
"""


def html_page(title: str, body: str) -> str:
    """Wrap ``body`` in the self-contained page skeleton."""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f"<title>{_html.escape(title)}</title>\n"
        f"<style>{PAGE_CSS}</style>\n"
        "</head>\n<body>\n"
        f"{body}\n"
        "</body>\n</html>\n"
    )


def svg_trend(
    values: List[Optional[float]],
    low: Optional[List[Optional[float]]] = None,
    high: Optional[List[Optional[float]]] = None,
    width: int = 560,
    height: int = 80,
) -> str:
    """An inline-SVG trend line with an optional confidence band.

    Pure stdlib string assembly — no plotting dependency — and
    deterministic for identical inputs.
    """
    present = [v for v in values if v is not None]
    band = [
        v
        for bounds in (low or [], high or [])
        for v in bounds
        if v is not None
    ]
    if not present:
        return ""
    lo = min(present + band)
    hi = max(present + band)
    span = (hi - lo) or 1.0
    pad = 4

    def x(index: int) -> float:
        if len(values) == 1:
            return width / 2
        return pad + index * (width - 2 * pad) / (len(values) - 1)

    def y(value: float) -> float:
        return height - pad - (value - lo) / span * (height - 2 * pad)

    def path(points: List["tuple[int, float]"]) -> str:
        return " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in points)

    parts = [
        f'<svg class="trend" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        'xmlns="http://www.w3.org/2000/svg">'
    ]
    if low and high:
        upper = [(i, v) for i, v in enumerate(high) if v is not None]
        lower = [(i, v) for i, v in enumerate(low) if v is not None]
        if upper and lower:
            ring = path(upper) + " " + path(list(reversed(lower)))
            parts.append(
                f'<polygon points="{ring}" fill="#cdd9f0" stroke="none"/>'
            )
    line = [(i, v) for i, v in enumerate(values) if v is not None]
    parts.append(
        f'<polyline points="{path(line)}" fill="none" '
        'stroke="#3558a8" stroke-width="1.5"/>'
    )
    for i, v in line:
        parts.append(
            f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="2" fill="#3558a8"/>'
        )
    parts.append("</svg>")
    return "".join(parts)
