"""Board-level tag-memory cost/timing model (paper Table 2).

Models the tag memory and comparison logic of a cache holding one
million 24-bit tags, implemented with dynamic or static RAM chips in
hybrid packages, for four designs: direct-mapped, and 4-way
set-associative under the traditional, MRU, and partial-compare
implementations.
"""

from repro.hardware.chips import ChipSpec, DRAM_CHIPS, SRAM_CHIPS
from repro.hardware.costmodel import (
    ImplementationCost,
    TimingExpression,
    build_design,
    table2_designs,
)
from repro.hardware.effective import (
    EffectivePoint,
    crossover_miss_penalty_ns,
    effective_access_ns,
    tag_path_ns,
)
from repro.hardware.interconnect import (
    BusScenario,
    contention_gain,
    offered_utilization,
    queued_penalty_ns,
)

__all__ = [
    "BusScenario",
    "ChipSpec",
    "DRAM_CHIPS",
    "EffectivePoint",
    "ImplementationCost",
    "SRAM_CHIPS",
    "TimingExpression",
    "build_design",
    "contention_gain",
    "crossover_miss_penalty_ns",
    "effective_access_ns",
    "offered_utilization",
    "queued_penalty_ns",
    "table2_designs",
    "tag_path_ns",
]
