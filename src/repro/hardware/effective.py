"""Effective access time and the associativity crossover (paper §1,
Figure 3 caption).

The paper's argument for the low-cost serial implementations runs:
they are 2x+ slower per lookup than the traditional implementation,
but "lower effective access times may nevertheless result,
particularly as miss latencies are increased, since higher
associativity results in lower miss ratios". This module makes the
argument computable:

    effective(design) = tag_path_ns(design, probes)
                        + local_miss_ratio * miss_penalty_ns

and finds the *crossover miss penalty* beyond which a serial
set-associative level-two cache beats a direct-mapped one of the same
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.costmodel import build_design


def tag_path_ns(design: str, ram_family: str, average_probes: float) -> float:
    """Average tag-path access time at a measured probe count.

    For the fixed-time designs (direct, traditional) the probe count is
    ignored; for the serial designs every probe after the first memory
    access rides the per-probe (page-mode) term.
    """
    if average_probes < 0:
        raise ConfigurationError("average_probes must be non-negative")
    cost = build_design(design, ram_family)
    if design in ("direct", "traditional"):
        return cost.access_time.evaluate()
    return cost.access_time.evaluate(max(0.0, average_probes - 1.0))


@dataclass(frozen=True)
class EffectivePoint:
    """Effective access time of one design at one miss penalty."""

    design: str
    ram_family: str
    average_probes: float
    local_miss_ratio: float
    miss_penalty_ns: float

    @property
    def tag_path(self) -> float:
        """Tag-path nanoseconds at the measured probe count."""
        return tag_path_ns(self.design, self.ram_family, self.average_probes)

    @property
    def effective_ns(self) -> float:
        """Tag path plus expected miss-service time."""
        return self.tag_path + self.local_miss_ratio * self.miss_penalty_ns


def effective_access_ns(
    design: str,
    ram_family: str,
    average_probes: float,
    local_miss_ratio: float,
    miss_penalty_ns: float,
) -> float:
    """Effective access time: tag path plus expected miss service."""
    if not 0.0 <= local_miss_ratio <= 1.0:
        raise ConfigurationError("local_miss_ratio must be in [0, 1]")
    if miss_penalty_ns < 0:
        raise ConfigurationError("miss_penalty_ns must be non-negative")
    return EffectivePoint(
        design, ram_family, average_probes, local_miss_ratio, miss_penalty_ns
    ).effective_ns


def crossover_miss_penalty_ns(
    serial_design: str,
    ram_family: str,
    serial_probes: float,
    serial_miss_ratio: float,
    direct_miss_ratio: float,
) -> float:
    """Miss penalty at which the serial design beats direct-mapped.

    Solves ``tag_serial + m_a * P = tag_direct + m_1 * P`` for ``P``.
    Returns ``inf`` when the serial design never catches up (its miss
    ratio is not lower), and ``0`` when it is already faster at zero
    penalty.
    """
    for ratio in (serial_miss_ratio, direct_miss_ratio):
        if not 0.0 <= ratio <= 1.0:
            raise ConfigurationError("miss ratios must be in [0, 1]")
    serial_tag = tag_path_ns(serial_design, ram_family, serial_probes)
    direct_tag = tag_path_ns("direct", ram_family, 1.0)
    tag_gap = serial_tag - direct_tag
    ratio_gain = direct_miss_ratio - serial_miss_ratio
    if tag_gap <= 0:
        return 0.0
    if ratio_gain <= 0:
        return float("inf")
    return tag_gap / ratio_gain
