"""Shared-bus contention model (paper §1).

The paper's multiprocessor motivation: "Bus miss times with low
utilizations may be small, but delays due to contention among
processors can become large and are sensitive to cache miss ratio."
This module provides the standard open-queue (M/M/1-style) model of
that sensitivity: every level-two miss occupies the shared bus for a
service time, queueing inflates the effective miss penalty by
``1 / (1 - utilization)``, and utilization itself is proportional to
the miss ratio — so lowering the miss ratio with associativity pays
twice (fewer misses *and* a cheaper bus trip for each one).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def offered_utilization(
    processors: int,
    accesses_per_us: float,
    miss_ratio: float,
    service_ns: float,
) -> float:
    """Bus utilization offered by ``processors`` identical nodes.

    ``accesses_per_us`` is each node's L2 access rate; each access
    misses with ``miss_ratio`` and then occupies the bus for
    ``service_ns``.
    """
    if processors <= 0:
        raise ConfigurationError("processors must be positive")
    if accesses_per_us < 0 or service_ns < 0:
        raise ConfigurationError("rates and times must be non-negative")
    if not 0.0 <= miss_ratio <= 1.0:
        raise ConfigurationError("miss_ratio must be in [0, 1]")
    misses_per_ns = processors * accesses_per_us * miss_ratio / 1000.0
    return misses_per_ns * service_ns


def queued_penalty_ns(
    service_ns: float,
    utilization: float,
    memory_ns: float = 0.0,
) -> float:
    """Effective miss penalty under bus contention.

    ``service_ns / (1 - utilization)`` (queueing wait plus the
    transfer itself) plus any fixed memory latency. Raises when the
    bus is saturated (utilization >= 1): there is no steady state.
    """
    if service_ns < 0 or memory_ns < 0:
        raise ConfigurationError("times must be non-negative")
    if utilization < 0:
        raise ConfigurationError("utilization must be non-negative")
    if utilization >= 1.0:
        raise ConfigurationError(
            f"bus saturated (utilization {utilization:.3f} >= 1); "
            "no steady-state penalty exists"
        )
    return memory_ns + service_ns / (1.0 - utilization)


@dataclass(frozen=True)
class BusScenario:
    """One multiprocessor operating point for penalty studies."""

    processors: int
    accesses_per_us: float
    service_ns: float
    memory_ns: float = 0.0

    def penalty_ns(self, miss_ratio: float) -> float:
        """Contended miss penalty at the given per-node miss ratio."""
        rho = offered_utilization(
            self.processors, self.accesses_per_us, miss_ratio, self.service_ns
        )
        return queued_penalty_ns(self.service_ns, rho, self.memory_ns)

    def saturation_miss_ratio(self) -> float:
        """Miss ratio at which the bus saturates (utilization = 1).

        Returns a value above 1.0 when even 100% misses cannot
        saturate this bus.
        """
        load_per_miss_ratio = offered_utilization(
            self.processors, self.accesses_per_us, 1.0, self.service_ns
        )
        if load_per_miss_ratio == 0:
            return float("inf")
        return 1.0 / load_per_miss_ratio


def contention_gain(
    scenario: BusScenario, miss_ratio_direct: float, miss_ratio_assoc: float
) -> float:
    """How much contention amplifies associativity's advantage.

    Returns the ratio of expected miss-service time per access
    (``miss_ratio * penalty``) between the direct-mapped and the
    associative cache, under contention. Without queueing this ratio
    would equal the plain miss-ratio ratio; contention makes it
    strictly larger because the associative node also sees a less
    loaded bus.
    """
    direct = miss_ratio_direct * scenario.penalty_ns(miss_ratio_direct)
    assoc = miss_ratio_assoc * scenario.penalty_ns(miss_ratio_assoc)
    if assoc == 0:
        return float("inf")
    return direct / assoc
