"""Implementation cost/timing model that regenerates Table 2.

The model composes three documented ingredients:

1. **Memory packages** — derived from the chip catalog and the design's
   tag-memory geometry (1M 24-bit tags total; the traditional 4-way
   design needs an ``a x t = 96``-bit-wide memory of 256K sets, the
   serial designs a 24-bit-wide memory of 1M entries).
2. **Support packages** — comparators, address buffers, multiplexors,
   and semi-custom control in hybrid packages. Board-level packaging
   is a design choice, not derivable from first principles, so these
   counts are taken from the paper's trial designs and recorded as
   explicit constants.
3. **Timing** — access time = drive/setup overhead + first memory
   access (+ compare); serial designs add a per-probe term that uses
   DRAM page mode where available. The per-design overhead constants
   are calibrated so the model reproduces the paper's timing rows
   exactly; they are all plausible 1980s buffer/comparator delays.

Serial-design timings are symbolic in the number of probes
(:class:`TimingExpression`), matching the paper's ``150+50x`` style,
and can be evaluated at a concrete expected probe count from the
trace-driven results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hardware.chips import DRAM_CHIPS, SRAM_CHIPS, ChipSpec

#: Total stored tags in the trial design (1 million), each 24 bits.
TOTAL_TAGS = 1 << 20
TAG_BITS = 24
ASSOCIATIVITY = 4

#: Designs evaluated in Table 2.
DESIGNS = ("direct", "traditional", "mru", "partial")
RAM_FAMILIES = ("dram", "sram")


@dataclass(frozen=True)
class TimingExpression:
    """``base + per_probe * <variable>`` nanoseconds.

    ``variable`` is the paper's symbol: ``x`` for the expected probes
    after reading MRU information, ``y`` for step-two probes of the
    partial scheme, ``x+u`` for cycles including an MRU update. A
    fixed-time design has ``per_probe == 0``.
    """

    base_ns: float
    per_probe_ns: float = 0.0
    variable: str = ""

    def evaluate(self, probes: float = 0.0) -> float:
        """Concrete nanoseconds at ``probes`` occurrences of the variable."""
        if probes < 0:
            raise ConfigurationError("probe counts are non-negative")
        return self.base_ns + self.per_probe_ns * probes

    def __str__(self) -> str:
        if self.per_probe_ns == 0:
            return f"{self.base_ns:g}"
        variable = self.variable
        if len(variable) > 1:
            variable = f"({variable})"
        return f"{self.base_ns:g}+{self.per_probe_ns:g}{variable}"


@dataclass(frozen=True)
class ImplementationCost:
    """One column of Table 2's bottom half."""

    design: str
    ram_family: str
    chip: ChipSpec
    memory_packages: int
    support_packages: int
    access_time: TimingExpression
    cycle_time: TimingExpression

    @property
    def total_packages(self) -> int:
        """Board packages: memory chips plus support logic."""
        return self.memory_packages + self.support_packages


#: Support-package counts from the paper's trial designs (comparators,
#: buffers, muxes, semi-custom control in hybrid packages).
_SUPPORT_PACKAGES: Dict[Tuple[str, str], int] = {
    ("direct", "dram"): 15,
    ("traditional", "dram"): 30,
    ("mru", "dram"): 19,
    ("partial", "dram"): 18,
    ("direct", "sram"): 14,
    ("traditional", "sram"): 31,
    ("mru", "sram"): 19,
    ("partial", "sram"): 18,
}

#: Chip chosen for each design (paper's "Size (bits)" row). The
#: traditional design needs a wide, shallow memory; the others use the
#: deep, narrow chips a direct-mapped cache would use.
_CHIP_CHOICE: Dict[Tuple[str, str], str] = {
    ("direct", "dram"): "1Mx8",
    ("traditional", "dram"): "256Kx8",
    ("mru", "dram"): "1Mx8",
    ("partial", "dram"): "1Mx8",
    ("direct", "sram"): "1Mx4",
    ("traditional", "sram"): "256Kx(16,8)",
    ("mru", "sram"): "1Mx4",
    ("partial", "sram"): "1Mx4",
}

#: Fixed overheads (address drive + compare + control), calibrated to
#: the paper's timing rows. ``probe_overhead`` is added to the chip's
#: page-mode (DRAM) or basic (SRAM) cycle for each additional probe of
#: a serial design.
_ACCESS_OVERHEAD: Dict[Tuple[str, str], float] = {
    ("direct", "dram"): 36.0,
    ("traditional", "dram"): 52.0,
    ("mru", "dram"): 50.0,
    ("partial", "dram"): 50.0,
    ("direct", "sram"): 21.0,
    ("traditional", "sram"): 44.0,
    ("mru", "sram"): 25.0,
    ("partial", "sram"): 25.0,
}
_CYCLE_OVERHEAD: Dict[Tuple[str, str], float] = {
    ("direct", "dram"): 40.0,
    ("traditional", "dram"): 30.0,
    ("mru", "dram"): 60.0,
    ("partial", "dram"): 60.0,
    ("direct", "sram"): 45.0,
    ("traditional", "sram"): 60.0,
    ("mru", "sram"): 35.0,
    ("partial", "sram"): 35.0,
}
_PROBE_OVERHEAD_DRAM = 15.0
_PROBE_OVERHEAD_SRAM = 15.0

_PROBE_VARIABLE = {"mru": "x", "partial": "y"}
_CYCLE_VARIABLE = {"mru": "x+u", "partial": "y"}


def _memory_geometry(design: str) -> Tuple[int, int]:
    """(entries, width_bits) of the tag memory for ``design``."""
    if design == "traditional":
        # All `a` tags of a set read in parallel: a*t bits wide,
        # one entry per set.
        return TOTAL_TAGS // ASSOCIATIVITY, TAG_BITS * ASSOCIATIVITY
    # Direct-mapped and the serial schemes read one t-bit tag at a
    # time from a deep, narrow memory.
    return TOTAL_TAGS, TAG_BITS


def build_design(design: str, ram_family: str) -> ImplementationCost:
    """Cost/timing for one (design, RAM family) cell of Table 2."""
    if design not in DESIGNS:
        raise ConfigurationError(
            f"unknown design {design!r}; choose from {DESIGNS}"
        )
    if ram_family not in RAM_FAMILIES:
        raise ConfigurationError(
            f"unknown RAM family {ram_family!r}; choose from {RAM_FAMILIES}"
        )
    catalog = DRAM_CHIPS if ram_family == "dram" else SRAM_CHIPS
    chip = catalog[_CHIP_CHOICE[(design, ram_family)]]
    entries, width = _memory_geometry(design)
    memory_packages = chip.chips_for(entries, width)
    support = _SUPPORT_PACKAGES[(design, ram_family)]

    access_overhead = _ACCESS_OVERHEAD[(design, ram_family)]
    cycle_overhead = _CYCLE_OVERHEAD[(design, ram_family)]
    if design in ("mru", "partial"):
        if chip.has_page_mode:
            probe_ns = chip.page_cycle_ns + _PROBE_OVERHEAD_DRAM
        else:
            probe_ns = chip.cycle_ns + _PROBE_OVERHEAD_SRAM
        access = TimingExpression(
            base_ns=access_overhead + chip.access_ns,
            per_probe_ns=probe_ns,
            variable=_PROBE_VARIABLE[design],
        )
        cycle = TimingExpression(
            base_ns=cycle_overhead + chip.cycle_ns,
            per_probe_ns=probe_ns,
            variable=_CYCLE_VARIABLE[design],
        )
    else:
        access = TimingExpression(base_ns=access_overhead + chip.access_ns)
        cycle = TimingExpression(base_ns=cycle_overhead + chip.cycle_ns)

    return ImplementationCost(
        design=design,
        ram_family=ram_family,
        chip=chip,
        memory_packages=memory_packages,
        support_packages=support,
        access_time=access,
        cycle_time=cycle,
    )


def table2_designs() -> Dict[Tuple[str, str], ImplementationCost]:
    """All eight (design, RAM family) cells of Table 2."""
    return {
        (design, family): build_design(design, family)
        for family in RAM_FAMILIES
        for design in DESIGNS
    }
