"""Memory-chip catalog for the Table 2 cost model.

Chip timings come straight from the paper's "Memory Packages" rows.
Page-mode dynamic RAMs serve repeated probes to the same row (cache
set) in less than half the initial access time — the property the
serial MRU and partial-compare implementations exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChipSpec:
    """One memory-chip type.

    Attributes:
        name: Catalog name, e.g. ``"1Mx8 DRAM"``.
        words: Addressable words per chip.
        bits: Output width. A tuple (e.g. ``(16, 8)``) models the
            paper's mixed-width static-RAM bank.
        access_ns / cycle_ns: Basic (first-probe) timings.
        page_access_ns / page_cycle_ns: Page-mode timings for
            subsequent probes to the same row, or ``None`` if the chip
            has no page mode (static RAMs are fast every cycle).
    """

    name: str
    words: int
    bits: Tuple[int, ...]
    access_ns: float
    cycle_ns: float
    page_access_ns: Optional[float] = None
    page_cycle_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ConfigurationError("chip must have at least one word")
        if not self.bits or any(b <= 0 for b in self.bits):
            raise ConfigurationError("chip output width must be positive")
        if self.access_ns <= 0 or self.cycle_ns < self.access_ns:
            raise ConfigurationError(
                "cycle time must be at least the access time"
            )

    @property
    def total_bits_wide(self) -> int:
        """Combined output width of one package."""
        return sum(self.bits)

    @property
    def has_page_mode(self) -> bool:
        """Whether repeated same-row probes get the fast page timing."""
        return self.page_access_ns is not None

    def chips_for(self, entries: int, width_bits: int) -> int:
        """Packages needed for ``entries`` words of ``width_bits`` each.

        Width is covered greedily with the widest available bank
        first (a ``(16, 8)`` part contributes 16-bit slices until the
        remainder fits in 8); depth multiplies by the number of
        chip-word rows.
        """
        if entries <= 0 or width_bits <= 0:
            raise ConfigurationError("entries and width must be positive")
        banks = sorted(self.bits, reverse=True)
        remaining = width_bits
        per_row = 0
        for index, bank in enumerate(banks):
            if remaining <= 0:
                break
            if index == len(banks) - 1:
                per_row += -(-remaining // bank)
                remaining = 0
            else:
                take = remaining // bank
                per_row += take
                remaining -= take * bank
        rows = -(-entries // self.words)
        return per_row * rows


#: Dynamic RAM chips of the paper's Table 2 (top half, left).
DRAM_CHIPS = {
    "1Mx8": ChipSpec(
        name="1Mx8 DRAM",
        words=1 << 20,
        bits=(8,),
        access_ns=100.0,
        cycle_ns=190.0,
        page_access_ns=35.0,
        page_cycle_ns=35.0,
    ),
    "256Kx8": ChipSpec(
        name="256Kx8 DRAM",
        words=1 << 18,
        bits=(8,),
        access_ns=80.0,
        cycle_ns=160.0,
    ),
}

#: Static RAM chips of the paper's Table 2 (top half, right).
SRAM_CHIPS = {
    "1Mx4": ChipSpec(
        name="1Mx4 SRAM",
        words=1 << 20,
        bits=(4,),
        access_ns=40.0,
        cycle_ns=40.0,
    ),
    "256Kx(16,8)": ChipSpec(
        name="256Kx(16,8) SRAM",
        words=1 << 18,
        bits=(16, 8),
        access_ns=40.0,
        cycle_ns=40.0,
    ),
}
