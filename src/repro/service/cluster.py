"""The sharded cluster front door behind ``repro-cluster``.

:class:`ClusterService` turns N independent ``repro-serve`` shards
into one service the paper's cost argument can be *measured* against
at scale:

- **placement** — submissions route by consistent hashing on the
  job's ``config_hash`` (:mod:`repro.service.ring`), so a given sweep
  configuration always lands on the same shard: its crash-safe
  checkpoint and its mmap-able ``RPM2`` stream artifacts stay
  shard-local, and resubmission *resumes* instead of recomputing;
- **failure lifecycle** — every shard sits behind its own
  :class:`~repro.service.breaker.CircuitBreaker`: ``closed`` is
  healthy, ``open`` is ejected from routing, and the half-open rejoin
  is a real probe through the breaker machinery, not a timer reset. A
  background prober heartbeats ``/healthz``, detects process death,
  and restarts dead shards with seeded, jittered exponential backoff;
- **failover** — jobs in flight on a lost shard are *re-admitted*
  onto the ring successor. Because every shard shares one spool
  directory and checkpoints are keyed by ``config_hash``, the
  successor resumes the dead shard's completed points from its
  fsync'd checkpoint — the advisory lock's PID+start-time staleness
  check arbitrates the takeover — and the final results are
  bit-identical to an undisturbed run;
- **aggregation** — ``/metrics``, ``/jobs``, and the dashboards
  merge every shard's state through the mergeable
  :class:`~repro.obs.metrics.MetricsRegistry` (integer quantile-
  histogram buckets add exactly, so cluster-wide p99s are honest);
- **reads** — job-status GETs are idempotent, so they are *hedged*:
  a short-deadline first attempt, then a full-deadline retry against
  the submission's *current* shard (which may have changed under
  failover between the attempts);
- **drain** — cluster shutdown is two-phase: stop admitting (429),
  fan SIGTERM out to every shard, then wait for each shard's own
  drain to flush its checkpoints before reporting clean.

The front door is control-plane only — it never runs simulation work
itself — so it stays responsive while shards die, restart, and churn
underneath it.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import (
    AdmissionError,
    CircuitOpenError,
    QueueFullError,
    ReproError,
    ServiceError,
    ShardUnavailableError,
)
from repro.obs.context import new_trace
from repro.obs.log import log
from repro.obs.manifest import RunManifest, config_hash
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.spans import Tracer, get_tracer
from repro.obs.trace_report import build_span_tree
from repro.report.dashboard import (
    build_dashboard_payload,
    render_dashboard_html,
    render_dashboard_text,
)
from repro.report.trajectory import TrajectoryReport
from repro.service.admission import parse_points
from repro.service.breaker import CLOSED, OPEN, CircuitBreaker
from repro.service.ring import ConsistentHashRing
from repro.service.shard import ShardHandle

#: Terminal shard-job states — a submission in one of these is never
#: re-admitted on failover.
TERMINAL_STATES = frozenset({"done", "partial", "failed", "checkpointed"})


class Submission:
    """The router's record of one accepted job: payload + placement.

    The payload is retained verbatim because it *is* the failover
    unit: re-admission resubmits it to the ring successor, and the
    shard-side checkpoint (keyed by the same ``config_hash``) turns
    that resubmission into a resume.
    """

    def __init__(
        self, cluster_id: str, payload: Dict[str, Any], key: str
    ) -> None:
        self.id = cluster_id
        self.payload = payload
        self.config_hash = key
        self.shard: Optional[str] = None
        self.shard_job_id: Optional[str] = None
        self.status = "routed"
        self.readmissions = 0
        self.shard_history: List[str] = []
        self.context = new_trace()

    @property
    def terminal(self) -> bool:
        """Whether the last observed shard status is terminal."""
        return self.status in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """JSON-representable routing record for the HTTP API."""
        return {
            "id": self.id,
            "config_hash": self.config_hash,
            "shard": self.shard,
            "shard_job_id": self.shard_job_id,
            "status": self.status,
            "readmissions": self.readmissions,
            "shard_history": list(self.shard_history),
            "trace_id": self.context.trace_id,
        }


class ClusterService:
    """Front-door router and supervisor over N shard handles.

    Args:
        shards: The shard handles (started by :meth:`start`).
        cluster_dir: Directory for the cluster manifest and (for
            process shards) port/log files.
        metrics: Registry for the router's ``cluster.*`` instruments.
        tracer: Tracer receiving the per-submission routing spans
            (``route`` / ``shard_failover`` / ``readmit``).
        probe_interval: Seconds between health-probe sweeps.
        probe_timeout: Per-probe HTTP deadline.
        failure_threshold: Consecutive probe/submit failures that
            eject a shard (open its breaker).
        breaker_reset: Seconds an ejected shard waits before its
            half-open rejoin probe.
        restart: Whether dead shard processes are restarted.
        restart_backoff: Base seconds of the restart backoff
            (doubles per restart of the same shard, jittered).
        restart_backoff_cap: Ceiling on the backoff, pre-jitter.
        jitter_seed: Seed for the restart-jitter PRNG (deterministic
            by default, like every other seed in this repo).
        request_timeout: Full deadline for proxied shard requests.
        hedge_timeout: Short first-attempt deadline for hedged
            idempotent status reads.
        bench_history_path: Trajectory file for the dashboards.
    """

    def __init__(
        self,
        shards: List[ShardHandle],
        cluster_dir="repro-cluster",
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        probe_interval: float = 0.25,
        probe_timeout: float = 2.0,
        failure_threshold: int = 2,
        breaker_reset: float = 2.0,
        restart: bool = True,
        restart_backoff: float = 0.5,
        restart_backoff_cap: float = 10.0,
        jitter_seed: int = 1989,
        request_timeout: float = 30.0,
        hedge_timeout: float = 2.0,
        bench_history_path=None,
    ) -> None:
        if not shards:
            raise ServiceError("a cluster needs at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate shard names: {names}")
        self.cluster_dir = Path(cluster_dir)
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.shards: Dict[str, ShardHandle] = {s.name: s for s in shards}
        self.ring = ConsistentHashRing(names)
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                f"shard.{name}",
                failure_threshold=failure_threshold,
                reset_timeout=breaker_reset,
                metrics=self.metrics,
            )
            for name in names
        }
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.restart_enabled = restart
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        self.request_timeout = request_timeout
        self.hedge_timeout = hedge_timeout
        self.bench_history_path = (
            Path(bench_history_path) if bench_history_path is not None else None
        )
        import random

        self._jitter_rng = random.Random(jitter_seed)
        self._restart_due: Dict[str, float] = {}
        self._death_handled: Dict[str, bool] = {}
        self._submissions: Dict[str, Submission] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._draining = threading.Event()
        self._stop_prober = threading.Event()
        self._prober: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle

    def start(self, ready_timeout: float = 30.0) -> None:
        """Start every shard, wait for readiness, start the prober."""
        self.cluster_dir.mkdir(parents=True, exist_ok=True)
        for shard in self.shards.values():
            shard.start()
        for shard in self.shards.values():
            if hasattr(shard, "wait_ready"):
                shard.wait_ready(timeout=ready_timeout)
        self._prober = threading.Thread(
            target=self._probe_loop, name="repro-cluster-prober", daemon=True
        )
        self._prober.start()
        log.info(
            f"cluster started: {len(self.shards)} shard(s) on the ring"
        )

    def drain(self, grace: float = 30.0) -> bool:
        """Two-phase cluster drain; ``True`` iff every shard drained.

        Phase one stops admission (submissions get 429) and fans
        SIGTERM out to every live shard — each shard runs its *own*
        two-phase drain, flushing in-flight jobs to their fsync'd
        checkpoints. Phase two waits up to ``grace`` seconds for all
        of them; stragglers are killed (their checkpoints are durable
        per point, so nothing complete is lost) and the drain reports
        unclean. The cluster manifest is written either way.
        """
        self._draining.set()
        self._stop_prober.set()
        if self._prober is not None:
            self._prober.join(timeout=max(2.0, self.probe_interval * 4))
        for shard in self.shards.values():
            if shard.is_alive():
                shard.terminate()
        deadline = time.monotonic() + grace
        clean = True
        for shard in self.shards.values():
            if not shard.join(max(0.0, deadline - time.monotonic())):
                log.warning(
                    "cluster.shard_drain_timeout", shard=shard.name
                )
                shard.kill()
                shard.join(5.0)
                clean = False
        self.write_obs()
        log.info(
            f"cluster drained ({'clean' if clean else 'killed stragglers'}): "
            f"{len(self._submissions)} submission(s) routed"
        )
        return clean

    @property
    def draining(self) -> bool:
        """Whether a cluster drain has started."""
        return self._draining.is_set()

    def ready(self) -> "tuple[bool, str]":
        """Cluster readiness: at least one routable shard, not draining."""
        if self.draining:
            return False, "draining"
        routable = self.routable_shards()
        if not routable:
            return False, "no routable shards"
        return True, f"{len(routable)}/{len(self.shards)} shards routable"

    def routable_shards(self) -> List[str]:
        """Shards that are alive with a non-open breaker, sorted."""
        names = [
            name
            for name, shard in self.shards.items()
            if shard.is_alive()
            and shard.address is not None
            and self.breakers[name].state != OPEN
        ]
        self.metrics.gauge("cluster.shards.routable").set(len(names))
        return sorted(names)

    # ------------------------------------------------------------------
    # submission path

    @staticmethod
    def routing_key(payload: Dict[str, Any]) -> str:
        """The ``config_hash`` a submission routes (and checkpoints) by.

        Computed exactly like shard-side admission computes it —
        parse, canonicalize, content-address — so the router's ring
        key and the shard's checkpoint identity are the same value.

        Raises:
            AdmissionError: Malformed payload (mapped to HTTP 400 at
                the door, without bothering a shard).
        """
        if not isinstance(payload, dict):
            raise AdmissionError("submission must be a JSON object")
        points = parse_points(payload.get("points"))
        return config_hash([asdict(point) for point in points])

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Route one submission along the ring's preference order.

        The owner shard gets the job; ejected, dead, and unreachable
        shards are skipped to the ring successor (each skip recorded
        against the shard's breaker). A shard's 429 is *backpressure,
        not failure* — it propagates to the client (with the shard's
        jittered ``Retry-After``) instead of overflowing onto the
        next shard and breaking checkpoint affinity.

        Raises:
            AdmissionError: Malformed payload (HTTP 400).
            QueueFullError: Draining, or the owning shard shed (429).
            ShardUnavailableError: No routable shard accepted (503).
        """
        if self.draining:
            raise QueueFullError(
                "cluster is draining; no new jobs are admitted"
            )
        key = self.routing_key(payload)
        submission = self._register(payload, key)
        started = time.perf_counter()
        attempts: List[str] = []
        for name in self.ring.preference_order(key):
            shard = self.shards[name]
            if not shard.is_alive() or shard.address is None:
                attempts.append(f"{name}: dead")
                continue
            breaker = self.breakers[name]
            try:
                breaker.allow()
            except CircuitOpenError:
                attempts.append(f"{name}: ejected")
                continue
            try:
                status, body, _ = shard.request(
                    "POST",
                    "/jobs",
                    payload=payload,
                    timeout=self.request_timeout,
                )
            except ShardUnavailableError as exc:
                breaker.record_failure(exc)
                self.metrics.counter("cluster.submit.unreachable").inc()
                attempts.append(f"{name}: unreachable")
                continue
            breaker.record_success()
            if status == 202:
                self._place(submission, name, body)
                self.tracer.record_span(
                    "route",
                    time.perf_counter() - started,
                    attrs={
                        "job": submission.id,
                        "shard": name,
                        "config_hash": key,
                    },
                    trace_id=submission.context.trace_id,
                    span_id=submission.context.span_id,
                )
                self.metrics.counter("cluster.submit.routed").inc()
                self.metrics.quantile_histogram(
                    "latency.route_seconds"
                ).observe(time.perf_counter() - started)
                record = submission.to_dict()
                record["shard_record"] = body
                return record
            self._unregister(submission.id)
            if status == 429:
                self.metrics.counter("cluster.submit.shed").inc()
                raise QueueFullError(
                    f"shard {name!r} shed the job: "
                    f"{(body or {}).get('error')}",
                    retry_after=float((body or {}).get("retry_after", 1.0)),
                )
            if status == 400:
                self.metrics.counter("cluster.submit.rejected").inc()
                raise AdmissionError(
                    f"shard {name!r} rejected the job: "
                    f"{(body or {}).get('error')}"
                )
            # 5xx: the shard answered but cannot take work (its own
            # breaker open, draining, internal error). Try the ring
            # successor — availability over strict affinity; the
            # checkpoint is in the shared spool either way.
            submission = self._register(payload, key, reuse=submission)
            attempts.append(f"{name}: http {status}")
        self._unregister(submission.id)
        self.metrics.counter("cluster.submit.unroutable").inc()
        raise ShardUnavailableError(
            "no shard could accept the job: " + "; ".join(attempts)
        )

    def _register(
        self,
        payload: Dict[str, Any],
        key: str,
        reuse: Optional[Submission] = None,
    ) -> Submission:
        if reuse is not None:
            with self._lock:
                self._submissions[reuse.id] = reuse
            return reuse
        with self._lock:
            self._counter += 1
            cluster_id = f"cjob-{self._counter:06d}-{uuid.uuid4().hex[:8]}"
            submission = Submission(cluster_id, payload, key)
            self._submissions[cluster_id] = submission
        return submission

    def _unregister(self, cluster_id: str) -> None:
        with self._lock:
            self._submissions.pop(cluster_id, None)

    def _place(
        self, submission: Submission, shard: str, body: Dict[str, Any]
    ) -> None:
        with self._lock:
            submission.shard = shard
            submission.shard_job_id = (body or {}).get("id")
            submission.status = (body or {}).get("status", "queued")
            submission.shard_history.append(shard)

    # ------------------------------------------------------------------
    # reads (hedged)

    def job(self, cluster_id: str) -> Optional[Dict[str, Any]]:
        """The routed job's merged record, or ``None`` if unknown.

        A hedged idempotent read: a short-deadline attempt against the
        submission's current shard, then — because failover may move
        the job between attempts — a re-resolved, full-deadline retry.
        If every attempt fails the router's own last-known record is
        returned (stale-but-honest: ``shard_reachable`` is ``False``).
        """
        with self._lock:
            submission = self._submissions.get(cluster_id)
        if submission is None:
            return None
        record = submission.to_dict()
        for timeout in (self.hedge_timeout, self.request_timeout):
            with self._lock:
                shard_name = submission.shard
                shard_job = submission.shard_job_id
            shard = self.shards.get(shard_name) if shard_name else None
            if shard is None or not shard.is_alive():
                continue
            try:
                status, body, _ = shard.request(
                    "GET", f"/jobs/{shard_job}", timeout=timeout
                )
            except ShardUnavailableError:
                self.metrics.counter("cluster.reads.hedged").inc()
                continue
            if status == 200 and isinstance(body, dict):
                with self._lock:
                    submission.status = body.get("status", submission.status)
                record = submission.to_dict()
                record["shard_record"] = body
                record["shard_reachable"] = True
                return record
        record["shard_record"] = None
        record["shard_reachable"] = False
        return record

    def job_trace(self, cluster_id: str) -> Optional[Dict[str, Any]]:
        """The cluster-level flight record of one submission.

        The router's own spans (``route``, ``shard_failover``,
        ``readmit``) assembled as a causal tree, plus the current
        shard's job trace fetched live — so one document shows the
        whole story: where the job went, when its shard died, where
        it was re-admitted, and what the shard(s) did with it.
        """
        with self._lock:
            submission = self._submissions.get(cluster_id)
        if submission is None:
            return None
        records = [
            record.to_dict()
            for record in self.tracer.records_for_trace(
                submission.context.trace_id
            )
        ]
        shard_trace = None
        shard = (
            self.shards.get(submission.shard) if submission.shard else None
        )
        if shard is not None and shard.is_alive():
            try:
                status, body, _ = shard.request(
                    "GET",
                    f"/jobs/{submission.shard_job_id}/trace",
                    timeout=self.hedge_timeout,
                )
                if status == 200:
                    shard_trace = body
            except ShardUnavailableError:
                pass
        return {
            "job": cluster_id,
            "trace_id": submission.context.trace_id,
            "status": submission.status,
            "spans": len(records),
            "tree": build_span_tree(records),
            "shard": submission.shard,
            "shard_job_id": submission.shard_job_id,
            "shard_trace": shard_trace,
        }

    def jobs(self) -> List[Dict[str, Any]]:
        """Every shard's job records, shard-annotated, merged."""
        merged: List[Dict[str, Any]] = []
        for name in sorted(self.shards):
            shard = self.shards[name]
            if not shard.is_alive() or shard.address is None:
                continue
            try:
                status, body, _ = shard.request(
                    "GET", "/jobs", timeout=self.hedge_timeout
                )
            except ShardUnavailableError:
                continue
            if status != 200 or not isinstance(body, dict):
                continue
            for record in body.get("jobs", []):
                record = dict(record)
                record["shard"] = name
                merged.append(record)
        return merged

    def submissions(self) -> List[Dict[str, Any]]:
        """The router's own routing records, oldest first."""
        with self._lock:
            return [s.to_dict() for s in self._submissions.values()]

    # ------------------------------------------------------------------
    # aggregation

    def shard_states(self) -> Dict[str, Dict[str, Any]]:
        """Per-shard lifecycle rows for ``/metrics`` and the dashboard.

        Byte-stable under a fixed cluster state: every field is a
        count, a name, or a state label — never an age or a countdown.
        """
        with self._lock:
            readmitted: Dict[str, int] = {}
            for submission in self._submissions.values():
                for name in submission.shard_history[1:]:
                    readmitted[name] = readmitted.get(name, 0) + 1
        rows: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self.shards):
            shard = self.shards[name]
            breaker = self.breakers[name]
            alive = shard.is_alive()
            breaker_state = breaker.state
            if not alive:
                state = "dead"
            elif breaker_state == OPEN:
                state = "ejected"
            elif breaker_state == CLOSED:
                state = "healthy"
            else:
                state = "half_open"
            address = shard.address
            rows[name] = {
                "name": name,
                "state": state,
                "alive": alive,
                "address": (
                    f"{address[0]}:{address[1]}" if address else None
                ),
                "breaker": breaker_state,
                "restarts": getattr(shard, "restarts", 0),
                "readmitted_to": readmitted.get(name, 0),
                "queue_depth": None,
                "jobs": None,
                "execute_breaker": None,
            }
        return rows

    def status(self) -> Dict[str, Any]:
        """The aggregated operational snapshot for ``/metrics``.

        Fans a ``/metrics`` read out to every live shard and folds the
        snapshots through :meth:`MetricsRegistry.merge_snapshot` —
        counters add, quantile-histogram buckets add bit-identically —
        then decorates each shard's lifecycle row with its queue
        depth, job count, and execute-breaker state.
        """
        shards = self.shard_states()
        merged = MetricsRegistry()
        queue_depth = 0
        queue_capacity = 0
        shedding = False
        jobs_by_status: Dict[str, int] = {}
        for name, row in shards.items():
            shard = self.shards[name]
            if not row["alive"] or shard.address is None:
                continue
            try:
                status, body, _ = shard.request(
                    "GET", "/metrics", timeout=self.probe_timeout
                )
            except ShardUnavailableError:
                continue
            if status != 200 or not isinstance(body, dict):
                continue
            merged.merge_snapshot(body.get("metrics") or {})
            queue = body.get("queue") or {}
            queue_depth += queue.get("depth") or 0
            queue_capacity += queue.get("capacity") or 0
            shedding = shedding or bool(queue.get("shedding"))
            row["queue_depth"] = queue.get("depth")
            breakers = body.get("breakers") or {}
            row["execute_breaker"] = (breakers.get("execute") or {}).get(
                "state"
            )
            by_status = body.get("jobs") or {}
            row["jobs"] = sum(by_status.values())
            for state, count in by_status.items():
                jobs_by_status[state] = jobs_by_status.get(state, 0) + count
        ready, reason = self.ready()
        latency = {
            name: merged.quantile_histogram(name).summary()
            for name in (
                "latency.admission_seconds",
                "latency.queue_wait_seconds",
                "latency.execute_seconds",
                "latency.job_seconds",
            )
        }
        merged.merge(self.metrics)
        replay = {
            "counters": {
                name: merged.counter(name).value
                for name in (
                    "replay.columnar_replays",
                    "miss_stream.artifact_hits",
                    "miss_stream.artifact_misses",
                )
            },
            "batch_size": merged.histogram("replay.batch_size").to_dict(),
        }
        return {
            "ready": ready,
            "reason": reason,
            "draining": self.draining,
            "queue": {
                "depth": queue_depth,
                "capacity": queue_capacity,
                "shedding": shedding,
                "closed": self.draining,
            },
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self.breakers.items())
            },
            "jobs": jobs_by_status,
            "shards": shards,
            "replay": replay,
            "latency": latency,
            "metrics": merged.snapshot(),
        }

    def trajectory(self) -> Optional[TrajectoryReport]:
        """The bench trajectory report, or ``None`` if unconfigured."""
        if self.bench_history_path is None:
            return None
        return TrajectoryReport.from_file(self.bench_history_path)

    def dashboard_payload(self) -> Dict[str, Any]:
        """The composed cluster ``/dashboard.json`` document."""
        return build_dashboard_payload(
            self.status(), self.jobs(), self.trajectory()
        )

    def healthz(self) -> Dict[str, Any]:
        """Front-door liveness: always answerable while the router runs."""
        return {
            "ok": True,
            "draining": self.draining,
            "shards": {
                name: shard.is_alive()
                for name, shard in sorted(self.shards.items())
            },
        }

    # ------------------------------------------------------------------
    # supervision (prober thread)

    def _probe_loop(self) -> None:
        while not self._stop_prober.wait(self.probe_interval):
            try:
                self.probe_once()
            except Exception as exc:  # pragma: no cover - belt and braces
                log.error(f"cluster.prober_error: {type(exc).__name__}: {exc}")

    def probe_once(self, now: Optional[float] = None) -> None:
        """One supervision sweep: probe, eject, fail over, restart.

        Extracted from the prober thread so tests (and the chaos
        harness) can drive the lifecycle deterministically.
        """
        now = time.monotonic() if now is None else now
        for name in sorted(self.shards):
            shard = self.shards[name]
            breaker = self.breakers[name]
            if not shard.is_alive():
                self._handle_death(name, now)
                continue
            self._death_handled.pop(name, None)
            try:
                breaker.call(lambda s=shard: self._probe(s))
            except CircuitOpenError:
                pass  # still ejected; the reset timeout gates the rejoin
            except ShardUnavailableError:
                self.metrics.counter("cluster.probe.failures").inc()
        self._refresh_submission_statuses()
        self.routable_shards()  # refresh the gauge

    def _probe(self, shard: ShardHandle) -> None:
        status, _, _ = shard.request(
            "GET", "/healthz", timeout=self.probe_timeout
        )
        if status != 200:
            raise ShardUnavailableError(
                f"shard {shard.name!r} /healthz answered {status}"
            )

    def _handle_death(self, name: str, now: float) -> None:
        """First detection: eject, fail over, schedule the restart."""
        if not self._death_handled.get(name):
            self._death_handled[name] = True
            self.metrics.counter("cluster.failover.deaths").inc()
            breaker = self.breakers[name]
            # A dead process is not a statistic to accumulate — eject
            # immediately so the ring stops offering it work.
            while breaker.state != OPEN:
                breaker.record_failure(
                    ShardUnavailableError(f"shard {name!r} process died")
                )
            log.warning("cluster.shard_died", shard=name)
            if self.restart_enabled and name not in self._restart_due:
                shard = self.shards[name]
                restarts = getattr(shard, "restarts", 0)
                backoff = min(
                    self.restart_backoff_cap,
                    self.restart_backoff * (2 ** restarts),
                )
                backoff *= 1.0 + self._jitter_rng.random()
                self._restart_due[name] = now + backoff
                log.info(
                    "cluster.shard_restart_scheduled",
                    shard=name,
                    backoff_s=round(backoff, 3),
                )
        self._failover_from(name)
        due = self._restart_due.get(name)
        if due is not None and now >= due and not self.draining:
            self._restart_due.pop(name, None)
            shard = self.shards[name]
            shard.start()
            try:
                if hasattr(shard, "wait_ready"):
                    shard.wait_ready(timeout=15.0)
            except ServiceError as exc:
                log.error(f"cluster.shard_restart_failed: {exc}")
                return
            self.metrics.counter("cluster.failover.restarts").inc()
            self._death_handled.pop(name, None)
            log.info("cluster.shard_restarted", shard=name)

    def _failover_from(self, dead: str) -> None:
        """Re-admit the dead shard's non-terminal jobs onto the ring.

        Each orphaned submission goes to the first *routable* shard in
        its key's preference order (excluding the dead one) — the ring
        successor in the common case. The successor resumes the shared
        checkpoint, so completed points are restored, not recomputed.
        """
        with self._lock:
            orphans = [
                s
                for s in self._submissions.values()
                if s.shard == dead and not s.terminal
            ]
        if not orphans:
            return
        routable = set(self.routable_shards()) - {dead}
        for submission in orphans:
            target = None
            for name in self.ring.preference_order(submission.config_hash):
                if name in routable:
                    target = name
                    break
            if target is None:
                log.warning(
                    "cluster.failover_stalled",
                    job=submission.id,
                    reason="no routable successor",
                )
                continue
            started = time.perf_counter()
            self.tracer.record_span(
                "shard_failover",
                0.0,
                attrs={
                    "job": submission.id,
                    "from": dead,
                    "config_hash": submission.config_hash,
                },
                trace_id=submission.context.trace_id,
                parent_span_id=submission.context.span_id,
            )
            try:
                status, body, _ = self.shards[target].request(
                    "POST",
                    "/jobs",
                    payload=submission.payload,
                    timeout=self.request_timeout,
                )
            except ShardUnavailableError as exc:
                self.breakers[target].record_failure(exc)
                log.warning(
                    "cluster.failover_retry_next_sweep",
                    job=submission.id,
                    target=target,
                )
                continue
            if status != 202:
                log.warning(
                    "cluster.failover_rejected",
                    job=submission.id,
                    target=target,
                    http=status,
                )
                continue
            with self._lock:
                submission.shard = target
                submission.shard_job_id = (body or {}).get("id")
                submission.status = (body or {}).get("status", "queued")
                submission.readmissions += 1
                submission.shard_history.append(target)
            self.metrics.counter("cluster.failover.readmitted").inc()
            self.tracer.record_span(
                "readmit",
                time.perf_counter() - started,
                attrs={
                    "job": submission.id,
                    "shard": target,
                    "from": dead,
                    "resumed_checkpoint": True,
                },
                trace_id=submission.context.trace_id,
                parent_span_id=submission.context.span_id,
            )
            log.info(
                "cluster.job_readmitted",
                job=submission.id,
                from_shard=dead,
                to_shard=target,
            )

    def _refresh_submission_statuses(self) -> None:
        """Piggyback terminal-status tracking on the probe sweep.

        One ``/jobs`` read per live shard per sweep keeps the router's
        terminal set fresh, so failover never re-admits a job that
        already finished.
        """
        with self._lock:
            open_by_shard: Dict[str, List[Submission]] = {}
            for submission in self._submissions.values():
                if submission.terminal or submission.shard is None:
                    continue
                open_by_shard.setdefault(submission.shard, []).append(
                    submission
                )
        for name, pending in open_by_shard.items():
            shard = self.shards.get(name)
            if shard is None or not shard.is_alive():
                continue
            try:
                status, body, _ = shard.request(
                    "GET", "/jobs", timeout=self.probe_timeout
                )
            except ShardUnavailableError:
                continue
            if status != 200 or not isinstance(body, dict):
                continue
            by_id = {
                record.get("id"): record for record in body.get("jobs", [])
            }
            with self._lock:
                for submission in pending:
                    record = by_id.get(submission.shard_job_id)
                    if record is not None:
                        submission.status = record.get(
                            "status", submission.status
                        )

    # ------------------------------------------------------------------
    # provenance

    def write_obs(self, obs_dir=None) -> RunManifest:
        """Write the cluster manifest + routing trace (called on drain)."""
        obs_dir = Path(obs_dir) if obs_dir is not None else self.cluster_dir
        obs_dir.mkdir(parents=True, exist_ok=True)
        manifest = RunManifest.build(
            tool="repro-cluster",
            config={
                "shards": {
                    name: row
                    for name, row in self.shard_states().items()
                },
                "submissions": self.submissions(),
            },
            tracer=self.tracer,
            metrics=self.metrics,
        )
        manifest.write(obs_dir / "manifest.json")
        self.tracer.write_jsonl(obs_dir / "trace.jsonl")
        return manifest


class _ClusterHandler(BaseHTTPRequestHandler):
    """Routes the cluster front door's HTTP API (mirrors the shard API)."""

    protocol_version = "HTTP/1.1"

    @property
    def cluster(self) -> ClusterService:
        """The owning server's cluster core."""
        return self.server.cluster  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Route request logs through the structured logger (debug)."""
        log.debug("cluster.http", line=format % args)

    def _send_body(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, code: int, payload: Any, headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send_body(code, body, "application/json", headers)

    def _send_dashboard(self, view: str) -> None:
        payload = self.cluster.dashboard_payload()
        code = 200 if payload["status"]["ready"] else 503
        if view == "json":
            self._send_json(code, payload)
        elif view == "txt":
            body = render_dashboard_text(payload).encode("ascii")
            self._send_body(code, body, "text/plain; charset=us-ascii")
        else:
            body = render_dashboard_html(payload).encode("utf-8")
            self._send_body(code, body, "text/html; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """Serve /healthz /readyz /metrics /shards /dashboard* /jobs..."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, self.cluster.healthz())
        elif path == "/readyz":
            ready, reason = self.cluster.ready()
            self._send_json(
                200 if ready else 503, {"ready": ready, "reason": reason}
            )
        elif path == "/metrics":
            self._send_json(200, self.cluster.status())
        elif path == "/shards":
            self._send_json(200, {"shards": self.cluster.shard_states()})
        elif path == "/dashboard":
            self._send_dashboard("html")
        elif path == "/dashboard.txt":
            self._send_dashboard("txt")
        elif path == "/dashboard.json":
            self._send_dashboard("json")
        elif path == "/jobs":
            self._send_json(
                200,
                {
                    "jobs": self.cluster.jobs(),
                    "submissions": self.cluster.submissions(),
                },
            )
        elif path.startswith("/jobs/") and path.endswith("/trace"):
            job_id = path[len("/jobs/"):-len("/trace")]
            flight = self.cluster.job_trace(job_id)
            if flight is None:
                self._send_json(404, {"error": "no such job"})
            else:
                self._send_json(200, flight)
        elif path.startswith("/jobs/"):
            record = self.cluster.job(path[len("/jobs/"):])
            if record is None:
                self._send_json(404, {"error": "no such job"})
            else:
                self._send_json(200, record)
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """Serve POST /jobs: route to a shard, mapping errors to codes."""
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/jobs":
            self._send_json(404, {"error": f"no route {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"bad JSON body: {exc}"})
            return
        try:
            record = self.cluster.submit(payload)
        except QueueFullError as exc:
            self._send_json(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{max(1, round(exc.retry_after))}"},
            )
        except ShardUnavailableError as exc:
            self._send_json(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{max(1, round(exc.retry_after))}"},
            )
        except AdmissionError as exc:
            self._send_json(400, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_json(202, record)


class ClusterHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to a :class:`ClusterService`."""

    daemon_threads = True

    def __init__(self, cluster: ClusterService, host: str, port: int):
        self.cluster = cluster
        super().__init__((host, port), _ClusterHandler)

    @property
    def address(self) -> "tuple[str, int]":
        """The bound (host, port) pair."""
        return self.server_address[0], self.server_address[1]


def serve_cluster_in_thread(
    cluster: ClusterService, host: str = "127.0.0.1", port: int = 0
) -> "tuple[ClusterHTTPServer, threading.Thread]":
    """Serve the front door on a daemon thread; returns both handles."""
    server = ClusterHTTPServer(cluster, host, port)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-cluster-http", daemon=True
    )
    thread.start()
    return server, thread
