"""Admission control: validate and cost a job *before* it queues.

A malformed or oversized job must be rejected at submission time with
a useful error, not discovered minutes later inside a worker pool.
:class:`AdmissionController` runs three checks on every submission:

- **shape** — the payload parses into a non-empty list of
  :class:`~repro.experiments.runner.SweepPoint`\\ s with geometries
  :func:`~repro.experiments.configs.parse_geometry` accepts and
  associativities the simulator supports;
- **budget** — the job's *estimated probe count* (workload references
  x sweep points, the same first-order cost model behind the paper's
  trace-length table) must not exceed ``max_probe_budget``;
- **identity** — the admitted job is stamped with the
  ``config_hash`` of its canonicalized configuration (the existing
  manifest machinery), which doubles as the checkpoint identity the
  drain path resumes under.

Rejections raise :class:`~repro.errors.AdmissionError` (HTTP 400) and
are counted under ``service.admission.rejected``; admissions stamp
the job and count ``service.admission.accepted``.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, ConfigurationError, ReproError
from repro.experiments.configs import parse_geometry
from repro.experiments.runner import SweepPoint
from repro.obs.manifest import config_hash
from repro.obs.metrics import MetricsRegistry, get_metrics


def estimate_probe_count(workload: Any, points: List[SweepPoint]) -> int:
    """First-order probe-count estimate for a sweep job.

    Every sweep point replays the workload's reference stream once
    through an instrumented L2, and each access costs at least one
    probe, so ``total references x points`` is a sound lower bound —
    and, because the schemes average a small constant number of probes
    per access, a faithful relative cost. The admission budget is
    compared against this estimate.
    """
    references = getattr(workload, "segments", 1) * getattr(
        workload, "references_per_segment", 1
    )
    return int(references) * len(points)


def parse_points(raw_points: Any) -> List[SweepPoint]:
    """Build validated :class:`SweepPoint`\\ s from submitted JSON.

    Each entry must be an object with ``l1``, ``l2``, and
    ``associativity`` (plus the optional SweepPoint fields). Geometry
    labels are validated via
    :func:`~repro.experiments.configs.parse_geometry` so a typo fails
    at admission, not inside a worker.
    """
    if not isinstance(raw_points, list) or not raw_points:
        raise AdmissionError("job must contain a non-empty 'points' list")
    points = []
    for index, raw in enumerate(raw_points):
        if not isinstance(raw, dict):
            raise AdmissionError(f"points[{index}] must be an object")
        try:
            point = SweepPoint(
                l1=str(raw["l1"]),
                l2=str(raw["l2"]),
                associativity=int(raw["associativity"]),
                tag_bits=int(raw.get("tag_bits", 16)),
                transforms=tuple(raw.get("transforms", ("xor",))),
                mru_list_lengths=tuple(raw.get("mru_list_lengths", ())),
                extra_tag_bits=tuple(raw.get("extra_tag_bits", ())),
                writeback_optimization=bool(
                    raw.get("writeback_optimization", True)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AdmissionError(
                f"points[{index}] is malformed: {exc!r}"
            ) from exc
        try:
            parse_geometry(point.l1)
            parse_geometry(point.l2)
        except ReproError as exc:
            raise AdmissionError(
                f"points[{index}] has a bad geometry: {exc}"
            ) from exc
        if point.associativity < 1:
            raise AdmissionError(
                f"points[{index}]: associativity must be >= 1"
            )
        points.append(point)
    return points


class AdmissionController:
    """Validates submissions and stamps them with their config hash.

    Args:
        workload: The service's shared workload (defines the probe
            cost of one point).
        max_probe_budget: Estimated-probe ceiling per job; ``None``
            disables the budget check.
        metrics: Registry for ``service.admission.*`` counters;
            defaults to the process-global registry.
    """

    def __init__(
        self,
        workload: Any,
        max_probe_budget: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_probe_budget is not None and max_probe_budget < 1:
            raise ConfigurationError("max_probe_budget must be >= 1")
        self.workload = workload
        self.max_probe_budget = max_probe_budget
        self.metrics = metrics if metrics is not None else get_metrics()

    def admit(
        self, payload: Dict[str, Any]
    ) -> Tuple[List[SweepPoint], Dict[str, Any]]:
        """Validate one submission; returns ``(points, description)``.

        ``description`` carries the admitted job's canonical identity:
        the parsed points (as dicts), the estimated probe count, and
        the ``config_hash`` over both — the value the service reports
        back to the client and pins into the job's checkpoint.

        Raises:
            AdmissionError: On a malformed payload or a blown budget.
        """
        if not isinstance(payload, dict):
            self._reject("submission must be a JSON object")
        points = self._checked(lambda: parse_points(payload.get("points")))
        estimate = estimate_probe_count(self.workload, points)
        if (
            self.max_probe_budget is not None
            and estimate > self.max_probe_budget
        ):
            self._reject(
                f"estimated probe count {estimate} exceeds the admission "
                f"budget {self.max_probe_budget}; split the job or raise "
                "--max-probes"
            )
        config = {
            "points": [asdict(point) for point in points],
            "estimated_probes": estimate,
        }
        config["config_hash"] = config_hash(config["points"])
        self.metrics.counter("service.admission.accepted").inc()
        return points, config

    def _checked(self, build):
        """Run ``build``, converting a raise into a counted rejection."""
        try:
            return build()
        except AdmissionError:
            self.metrics.counter("service.admission.rejected").inc()
            raise

    def _reject(self, message: str) -> None:
        self.metrics.counter("service.admission.rejected").inc()
        raise AdmissionError(message)
