"""Bounded job queue with backpressure, watermarks, and load shedding.

The simulation service must degrade *predictably* under overload: a
burst of submissions beyond what the worker pool can absorb is turned
away at the door with an honest retry hint, never buffered without
bound until the process OOMs. :class:`BoundedJobQueue` enforces three
admission regimes:

- **normal** — depth below the high watermark: every offer is
  accepted;
- **shedding** — depth reached the high watermark: offers are
  rejected with :class:`~repro.errors.QueueFullError` until the
  workers drain the queue below the *low* watermark (hysteresis, so
  admission does not flap at the boundary);
- **full** — depth at hard capacity: always rejected (capacity is an
  invariant, not a heuristic).

``close()`` flips the queue into drain mode — every subsequent offer
is rejected and, once the backlog is consumed, :meth:`take` returns
``None`` to wake blocked workers — the first step of the service's
graceful shutdown.

Rejections can carry a **deterministically jittered** ``Retry-After``
(``retry_jitter``): each 429 quotes ``retry_after`` stretched by the
next value of a seeded PRNG, up to ``retry_after * (1 +
retry_jitter)``. Without it, a fleet of load-generator clients shed
in the same instant all come back in the same instant — a thundering
herd aimed squarely at a shard that is trying to recover. The jitter
sequence is seeded (byte-stable in tests: same seed, same sequence)
and quantized to milliseconds so responses stay reproducible.

Every transition is counted in the ``service.queue.*`` metrics
(depth/accepted/rejected/shed_transitions), so an operator can see
backpressure happening, not just its symptoms.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from typing import Any, Deque, Optional

from repro.errors import ConfigurationError, QueueFullError
from repro.obs.log import log
from repro.obs.metrics import MetricsRegistry, get_metrics


class BoundedJobQueue:
    """A thread-safe FIFO with hard capacity and watermark hysteresis.

    Args:
        capacity: Hard bound on queued jobs (>= 1).
        high_watermark: Depth at which load shedding starts; defaults
            to ``capacity``. Must satisfy
            ``low_watermark <= high_watermark <= capacity``.
        low_watermark: Depth the queue must drain to before admission
            resumes; defaults to ``high_watermark - 1`` (classic
            one-slot hysteresis) floored at 0.
        retry_after: Base seconds clients are told to wait before
            retrying a rejected offer (the HTTP ``Retry-After`` hint).
        retry_jitter: Fractional spread added to ``retry_after`` on
            each rejection: the quoted hint is ``retry_after * (1 +
            U)`` with ``U`` drawn from a *seeded* PRNG in ``[0,
            retry_jitter]``, quantized to milliseconds. 0 (the
            default) keeps the hint exact.
        jitter_seed: Seed of the jitter PRNG; a fixed default keeps
            the sequence byte-stable across runs and tests.
        metrics: Registry for ``service.queue.*`` instruments;
            defaults to the process-global registry.
    """

    #: Default jitter-PRNG seed (the paper's year, like the workloads).
    DEFAULT_JITTER_SEED = 1989

    def __init__(
        self,
        capacity: int,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        retry_after: float = 1.0,
        retry_jitter: float = 0.0,
        jitter_seed: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        self.capacity = capacity
        self.high_watermark = (
            capacity if high_watermark is None else high_watermark
        )
        self.low_watermark = (
            max(0, self.high_watermark - 1)
            if low_watermark is None
            else low_watermark
        )
        if not 0 <= self.low_watermark <= self.high_watermark <= capacity:
            raise ConfigurationError(
                "watermarks must satisfy 0 <= low <= high <= capacity, got "
                f"low={self.low_watermark}, high={self.high_watermark}, "
                f"capacity={capacity}"
            )
        if retry_jitter < 0:
            raise ConfigurationError("retry_jitter must be >= 0")
        self.retry_after = retry_after
        self.retry_jitter = retry_jitter
        self._jitter_rng = random.Random(
            self.DEFAULT_JITTER_SEED if jitter_seed is None else jitter_seed
        )
        self.metrics = metrics if metrics is not None else get_metrics()
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._shedding = False
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def depth(self) -> int:
        """Current number of queued jobs."""
        return len(self)

    @property
    def shedding(self) -> bool:
        """Whether the queue is currently rejecting offers (hysteresis)."""
        with self._lock:
            return self._shedding

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (drain mode)."""
        with self._lock:
            return self._closed

    def offer(self, job: Any) -> None:
        """Enqueue ``job`` or raise :class:`~repro.errors.QueueFullError`.

        Rejection reasons, in precedence order: the queue is closed
        (draining), the queue is at hard capacity, or the queue is in
        the shedding regime (depth reached the high watermark and has
        not yet drained below the low watermark).
        """
        with self._lock:
            if self._closed:
                raise QueueFullError(
                    "service is draining; no new jobs are admitted",
                    retry_after=self._jittered_retry_after(),
                )
            depth = len(self._items)
            if depth >= self.capacity or self._shedding:
                self.metrics.counter("service.queue.rejected").inc()
                hint = self._jittered_retry_after()
                raise QueueFullError(
                    f"job queue saturated (depth {depth}/{self.capacity}); "
                    f"retry in {hint:g}s",
                    retry_after=hint,
                )
            self._items.append(job)
            depth += 1
            if depth >= self.high_watermark and not self._shedding:
                self._shedding = True
                self.metrics.counter("service.queue.shed_transitions").inc()
                log.warning(
                    "service.queue.shedding_on",
                    depth=depth,
                    high_watermark=self.high_watermark,
                )
            self.metrics.counter("service.queue.accepted").inc()
            self.metrics.gauge("service.queue.depth").set(depth)
            self._not_empty.notify()

    def _jittered_retry_after(self) -> float:
        """The next ``Retry-After`` hint (lock held by the caller).

        Milliseconds quantization keeps the value byte-stable through
        JSON round-trips; with ``retry_jitter == 0`` the base hint is
        returned untouched (bit-for-bit back-compatible).
        """
        if self.retry_jitter <= 0:
            return self.retry_after
        spread = self._jitter_rng.random() * self.retry_jitter
        return round(self.retry_after * (1.0 + spread), 3)

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the oldest job, blocking up to ``timeout`` seconds.

        Returns ``None`` when the wait times out, or — once the queue
        is closed — when the backlog is empty (the worker's signal to
        exit its loop).
        """
        with self._not_empty:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout)
            if not self._items:
                return None
            job = self._items.popleft()
            depth = len(self._items)
            if self._shedding and depth <= self.low_watermark:
                self._shedding = False
                log.info(
                    "service.queue.shedding_off",
                    depth=depth,
                    low_watermark=self.low_watermark,
                )
            self.metrics.gauge("service.queue.depth").set(depth)
            return job

    def requeue(self, job: Any) -> None:
        """Return an already-admitted job to the *front* of the queue.

        Used by workers that took a job but cannot run it yet (e.g.
        the execution breaker is open): the job was admitted once, so
        it bypasses the shedding and capacity checks — accepted work
        is never dropped — and keeps its place at the head of the
        line.
        """
        with self._lock:
            self._items.appendleft(job)
            self.metrics.gauge("service.queue.depth").set(len(self._items))
            self._not_empty.notify()

    def close(self) -> None:
        """Stop admitting jobs and wake every blocked :meth:`take`.

        Jobs already queued remain takeable; the queue never discards
        accepted work (that is what drain means).
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def snapshot(self) -> dict:
        """Plain-dict state for ``/metrics`` and status endpoints."""
        with self._lock:
            return {
                "depth": len(self._items),
                "capacity": self.capacity,
                "high_watermark": self.high_watermark,
                "low_watermark": self.low_watermark,
                "shedding": self._shedding,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        return (
            f"BoundedJobQueue(depth={len(self)}, capacity={self.capacity}, "
            f"shedding={self.shedding})"
        )
